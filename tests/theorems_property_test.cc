// Randomised property tests for the paper's formal results, on arbitrary
// generated geometry (not just the worked examples):
//
//   Theorem 1    — no common overlap region ⇒ C[S] ≡ 0 in any honest log.
//   Corollary 1.1 — sets mixing licenses from non-overlapping groups have
//                  zero counts, hence never appear in logs or trees.
//   Theorem 2    — the equation of a group-mixing set is the sum of its
//                  per-group restrictions (LHS and RHS).
//   Section 4.1  — no validation-tree branch crosses groups.
#include <gtest/gtest.h>

#include "core/grouping.h"
#include "core/instance_validator.h"
#include "licensing/license_catalog.h"
#include "test_util.h"
#include "validation/validation_tree.h"
#include "workload/workload.h"

namespace geolic {
namespace {

struct GeneratedCase {
  std::unique_ptr<Workload> workload;
  LicenseGrouping grouping;
  ValidationTree tree;
};

GeneratedCase Generate(int n, uint64_t seed) {
  WorkloadConfig config = PaperSweepConfig(n, seed);
  config.num_records = 800;
  Result<Workload> workload = WorkloadGenerator(config).Generate();
  GEOLIC_CHECK(workload.ok());
  GeneratedCase out{std::make_unique<Workload>(*std::move(workload)),
                    LicenseGrouping::FromComponents(ComponentSet{}),
                    ValidationTree()};
  out.grouping = LicenseGrouping::FromLicenses(*out.workload->licenses);
  Result<ValidationTree> tree =
      ValidationTree::BuildFromLog(out.workload->log);
  GEOLIC_CHECK(tree.ok());
  out.tree = *std::move(tree);
  return out;
}

class TheoremsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TheoremsPropertyTest, Theorem1NoCommonRegionMeansZeroCount) {
  const int n = GetParam();
  GeneratedCase generated =
      Generate(n, testing::TestSeed(1000) + static_cast<uint64_t>(n));
  Rng rng(testing::TestSeed(5) + static_cast<uint64_t>(n));
  const auto merged = generated.workload->log.MergedCounts();
  for (int trial = 0; trial < 500; ++trial) {
    LicenseSet set = LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(n);
    if (set.Empty()) {
      continue;
    }
    std::vector<HyperRect> rects;
    for (int index : (set).ToIndexes()) {
      rects.push_back(generated.workload->licenses->at(index).rect());
    }
    const Result<HyperRect> region = HyperRect::CommonRegion(rects);
    ASSERT_TRUE(region.ok());
    if (region->IsEmpty()) {
      // Theorem 1: this exact set can never be logged.
      EXPECT_EQ(merged.find(set), merged.end()) << (set).ToString();
      EXPECT_EQ(generated.tree.CountOf(set), 0);
    } else if (merged.contains(set)) {
      EXPECT_GT(merged.at(set), 0);
    }
  }
}

TEST_P(TheoremsPropertyTest, Corollary11GroupMixingSetsNeverLogged) {
  const int n = GetParam();
  GeneratedCase generated =
      Generate(n, testing::TestSeed(2000) + static_cast<uint64_t>(n));
  if (generated.grouping.group_count() < 2) {
    GTEST_SKIP() << "workload produced a single group";
  }
  for (const auto& [set, count] : generated.workload->log.MergedCounts()) {
    const int group = generated.grouping.GroupOf((set).Lowest());
    EXPECT_TRUE(set.IsSubsetOf(generated.grouping.GroupMask(group)))
        << "logged set " << (set).ToString() << " mixes groups";
  }
}

TEST_P(TheoremsPropertyTest, Theorem2EquationDecomposesAcrossGroups) {
  const int n = GetParam();
  GeneratedCase generated =
      Generate(n, testing::TestSeed(3000) + static_cast<uint64_t>(n));
  const LicenseGrouping& grouping = generated.grouping;
  Rng rng(testing::TestSeed(17) + static_cast<uint64_t>(n));
  for (int trial = 0; trial < 300; ++trial) {
    const LicenseSet s =
        LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(n);
    if (s.Empty()) {
      continue;
    }
    // Split S into its per-group restrictions S_k = S ∩ G_k.
    int64_t lhs_sum = 0;
    int64_t rhs_sum = 0;
    for (int k = 0; k < grouping.group_count(); ++k) {
      const LicenseSet restricted = s & grouping.GroupMask(k);
      if (restricted.Empty()) {
        continue;
      }
      lhs_sum += generated.tree.SumSubsets(restricted);
      rhs_sum += generated.workload->licenses->AggregateSum(restricted);
    }
    // Theorem 2: C⟨S⟩ = Σ C⟨S_k⟩ and A[S] = Σ A[S_k].
    EXPECT_EQ(generated.tree.SumSubsets(s), lhs_sum) << (s).ToString();
    EXPECT_EQ(generated.workload->licenses->AggregateSum(s), rhs_sum);
  }
}

TEST_P(TheoremsPropertyTest, Section41NoBranchCrossesGroups) {
  const int n = GetParam();
  GeneratedCase generated =
      Generate(n, testing::TestSeed(4000) + static_cast<uint64_t>(n));
  const LicenseGrouping& grouping = generated.grouping;
  // Every node's path-set (reported by ForEachSet plus implied prefixes)
  // stays within one group. ForEachSet only reports counted nodes; prefix
  // sets are subsets of those, so checking counted sets suffices.
  generated.tree.ForEachSet([&](LicenseSet set, int64_t count) {
    EXPECT_GT(count, 0);
    const int group = grouping.GroupOf((set).Lowest());
    EXPECT_TRUE(set.IsSubsetOf(grouping.GroupMask(group)))
        << (set).ToString();
  });
}

TEST_P(TheoremsPropertyTest, SatisfyingSetsAreAlwaysPairwiseOverlapping) {
  // Foundation for "S always lies in one group": all licenses containing
  // the same usage rectangle mutually overlap (they share that region).
  const int n = GetParam();
  WorkloadConfig config = PaperSweepConfig(n, testing::TestSeed(5000));
  config.num_records = 0;
  WorkloadGenerator generator(config);
  Result<Workload> workload = generator.GenerateLicensesOnly();
  ASSERT_TRUE(workload.ok());
  const LinearInstanceValidator validator(workload->licenses.get());
  Rng rng(testing::TestSeed(23));
  for (int trial = 0; trial < 200; ++trial) {
    const int parent = static_cast<int>(
        rng.UniformInt(0, workload->licenses->size() - 1));
    const License usage =
        generator.DrawUsageLicense(*workload, parent, &rng, trial);
    const LicenseSet set = validator.SatisfyingSet(usage);
    const std::vector<int> members = (set).ToIndexes();
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        EXPECT_TRUE(workload->licenses->at(members[i])
                        .OverlapsWith(workload->licenses->at(members[j])));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LicenseCounts, TheoremsPropertyTest,
                         ::testing::Values(5, 10, 18, 26, 35));

}  // namespace
}  // namespace geolic
