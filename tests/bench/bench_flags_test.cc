#include "bench_util.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace geolic::bench {
namespace {

// Builds a Flags parser over a literal argv (argv[0] is the bench name).
Flags Make(const std::vector<const char*>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("bench"));
  for (const char* arg : args) {
    argv.push_back(const_cast<char*>(arg));
  }
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchFlagsTest, ParsesRegisteredFlags) {
  Flags flags = Make({"--max_n=12", "--json_out=/tmp/x.json", "--step=-3"});
  EXPECT_EQ(flags.Int("max_n", 30), 12);
  EXPECT_EQ(flags.Int("step", 2), -3);
  EXPECT_EQ(flags.Str("json_out", ""), "/tmp/x.json");
  EXPECT_EQ(flags.Int("absent", 7), 7);
  EXPECT_EQ(flags.Str("also_absent", "dflt"), "dflt");
  flags.Finish();  // Everything claimed: must not exit.
}

TEST(BenchFlagsTest, EmptyArgvFinishesCleanly) {
  Flags flags = Make({});
  EXPECT_EQ(flags.Int("max_n", 30), 30);
  flags.Finish();
}

TEST(BenchFlagsTest, UnknownFlagExitsNonZero) {
  Flags flags = Make({"--max_n=12", "--bogus=1"});
  EXPECT_EQ(flags.Int("max_n", 30), 12);
  EXPECT_EXIT(flags.Finish(), ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(BenchFlagsTest, MistypedFlagWithoutValueExitsNonZero) {
  // "--json_out" without "=" never matches the registered prefix, so it
  // must surface as unknown instead of silently disabling the output.
  Flags flags = Make({"--json_out"});
  EXPECT_EQ(flags.Str("json_out", ""), "");
  EXPECT_EXIT(flags.Finish(), ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(BenchFlagsTest, DuplicateFlagExitsNonZero) {
  Flags flags = Make({"--max_n=12", "--max_n=14"});
  EXPECT_EXIT(flags.Int("max_n", 30), ::testing::ExitedWithCode(2),
              "duplicate flag --max_n");
}

TEST(BenchFlagsTest, NonNumericIntExitsNonZero) {
  Flags flags = Make({"--max_n=twelve"});
  EXPECT_EXIT(flags.Int("max_n", 30), ::testing::ExitedWithCode(2),
              "expects an integer");
}

TEST(BenchFlagsTest, EmptyIntValueExitsNonZero) {
  Flags flags = Make({"--max_n="});
  EXPECT_EXIT(flags.Int("max_n", 30), ::testing::ExitedWithCode(2),
              "expects an integer");
}

TEST(BenchFlagsTest, OutOfRangeIntExitsNonZero) {
  Flags flags = Make({"--max_n=99999999999999999999"});
  EXPECT_EXIT(flags.Int("max_n", 30), ::testing::ExitedWithCode(2),
              "expects an integer");
}

TEST(BenchFlagsTest, TrailingGarbageIntExitsNonZero) {
  Flags flags = Make({"--max_n=12abc"});
  EXPECT_EXIT(flags.Int("max_n", 30), ::testing::ExitedWithCode(2),
              "expects an integer");
}

}  // namespace
}  // namespace geolic::bench
