#include "validation/flat_tree.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"
#include "validation/exhaustive_validator.h"
#include "validation/validation_tree.h"

namespace geolic {
namespace {

// Random tree over `n` licenses with `records` inserted sets.
ValidationTree RandomTree(Rng* rng, int n, int records) {
  ValidationTree tree;
  for (int r = 0; r < records; ++r) {
    const LicenseSet set =
        (LicenseSet::FromWord(rng->Next()) & LicenseSet::Full(n));
    if (set.Empty()) {
      continue;
    }
    EXPECT_TRUE(tree.Insert(set, rng->UniformInt(1, 50)).ok());
  }
  return tree;
}

TEST(FlatTreeTest, EmptyTree) {
  const ValidationTree tree;
  const FlatValidationTree flat = FlatValidationTree::Compile(tree);
  EXPECT_EQ(flat.NodeCount(), 0u);
  EXPECT_EQ(flat.TotalCount(), 0);
  EXPECT_TRUE(flat.PresentLicenses().Empty());
  EXPECT_EQ(flat.SumSubsets(LicenseSet::Full(8)), 0);
  EXPECT_EQ(flat.SumSubsetsNoAccel(LicenseSet::Full(8)), 0);
  EXPECT_EQ(flat.CountOf(testing::Mask(0b101)), 0);
  int calls = 0;
  flat.ForEachSet([&calls](LicenseSet, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(FlatTreeTest, SingleLicense) {
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(testing::Mask(0b1), 7).ok());
  const FlatValidationTree flat = FlatValidationTree::Compile(tree);
  EXPECT_EQ(flat.NodeCount(), 1u);
  EXPECT_EQ(flat.TotalCount(), 7);
  EXPECT_EQ(flat.PresentLicenses(), testing::Mask(0b1));
  EXPECT_EQ(flat.CountOf(testing::Mask(0b1)), 7);
  EXPECT_EQ(flat.CountOf(testing::Mask(0b10)), 0);
  EXPECT_EQ(flat.SumSubsets(testing::Mask(0b1)), 7);
  EXPECT_EQ(flat.SumSubsets(testing::Mask(0b10)), 0);
  EXPECT_EQ(flat.SumSubsets(testing::Mask(0b11)), 7);
  EXPECT_GT(flat.MemoryBytes(), 0u);
}

TEST(FlatTreeTest, PaperExampleMatchesPointerTree) {
  // The paper's running example log (table 1 shape).
  ValidationTree tree;
  const std::vector<std::pair<LicenseSet, int64_t>> records = {
      {testing::Mask(0b0001), 100}, {testing::Mask(0b0011), 50}, {testing::Mask(0b0111), 25}, {testing::Mask(0b0010), 80},
      {testing::Mask(0b0110), 40},  {testing::Mask(0b0100), 60}, {testing::Mask(0b1100), 30}, {testing::Mask(0b1000), 90},
  };
  for (const auto& [set, count] : records) {
    ASSERT_TRUE(tree.Insert(set, count).ok());
  }
  const FlatValidationTree flat = FlatValidationTree::Compile(tree);
  EXPECT_EQ(flat.NodeCount(), tree.NodeCount());
  EXPECT_EQ(flat.TotalCount(), tree.TotalCount());
  EXPECT_EQ(flat.PresentLicenses(), tree.PresentLicenses());
  for (uint64_t word = 0; word <= 0b1111u; ++word) {
    const LicenseSet set = LicenseSet::FromWord(word);
    EXPECT_EQ(flat.SumSubsets(set), tree.SumSubsets(set)) << set;
    EXPECT_EQ(flat.SumSubsetsNoAccel(set), tree.SumSubsets(set)) << set;
    EXPECT_EQ(flat.CountOf(set), tree.CountOf(set)) << set;
  }
}

// The tentpole equivalence fuzz: over 1k random logs, the flat compile
// must agree with the pointer tree on every query surface.
TEST(FlatTreeTest, FuzzMatchesPointerTree) {
  Rng rng(testing::TestSeed(20260806));
  for (int trial = 0; trial < 1000; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(1, 16));
    const int records = static_cast<int>(rng.UniformInt(0, 40));
    const ValidationTree tree = RandomTree(&rng, n, records);
    const FlatValidationTree flat = FlatValidationTree::Compile(tree);

    ASSERT_EQ(flat.NodeCount(), tree.NodeCount());
    ASSERT_EQ(flat.TotalCount(), tree.TotalCount());
    ASSERT_EQ(flat.PresentLicenses(), tree.PresentLicenses());

    // Random query masks, deliberately allowed to spill beyond the n
    // licenses actually present.
    for (int q = 0; q < 16; ++q) {
      const LicenseSet set =
          LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(std::min(n + 2, 16));
      ASSERT_EQ(flat.SumSubsets(set), tree.SumSubsets(set))
          << "trial " << trial << " set " << (set).ToString();
      ASSERT_EQ(flat.SumSubsetsNoAccel(set), tree.SumSubsets(set))
          << "trial " << trial << " set " << (set).ToString();
      ASSERT_EQ(flat.CountOf(set), tree.CountOf(set))
          << "trial " << trial << " set " << (set).ToString();
    }
  }
}

TEST(FlatTreeTest, FuzzMatchesMergedCountsReference) {
  // Independent oracle: LHS from merged log counts, not the pointer tree.
  Rng rng(testing::TestSeed(77));
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(1, 12));
    ValidationTree tree;
    std::unordered_map<LicenseSet, int64_t> merged;
    for (int r = 0; r < 30; ++r) {
      const LicenseSet set =
          LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(n);
      if (set.Empty()) {
        continue;
      }
      const int64_t count = rng.UniformInt(1, 9);
      ASSERT_TRUE(tree.Insert(set, count).ok());
      merged[set] += count;
    }
    const FlatValidationTree flat = FlatValidationTree::Compile(tree);
    for (int q = 0; q < 32; ++q) {
      const LicenseSet set =
          LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(n);
      ASSERT_EQ(flat.SumSubsets(set), LhsFromMergedCounts(merged, set));
    }
  }
}

TEST(FlatTreeTest, BatchMatchesScalar) {
  Rng rng(testing::TestSeed(11));
  const ValidationTree tree = RandomTree(&rng, 12, 200);
  const FlatValidationTree flat = FlatValidationTree::Compile(tree);
  std::vector<LicenseSet> sets;
  for (int i = 0; i < 300; ++i) {
    sets.push_back(LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(12));
  }
  std::vector<int64_t> sums(sets.size(), -1);
  uint64_t batch_nodes = 0;
  flat.SumSubsetsBatch(sets, sums, &batch_nodes);
  uint64_t scalar_nodes = 0;
  for (size_t i = 0; i < sets.size(); ++i) {
    EXPECT_EQ(sums[i], flat.SumSubsets(sets[i], &scalar_nodes)) << i;
  }
  EXPECT_EQ(batch_nodes, scalar_nodes);
}

TEST(FlatTreeTest, ForEachSetMatchesPointerTree) {
  Rng rng(testing::TestSeed(5));
  const ValidationTree tree = RandomTree(&rng, 14, 300);
  const FlatValidationTree flat = FlatValidationTree::Compile(tree);
  std::vector<std::pair<LicenseSet, int64_t>> from_tree;
  std::vector<std::pair<LicenseSet, int64_t>> from_flat;
  tree.ForEachSet([&from_tree](LicenseSet set, int64_t count) {
    from_tree.emplace_back(set, count);
  });
  flat.ForEachSet([&from_flat](LicenseSet set, int64_t count) {
    from_flat.emplace_back(set, count);
  });
  EXPECT_EQ(from_tree, from_flat);  // Same preorder, same values.
}

TEST(FlatTreeTest, CoveredSubtreePruningTouchesFewerNodes) {
  Rng rng(testing::TestSeed(13));
  const ValidationTree tree = RandomTree(&rng, 16, 2000);
  const FlatValidationTree flat = FlatValidationTree::Compile(tree);
  // On the full set every top-level subtree is wholly covered, so the
  // pruned scan touches exactly the top-level slots while the pointer
  // descent visits every node — the figure-7 dense-overlap win.
  uint64_t full_pointer = 0;
  uint64_t full_flat = 0;
  const int64_t pointer_sum = tree.SumSubsets(LicenseSet::Full(16), &full_pointer);
  const int64_t flat_sum = flat.SumSubsets(LicenseSet::Full(16), &full_flat);
  EXPECT_EQ(flat_sum, pointer_sum);
  EXPECT_LT(full_flat, full_pointer);
  // And the no-accelerator scan touches at least one slot per node-skip
  // decision; it must agree on the sum regardless.
  EXPECT_EQ(flat.SumSubsetsNoAccel(LicenseSet::Full(16)), pointer_sum);
}

TEST(FlatTreeTest, CompileIsASnapshot) {
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(testing::Mask(0b11), 5).ok());
  const FlatValidationTree flat = FlatValidationTree::Compile(tree);
  ASSERT_TRUE(tree.Insert(testing::Mask(0b11), 5).ok());  // Mutate after compile.
  EXPECT_EQ(flat.SumSubsets(testing::Mask(0b11)), 5);     // Snapshot unchanged.
  EXPECT_EQ(tree.SumSubsets(testing::Mask(0b11)), 10);
}

}  // namespace
}  // namespace geolic
