#include "validation/log_store.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "test_util.h"

namespace geolic {
namespace {

LogRecord Record(const std::string& id, uint64_t mask, int64_t count) {
  const LicenseSet set = LicenseSet::FromWord(mask);
  LogRecord record;
  record.issued_license_id = id;
  record.set = set;
  record.count = count;
  return record;
}

// Temp file path unique to the current test.
std::string TempPath(const std::string& suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "geolic_" + info->test_suite_name() + "_" +
         info->name() + suffix;
}

TEST(LogStoreTest, AppendAndAccess) {
  LogStore store;
  EXPECT_TRUE(store.empty());
  ASSERT_TRUE(store.Append(Record("LU1", 0b11, 800)).ok());
  ASSERT_TRUE(store.Append(Record("LU2", 0b10, 400)).ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.at(0).issued_license_id, "LU1");
  EXPECT_EQ(store.at(1).count, 400);
  EXPECT_EQ(store.TotalCount(), 1200);
}

TEST(LogStoreTest, RejectsEmptySetAndNonPositiveCount) {
  LogStore store;
  EXPECT_FALSE(store.Append(Record("LU1", 0, 10)).ok());
  EXPECT_FALSE(store.Append(Record("LU1", 0b1, 0)).ok());
  EXPECT_FALSE(store.Append(Record("LU1", 0b1, -5)).ok());
  EXPECT_TRUE(store.empty());
}

TEST(LogStoreTest, MergedCountsAccumulatePerSet) {
  // The paper's Table 2: after LU1..LU6 the counts for {L1,L2}, {L2},
  // {L1,L2,L4}, {L3,L5}, {L5} are 840, 400, 30, 800, 20.
  LogStore store;
  ASSERT_TRUE(store.Append(Record("LU1", 0b00011, 800)).ok());
  ASSERT_TRUE(store.Append(Record("LU2", 0b00010, 400)).ok());
  ASSERT_TRUE(store.Append(Record("LU3", 0b00011, 40)).ok());
  ASSERT_TRUE(store.Append(Record("LU4", 0b01011, 30)).ok());
  ASSERT_TRUE(store.Append(Record("LU5", 0b10100, 800)).ok());
  ASSERT_TRUE(store.Append(Record("LU6", 0b10000, 20)).ok());

  const auto merged = store.MergedCounts();
  EXPECT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged.at(testing::Mask(0b00011)), 840);
  EXPECT_EQ(merged.at(testing::Mask(0b00010)), 400);
  EXPECT_EQ(merged.at(testing::Mask(0b01011)), 30);
  EXPECT_EQ(merged.at(testing::Mask(0b10100)), 800);
  EXPECT_EQ(merged.at(testing::Mask(0b10000)), 20);
}

TEST(LogStoreTest, CompactedMergesAndOrders) {
  LogStore store;
  ASSERT_TRUE(store.Append(Record("LU1", 0b011, 800)).ok());
  ASSERT_TRUE(store.Append(Record("LU2", 0b100, 20)).ok());
  ASSERT_TRUE(store.Append(Record("LU3", 0b011, 40)).ok());
  ASSERT_TRUE(store.Append(Record("LU4", 0b001, 5)).ok());
  const LogStore compacted = store.Compacted();
  ASSERT_EQ(compacted.size(), 3u);
  EXPECT_EQ(compacted.at(0).set, testing::Mask(0b001));
  EXPECT_EQ(compacted.at(0).count, 5);
  EXPECT_EQ(compacted.at(1).set, testing::Mask(0b011));
  EXPECT_EQ(compacted.at(1).count, 840);
  EXPECT_EQ(compacted.at(2).set, testing::Mask(0b100));
  EXPECT_EQ(compacted.at(2).count, 20);
  EXPECT_EQ(compacted.TotalCount(), store.TotalCount());
  EXPECT_EQ(compacted.MergedCounts(), store.MergedCounts());
  EXPECT_TRUE(compacted.at(0).issued_license_id.empty());
}

TEST(LogStoreTest, CompactedEmptyStore) {
  EXPECT_EQ(LogStore().Compacted().size(), 0u);
}

TEST(LogStoreTest, TextRoundTrip) {
  LogStore store;
  ASSERT_TRUE(store.Append(Record("LU1", 0b1011, 800)).ok());
  ASSERT_TRUE(store.Append(Record("", 0b0001, 25)).ok());
  ASSERT_TRUE(store.Append(Record("LU3", ~uint64_t{0}, 1)).ok());

  const std::string path = TempPath(".log");
  ASSERT_TRUE(store.SaveText(path).ok());
  const Result<LogStore> loaded = LogStore::LoadText(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->records(), store.records());
  std::remove(path.c_str());
}

TEST(LogStoreTest, TextLoadSkipsCommentsAndBlankLines) {
  const std::string path = TempPath(".log");
  {
    std::ofstream out(path);
    out << "# header comment\n\nLU1 0x3 800\n# another\nLU2 2 400\n";
  }
  const Result<LogStore> loaded = LogStore::LoadText(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->at(0).set, testing::Mask(0b11));
  EXPECT_EQ(loaded->at(1).set, testing::Mask(0b10));  // Decimal masks accepted too.
  std::remove(path.c_str());
}

TEST(LogStoreTest, TextLoadRejectsMalformedLines) {
  const std::string path = TempPath(".log");
  {
    std::ofstream out(path);
    out << "LU1 0x3\n";  // Missing count.
  }
  EXPECT_FALSE(LogStore::LoadText(path).ok());
  {
    std::ofstream out(path);
    out << "LU1 0xZZ 10\n";  // Bad hex.
  }
  EXPECT_FALSE(LogStore::LoadText(path).ok());
  {
    std::ofstream out(path);
    out << "LU1 0x0 10\n";  // Empty set.
  }
  EXPECT_FALSE(LogStore::LoadText(path).ok());
  std::remove(path.c_str());
}

TEST(LogStoreTest, LoadMissingFileFails) {
  EXPECT_EQ(LogStore::LoadText("/nonexistent/geolic.log").status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(LogStore::LoadBinary("/nonexistent/geolic.bin").status().code(),
            StatusCode::kIoError);
}

TEST(LogStoreTest, BinaryRoundTrip) {
  LogStore store;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store
                    .Append(Record("LU" + std::to_string(i),
                                   static_cast<uint64_t>(i) + 1,
                                   (i % 30) + 1))
                    .ok());
  }
  const std::string path = TempPath(".bin");
  ASSERT_TRUE(store.SaveBinary(path).ok());
  const Result<LogStore> loaded = LogStore::LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->records(), store.records());
  std::remove(path.c_str());
}

TEST(LogStoreTest, BinaryRejectsWrongMagic) {
  const std::string path = TempPath(".bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTGEOLIC_______";
  }
  EXPECT_EQ(LogStore::LoadBinary(path).status().code(),
            StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(LogStoreTest, BinaryRejectsTruncatedFile) {
  LogStore store;
  ASSERT_TRUE(store.Append(Record("LU1", 0b1, 10)).ok());
  const std::string path = TempPath(".bin");
  ASSERT_TRUE(store.SaveBinary(path).ok());
  // Truncate the file in the middle of the record.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 4));
  }
  EXPECT_FALSE(LogStore::LoadBinary(path).ok());
  std::remove(path.c_str());
}

// --- Legacy GLOGBIN1 plausibility bounds -----------------------------------

// Byte layout of a v1 file: magic(8) | record total u64(8) | per record:
// set u64(8), count i64(8), id_len u32(4), id bytes. With a first record
// id of "LU1", its count field occupies bytes [24, 32).

std::string SaveV1AndReadBack(const LogStore& store, const std::string& path) {
  EXPECT_TRUE(store.SaveBinaryV1(path).ok());
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(LogStoreTest, LegacyV1RoundTripStillLoads) {
  LogStore store;
  ASSERT_TRUE(store.Append(Record("LU1", 0b01, 5)).ok());
  ASSERT_TRUE(store.Append(Record("LU2", 0b11, 7)).ok());
  const std::string path = TempPath(".bin");
  ASSERT_TRUE(store.SaveBinaryV1(path).ok());
  const Result<LogStore> loaded = LogStore::LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->records(), store.records());
  std::remove(path.c_str());
}

TEST(LogStoreTest, LegacyV1RejectsFlippedHighCountByte) {
  LogStore store;
  ASSERT_TRUE(store.Append(Record("LU1", 0b01, 5)).ok());
  ASSERT_TRUE(store.Append(Record("LU2", 0b11, 7)).ok());
  const std::string path = TempPath(".bin");
  std::string bytes = SaveV1AndReadBack(store, path);

  // Flip one high bit of record 0's count (+2^54): v1 used to swallow this
  // silently — the whole reason the checksummed v2 container exists — but
  // the plausibility cap must now reject it.
  bytes[31] = static_cast<char>(bytes[31] ^ 0x40);
  WriteBytes(path, bytes);
  const Result<LogStore> corrupt = LogStore::LoadBinary(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kParseError);
  EXPECT_NE(corrupt.status().message().find("implausible count"),
            std::string::npos)
      << corrupt.status().message();
  std::remove(path.c_str());
}

TEST(LogStoreTest, LegacyV1RejectsImplausibleRecordTotal) {
  LogStore store;
  ASSERT_TRUE(store.Append(Record("LU1", 0b01, 5)).ok());
  const std::string path = TempPath(".bin");
  std::string bytes = SaveV1AndReadBack(store, path);

  // Flip a high byte of the declared record total (+2^32 records): far
  // more than the file's byte size can hold, so the load must fail before
  // attempting to materialize them.
  bytes[12] = static_cast<char>(bytes[12] ^ 0x01);
  WriteBytes(path, bytes);
  const Result<LogStore> corrupt = LogStore::LoadBinary(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kParseError);
  EXPECT_NE(corrupt.status().message().find("implausible record total"),
            std::string::npos)
      << corrupt.status().message();
  std::remove(path.c_str());
}

TEST(LogStoreTest, EmptyStoreRoundTrips) {
  LogStore store;
  const std::string text_path = TempPath(".log");
  const std::string bin_path = TempPath(".bin");
  ASSERT_TRUE(store.SaveText(text_path).ok());
  ASSERT_TRUE(store.SaveBinary(bin_path).ok());
  EXPECT_EQ(LogStore::LoadText(text_path)->size(), 0u);
  EXPECT_EQ(LogStore::LoadBinary(bin_path)->size(), 0u);
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

}  // namespace
}  // namespace geolic
