// The combinatorial heart of the paper: the validation equations
// C⟨S⟩ ≤ A[S] (for all S) hold **iff** the issued counts can actually be
// assigned to redistribution licenses without exceeding any aggregate
// budget. The "only if" direction is why equation-based validation never
// wrongly accepts; the "if" direction (Gale–Hoffman feasibility) is why it
// never wrongly rejects — the advantage over greedy single-license
// charging that Example 1 illustrates.
//
// We verify the equivalence empirically: for random logs and aggregates,
// all-equations-valid ⟺ a transportation max-flow saturates every demand.
#include <gtest/gtest.h>

#include "graph/max_flow.h"
#include "util/random.h"
#include "validation/validation_tree.h"
#include "validation/validate.h"

#include "test_util.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

// Max-flow feasibility: can every merged set count be split among the
// set's member licenses within the aggregate budgets?
bool AssignmentFeasible(
    const std::unordered_map<LicenseSet, int64_t>& merged_counts,
    const std::vector<int64_t>& aggregates) {
  const int n = static_cast<int>(aggregates.size());
  const int num_sets = static_cast<int>(merged_counts.size());
  // Nodes: 0 = source, 1..num_sets = set nodes, then license nodes, sink.
  const int license_base = 1 + num_sets;
  const int sink = license_base + n;
  MaxFlow flow(sink + 1);
  int64_t total_demand = 0;
  int set_node = 1;
  for (const auto& [set, count] : merged_counts) {
    flow.AddEdge(0, set_node, count);
    total_demand += count;
    for (int license : (set).ToIndexes()) {
      flow.AddEdge(set_node, license_base + license, MaxFlow::kInfinity);
    }
    ++set_node;
  }
  for (int license = 0; license < n; ++license) {
    flow.AddEdge(license_base + license, sink,
                 aggregates[static_cast<size_t>(license)]);
  }
  const Result<int64_t> max_flow = flow.Compute(0, sink);
  GEOLIC_CHECK(max_flow.ok());
  return *max_flow == total_demand;
}

class FeasibilityEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(FeasibilityEquivalenceTest, EquationsHoldIffAssignmentExists) {
  const int n = GetParam();
  Rng rng(424200 + static_cast<uint64_t>(n));
  int valid_cases = 0;
  int invalid_cases = 0;
  for (int trial = 0; trial < 60; ++trial) {
    // Random log over n licenses.
    ValidationTree tree;
    LogStore store;
    const int records = static_cast<int>(rng.UniformInt(5, 60));
    for (int r = 0; r < records; ++r) {
      const LicenseSet set =
          (LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(n)) |
          LicenseSet::Singleton(static_cast<int>(rng.UniformInt(0, n - 1)));
      const int64_t count = rng.UniformInt(1, 60);
      ASSERT_TRUE(tree.Insert(set, count).ok());
      ASSERT_TRUE(store.Append(LogRecord{"", set, count}).ok());
    }
    // Aggregates straddling the feasibility boundary: total budget scales
    // inversely with n so both verdicts occur at every parameter point.
    std::vector<int64_t> aggregates;
    for (int j = 0; j < n; ++j) {
      aggregates.push_back(rng.UniformInt(10, 1 + 2400 / n));
    }
    const Result<ValidationReport> report =
        RunExhaustive(tree, aggregates);
    ASSERT_TRUE(report.ok());
    const bool equations_hold = report->all_valid();
    const bool feasible =
        AssignmentFeasible(store.MergedCounts(), aggregates);
    ASSERT_EQ(equations_hold, feasible)
        << "n=" << n << " trial=" << trial;
    if (equations_hold) {
      ++valid_cases;
    } else {
      ++invalid_cases;
    }
  }
  // The parameterisation must actually exercise both sides.
  EXPECT_GT(valid_cases, 0) << "tighten aggregates";
  EXPECT_GT(invalid_cases, 0) << "loosen aggregates";
}

INSTANTIATE_TEST_SUITE_P(LicenseCounts, FeasibilityEquivalenceTest,
                         ::testing::Values(2, 3, 5, 8, 11));

TEST(FeasibilityTest, PaperTable2IsFeasible) {
  std::unordered_map<LicenseSet, int64_t> merged = {
      {testing::Mask(0b00011), 840}, {testing::Mask(0b00010), 400}, {testing::Mask(0b01011), 30},
      {testing::Mask(0b10100), 800}, {testing::Mask(0b10000), 20},
  };
  EXPECT_TRUE(
      AssignmentFeasible(merged, {2000, 1000, 3000, 4000, 2000}));
}

TEST(FeasibilityTest, Example1GreedyTrapIsFeasible) {
  // LU1 (800, {L1,L2}) + LU2 (400, {L2}): feasible by assigning LU1 → L1 —
  // exactly the assignment the paper's random pick misses.
  std::unordered_map<LicenseSet, int64_t> merged = {{testing::Mask(0b01), 0},
                                                     {testing::Mask(0b11), 800},
                                                     {testing::Mask(0b10), 400}};
  EXPECT_TRUE(AssignmentFeasible(merged, {2000, 1000}));
  // With A2 = 1000 and demands {L2}-only of 1100, infeasible.
  merged = {{testing::Mask(0b10), 1100}};
  EXPECT_FALSE(AssignmentFeasible(merged, {2000, 1000}));
}

}  // namespace
}  // namespace geolic
