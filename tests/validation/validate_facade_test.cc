#include "validation/validate.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/grouped_validator.h"
#include "core/parallel_validator.h"
#include "test_util.h"
#include "validation/frequency_order.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

Result<ValidationReport> RunExhaustiveLimited(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates,
    uint64_t max_equations) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  options.max_equations = max_equations;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

Result<ValidationReport> RunZeta(const ValidationTree& tree,
                                 const std::vector<int64_t>& aggregates,
                                 int max_dense_n = 26) {
  ValidateOptions options;
  options.mode = ValidationMode::kZeta;
  options.max_dense_n = max_dense_n;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

using testing::IntervalSchema;
using testing::MakeRedistribution;

// The seven pre-facade entry points must produce byte-identical reports to
// the Validate(...) calls they now delegate to — this pins the contract.

void ExpectSameReport(const ValidationReport& a, const ValidationReport& b) {
  EXPECT_EQ(a.equations_evaluated, b.equations_evaluated);
  EXPECT_EQ(a.nodes_visited, b.nodes_visited);
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].set, b.violations[i].set) << i;
    EXPECT_EQ(a.violations[i].lhs, b.violations[i].lhs) << i;
    EXPECT_EQ(a.violations[i].rhs, b.violations[i].rhs) << i;
  }
}

// Three overlap groups (sizes 3, 2, 1) with budgets tight enough that the
// log below violates some equations — non-trivial reports on both paths.
LicenseCatalog Licenses(const ConstraintSchema& schema) {
  LicenseCatalog licenses(&schema);
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L1", {{0, 20}}, 30)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L2", {{10, 30}}, 25)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L3", {{25, 40}}, 20)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L4", {{100, 120}}, 15)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L5", {{110, 130}}, 10)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L6", {{200, 210}}, 5)).ok());
  return licenses;
}

LogStore Log() {
  LogStore log;
  const std::vector<std::pair<LicenseSet, int64_t>> records = {
      {testing::Mask(0b000001), 12}, {testing::Mask(0b000011), 9},  {testing::Mask(0b000010), 14}, {testing::Mask(0b000110), 7},
      {testing::Mask(0b000100), 8},  {testing::Mask(0b001000), 6},  {testing::Mask(0b011000), 5},  {testing::Mask(0b010000), 9},
      {testing::Mask(0b100000), 4},  {testing::Mask(0b000011), 3},  {testing::Mask(0b001000), 2},  {testing::Mask(0b100000), 3},
  };
  int sequence = 0;
  for (const auto& [set, count] : records) {
    LogRecord record;
    record.issued_license_id = "U" + std::to_string(++sequence);
    record.set = set;
    record.count = count;
    EXPECT_TRUE(log.Append(record).ok());
  }
  return log;
}

ValidationTree Tree() {
  Result<ValidationTree> tree = ValidationTree::BuildFromLog(Log());
  EXPECT_TRUE(tree.ok());
  return std::move(*tree);
}

TEST(ValidateFacadeTest, ExhaustiveWrapperIsByteIdentical) {
  const ConstraintSchema schema = IntervalSchema(1);
  const std::vector<int64_t> aggregates =
      Licenses(schema).AggregateCounts();
  const ValidationTree tree = Tree();

  const Result<ValidationReport> old_report =
      RunExhaustive(tree, aggregates);
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  const Result<ValidationOutcome> outcome =
      Validate(tree, aggregates, options);
  ASSERT_TRUE(old_report.ok());
  ASSERT_TRUE(outcome.ok());
  ExpectSameReport(*old_report, outcome->report);
  EXPECT_FALSE(outcome->report.all_valid());  // The workload overspends.
  EXPECT_EQ(outcome->group_count, 0);         // Ungrouped engine.
}

TEST(ValidateFacadeTest, LimitedWrapperIsByteIdentical) {
  const ConstraintSchema schema = IntervalSchema(1);
  const std::vector<int64_t> aggregates =
      Licenses(schema).AggregateCounts();
  const ValidationTree tree = Tree();

  const Result<ValidationReport> old_report =
      RunExhaustiveLimited(tree, aggregates, 17);
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  options.max_equations = 17;
  const Result<ValidationOutcome> outcome =
      Validate(tree, aggregates, options);
  ASSERT_TRUE(old_report.ok());
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(old_report->equations_evaluated, 17u);
  ExpectSameReport(*old_report, outcome->report);
}

TEST(ValidateFacadeTest, ZetaWrapperIsByteIdentical) {
  const ConstraintSchema schema = IntervalSchema(1);
  const std::vector<int64_t> aggregates =
      Licenses(schema).AggregateCounts();
  const ValidationTree tree = Tree();

  const Result<ValidationReport> old_report = RunZeta(tree, aggregates);
  ValidateOptions options;
  options.mode = ValidationMode::kZeta;
  const Result<ValidationOutcome> outcome =
      Validate(tree, aggregates, options);
  ASSERT_TRUE(old_report.ok());
  ASSERT_TRUE(outcome.ok());
  ExpectSameReport(*old_report, outcome->report);

  // Zeta and exhaustive agree on violations (the library-wide invariant the
  // facade must not disturb).
  const Result<ValidationReport> exhaustive =
      RunExhaustive(tree, aggregates);
  ASSERT_TRUE(exhaustive.ok());
  ASSERT_EQ(old_report->violations.size(), exhaustive->violations.size());
}

TEST(ValidateFacadeTest, FrequencyOrderedWrapperIsByteIdentical) {
  const ConstraintSchema schema = IntervalSchema(1);
  const std::vector<int64_t> aggregates =
      Licenses(schema).AggregateCounts();
  const LogStore log = Log();

  const Result<ValidationReport> old_report =
      ValidateExhaustiveFrequencyOrdered(log, aggregates);
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  options.order = TreeOrder::kDescendingFrequency;
  const Result<ValidationOutcome> outcome = Validate(log, aggregates, options);
  ASSERT_TRUE(old_report.ok());
  ASSERT_TRUE(outcome.ok());
  ExpectSameReport(*old_report, outcome->report);
}

TEST(ValidateFacadeTest, GroupedWrappersAreByteIdentical) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = Licenses(schema);

  const Result<GroupedValidationResult> old_result =
      ValidateGrouped(licenses, Tree());
  ValidateOptions options;
  options.mode = ValidationMode::kGrouped;
  const Result<ValidationOutcome> outcome =
      Validate(licenses, Tree(), options);
  ASSERT_TRUE(old_result.ok());
  ASSERT_TRUE(outcome.ok());
  ExpectSameReport(old_result->report, outcome->report);
  EXPECT_EQ(old_result->group_count, outcome->group_count);
  EXPECT_EQ(old_result->group_sizes, outcome->group_sizes);
  EXPECT_EQ(outcome->group_count, 3);

  const Result<GroupedValidationResult> from_log =
      ValidateGroupedFromLog(licenses, Log());
  const Result<ValidationOutcome> log_outcome =
      Validate(licenses, Log(), options);
  ASSERT_TRUE(from_log.ok());
  ASSERT_TRUE(log_outcome.ok());
  ExpectSameReport(from_log->report, log_outcome->report);

  const Result<GroupedValidationResult> zeta =
      ValidateGroupedZeta(licenses, Tree());
  ValidateOptions zeta_options;
  zeta_options.mode = ValidationMode::kGroupedZeta;
  const Result<ValidationOutcome> zeta_outcome =
      Validate(licenses, Tree(), zeta_options);
  ASSERT_TRUE(zeta.ok());
  ASSERT_TRUE(zeta_outcome.ok());
  ExpectSameReport(zeta->report, zeta_outcome->report);
}

TEST(ValidateFacadeTest, ParallelWrappersMatchSerialReports) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = Licenses(schema);
  const std::vector<int64_t> aggregates = licenses.AggregateCounts();
  const ValidationTree tree = Tree();

  const Result<ValidationReport> parallel =
      ValidateExhaustiveParallel(tree, aggregates, 4);
  const Result<ValidationReport> serial = RunExhaustive(tree, aggregates);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(serial.ok());
  ExpectSameReport(*parallel, *serial);

  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  options.num_threads = 4;
  const Result<ValidationOutcome> outcome =
      Validate(tree, aggregates, options);
  ASSERT_TRUE(outcome.ok());
  ExpectSameReport(outcome->report, *serial);

  const Result<GroupedValidationResult> grouped_parallel =
      ValidateGroupedParallel(licenses, Tree(), 4);
  const Result<GroupedValidationResult> grouped =
      ValidateGrouped(licenses, Tree());
  ASSERT_TRUE(grouped_parallel.ok());
  ASSERT_TRUE(grouped.ok());
  ExpectSameReport(grouped_parallel->report, grouped->report);
}

TEST(ValidateFacadeTest, AutoModeRoutesBySize) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = Licenses(schema);
  const std::vector<int64_t> aggregates = licenses.AggregateCounts();

  // Tree overload: kAuto without geometry picks a dense ungrouped engine.
  const Result<ValidationOutcome> ungrouped = Validate(Tree(), aggregates);
  ASSERT_TRUE(ungrouped.ok());
  EXPECT_EQ(ungrouped->group_count, 0);

  // LicenseCatalog overload: kAuto runs the paper's grouped pipeline.
  const Result<ValidationOutcome> grouped = Validate(licenses, Tree());
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->group_count, 3);
  EXPECT_EQ(grouped->group_sizes, (std::vector<int>{3, 2, 1}));

  // Both engines flag the workload; the grouped report checks only
  // within-group equations (cross-group supersets are implied — Theorem 2),
  // so its violation list is a subset of the exhaustive one.
  EXPECT_FALSE(ungrouped->report.all_valid());
  EXPECT_FALSE(grouped->report.all_valid());
  EXPECT_LE(grouped->report.violations.size(),
            ungrouped->report.violations.size());
}

TEST(ValidateFacadeTest, GroupedModeNeedsGeometry) {
  const ConstraintSchema schema = IntervalSchema(1);
  const std::vector<int64_t> aggregates =
      Licenses(schema).AggregateCounts();
  ValidateOptions options;
  options.mode = ValidationMode::kGrouped;
  const Result<ValidationOutcome> outcome =
      Validate(Tree(), aggregates, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace geolic
