
#include <gtest/gtest.h>

#include "validation/validate.h"
#include "util/random.h"
#include "workload/workload.h"

#include "test_util.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

Result<ValidationReport> RunZeta(const ValidationTree& tree,
                                 const std::vector<int64_t>& aggregates,
                                 int max_dense_n = 26) {
  ValidateOptions options;
  options.mode = ValidationMode::kZeta;
  options.max_dense_n = max_dense_n;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

TEST(ZetaValidatorTest, EmptyInputsAreValid) {
  ValidationTree tree;
  const Result<ValidationReport> report = RunZeta(tree, {});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->all_valid());
  EXPECT_EQ(report->equations_evaluated, 0u);
}

TEST(ZetaValidatorTest, MatchesHandComputedExample) {
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(testing::Mask(0b01), 8).ok());
  ASSERT_TRUE(tree.Insert(testing::Mask(0b10), 7).ok());
  ASSERT_TRUE(tree.Insert(testing::Mask(0b11), 6).ok());
  const Result<ValidationReport> report = RunZeta(tree, {10, 10});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->equations_evaluated, 3u);
  ASSERT_EQ(report->violations.size(), 1u);
  EXPECT_EQ(report->violations[0].set, testing::Mask(0b11));
  EXPECT_EQ(report->violations[0].lhs, 21);
  EXPECT_EQ(report->violations[0].rhs, 20);
}

TEST(ZetaValidatorTest, RespectsDenseCap) {
  ValidationTree tree;
  const Result<ValidationReport> report =
      RunZeta(tree, std::vector<int64_t>(30, 10), /*max_dense_n=*/26);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCapacityExceeded);
}

TEST(ZetaValidatorTest, RejectsTreeBeyondAggregates) {
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(LicenseSet::Singleton(5), 1).ok());
  EXPECT_FALSE(RunZeta(tree, {10, 10}).ok());
}

// Property: zeta validator reproduces the exhaustive validator exactly —
// same equation count, same violations in the same order — on paper-style
// workloads.
class ZetaEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ZetaEquivalenceTest, MatchesExhaustive) {
  const int n = GetParam();
  for (uint64_t seed : {11u, 22u}) {
    WorkloadConfig config = PaperSweepConfig(n, seed);
    config.num_records = 500;
    config.aggregate_min = 50;
    config.aggregate_max = 500;  // Tight → violations happen.
    Result<Workload> workload = WorkloadGenerator(config).Generate();
    ASSERT_TRUE(workload.ok());
    const Result<ValidationTree> tree =
        ValidationTree::BuildFromLog(workload->log);
    ASSERT_TRUE(tree.ok());
    const std::vector<int64_t> aggregates =
        workload->licenses->AggregateCounts();

    const Result<ValidationReport> exhaustive =
        RunExhaustive(*tree, aggregates);
    const Result<ValidationReport> zeta = RunZeta(*tree, aggregates);
    ASSERT_TRUE(exhaustive.ok());
    ASSERT_TRUE(zeta.ok());
    EXPECT_EQ(zeta->equations_evaluated, exhaustive->equations_evaluated);
    ASSERT_EQ(zeta->violations.size(), exhaustive->violations.size());
    for (size_t i = 0; i < zeta->violations.size(); ++i) {
      EXPECT_EQ(zeta->violations[i].set, exhaustive->violations[i].set);
      EXPECT_EQ(zeta->violations[i].lhs, exhaustive->violations[i].lhs);
      EXPECT_EQ(zeta->violations[i].rhs, exhaustive->violations[i].rhs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LicenseCounts, ZetaEquivalenceTest,
                         ::testing::Values(1, 2, 4, 8, 12, 16));

// Property: on random dense logs too (not just geometry-consistent ones).
TEST(ZetaValidatorPropertyTest, MatchesExhaustiveOnRandomLogs) {
  Rng rng(808);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(1, 14));
    ValidationTree tree;
    for (int r = 0; r < 200; ++r) {
      const LicenseSet set =
          (LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(n)) |
          LicenseSet::Singleton(static_cast<int>(rng.UniformInt(0, n - 1)));
      ASSERT_TRUE(tree.Insert(set, rng.UniformInt(1, 40)).ok());
    }
    std::vector<int64_t> aggregates;
    for (int j = 0; j < n; ++j) {
      aggregates.push_back(rng.UniformInt(100, 2000));
    }
    const Result<ValidationReport> exhaustive =
        RunExhaustive(tree, aggregates);
    const Result<ValidationReport> zeta = RunZeta(tree, aggregates);
    ASSERT_TRUE(exhaustive.ok());
    ASSERT_TRUE(zeta.ok());
    ASSERT_EQ(zeta->violations.size(), exhaustive->violations.size());
    for (size_t i = 0; i < zeta->violations.size(); ++i) {
      EXPECT_EQ(zeta->violations[i].set, exhaustive->violations[i].set);
      EXPECT_EQ(zeta->violations[i].lhs, exhaustive->violations[i].lhs);
    }
  }
}

}  // namespace
}  // namespace geolic
