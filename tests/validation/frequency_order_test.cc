#include "validation/frequency_order.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "validation/validate.h"
#include "util/random.h"
#include "workload/workload.h"

#include "test_util.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

TEST(LicensePermutationTest, IdentityByDefault) {
  LicensePermutation permutation(5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(permutation.ToNew(i), i);
    EXPECT_EQ(permutation.ToOld(i), i);
  }
  EXPECT_EQ(permutation.MapMask(testing::Mask(0b10110)), testing::Mask(0b10110));
  EXPECT_EQ(permutation.UnmapMask(testing::Mask(0b10110)), testing::Mask(0b10110));
}

TEST(LicensePermutationTest, OrdersByFrequencyDescending) {
  LogStore log;
  // L3 appears 3×, L1 2×, L2 1×.
  ASSERT_TRUE(log.Append(LogRecord{"a", testing::Mask(0b101), 1}).ok());
  ASSERT_TRUE(log.Append(LogRecord{"b", testing::Mask(0b100), 1}).ok());
  ASSERT_TRUE(log.Append(LogRecord{"c", testing::Mask(0b111), 1}).ok());
  const Result<LicensePermutation> permutation =
      LicensePermutation::ByDescendingFrequency(log, 3);
  ASSERT_TRUE(permutation.ok());
  EXPECT_EQ(permutation->ToNew(2), 0);  // L3 hottest.
  EXPECT_EQ(permutation->ToNew(0), 1);  // L1 next.
  EXPECT_EQ(permutation->ToNew(1), 2);  // L2 coldest.
  EXPECT_EQ(permutation->ToOld(0), 2);
}

TEST(LicensePermutationTest, TiesBreakByOriginalIndex) {
  LogStore log;
  ASSERT_TRUE(log.Append(LogRecord{"a", testing::Mask(0b11), 1}).ok());
  const Result<LicensePermutation> permutation =
      LicensePermutation::ByDescendingFrequency(log, 3);
  ASSERT_TRUE(permutation.ok());
  EXPECT_EQ(permutation->ToNew(0), 0);
  EXPECT_EQ(permutation->ToNew(1), 1);
  EXPECT_EQ(permutation->ToNew(2), 2);  // Unseen license stays last.
}

TEST(LicensePermutationTest, RejectsOutOfRangeLogRecords) {
  // A record mentioning license index 4 cannot relabel a 3-license domain:
  // silently dropping it (the old behavior) would undercount frequencies
  // and send downstream MapMask into out-of-range array reads.
  LogStore log;
  ASSERT_TRUE(log.Append(LogRecord{"a", testing::Mask(0b011), 1}).ok());
  ASSERT_TRUE(log.Append(LogRecord{"b", testing::Mask(0b10001), 1}).ok());
  const Result<LicensePermutation> permutation =
      LicensePermutation::ByDescendingFrequency(log, 3);
  ASSERT_FALSE(permutation.ok());
  EXPECT_EQ(permutation.status().code(), StatusCode::kInvalidArgument);

  // The same contract surfaces through the Validate facade, matching the
  // tree overload's error for inconsistent logs.
  const Result<ValidationOutcome> outcome = Validate(
      log, {10, 10, 10}, {.order = TreeOrder::kDescendingFrequency});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(LicensePermutationTest, MaskRoundTrip) {
  LogStore log;
  ASSERT_TRUE(log.Append(LogRecord{"a", testing::Mask(0b10000), 1}).ok());
  const Result<LicensePermutation> permutation =
      LicensePermutation::ByDescendingFrequency(log, 5);
  ASSERT_TRUE(permutation.ok());
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const LicenseSet mask =
        LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(5);
    EXPECT_EQ(permutation->UnmapMask(permutation->MapMask(mask)), mask);
    EXPECT_EQ(permutation->MapMask(mask).Size(), (mask).Size());
  }
}

TEST(LicensePermutationTest, MapValuesReorders) {
  LogStore log;
  ASSERT_TRUE(log.Append(LogRecord{"a", testing::Mask(0b100), 1}).ok());  // L3 hottest.
  const Result<LicensePermutation> permutation =
      LicensePermutation::ByDescendingFrequency(log, 3);
  ASSERT_TRUE(permutation.ok());
  // Aggregates (10, 20, 30) in original order → relabeled order starts
  // with L3's 30.
  EXPECT_EQ(permutation->MapValues({10, 20, 30}),
            (std::vector<int64_t>{30, 10, 20}));
}

TEST(FrequencyOrderedValidationTest, MatchesPlainOrdering) {
  for (uint64_t seed : {41u, 42u}) {
    WorkloadConfig config = PaperSweepConfig(12, seed);
    config.num_records = 800;
    config.aggregate_min = 50;
    config.aggregate_max = 500;
    Result<Workload> workload = WorkloadGenerator(config).Generate();
    ASSERT_TRUE(workload.ok());
    const std::vector<int64_t> aggregates =
        workload->licenses->AggregateCounts();

    const Result<ValidationTree> plain_tree =
        ValidationTree::BuildFromLog(workload->log);
    ASSERT_TRUE(plain_tree.ok());
    const Result<ValidationReport> plain =
        RunExhaustive(*plain_tree, aggregates);
    ASSERT_TRUE(plain.ok());

    const Result<ValidationReport> ordered =
        ValidateExhaustiveFrequencyOrdered(workload->log, aggregates);
    ASSERT_TRUE(ordered.ok());
    EXPECT_EQ(ordered->equations_evaluated, plain->equations_evaluated);

    // Same violation multisets (order differs: relabeled enumeration).
    auto key = [](const EquationResult& e) { return e.set; };
    std::vector<EquationResult> a = plain->violations;
    std::vector<EquationResult> b = ordered->violations;
    ASSERT_EQ(a.size(), b.size());
    std::sort(a.begin(), a.end(), [&](const auto& x, const auto& y) {
      return key(x) < key(y);
    });
    std::sort(b.begin(), b.end(), [&](const auto& x, const auto& y) {
      return key(x) < key(y);
    });
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].set, b[i].set);
      EXPECT_EQ(a[i].lhs, b[i].lhs);
      EXPECT_EQ(a[i].rhs, b[i].rhs);
    }
  }
}

TEST(FrequencyOrderedValidationTest, TreeNeverLargerThanIndexOrder) {
  // The point of frequency ordering: hot licenses near the root share
  // prefixes, so the tree has at most as many nodes on skewed logs.
  Rng rng(515);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 12;
    LogStore log;
    // Skewed: license n−1 (cold index, hot in reality) is in every set.
    for (int r = 0; r < 300; ++r) {
      LicenseSet set = LicenseSet::Singleton(n - 1);
      for (int j = 0; j + 1 < n; ++j) {
        if (rng.Bernoulli(0.15)) {
          set |= LicenseSet::Singleton(j);
        }
      }
      ASSERT_TRUE(log.Append(LogRecord{"", set, 1}).ok());
    }
    const Result<ValidationTree> plain = ValidationTree::BuildFromLog(log);
    ASSERT_TRUE(plain.ok());
    const Result<LicensePermutation> permutation =
        LicensePermutation::ByDescendingFrequency(log, n);
    ASSERT_TRUE(permutation.ok());
    const Result<ValidationTree> ordered =
        BuildFrequencyOrderedTree(log, *permutation);
    ASSERT_TRUE(ordered.ok());
    ASSERT_TRUE(ordered->CheckInvariants().ok());
    EXPECT_LE(ordered->NodeCount(), plain->NodeCount());
    EXPECT_EQ(ordered->TotalCount(), plain->TotalCount());
  }
}

}  // namespace
}  // namespace geolic
