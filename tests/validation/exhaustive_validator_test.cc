#include "validation/exhaustive_validator.h"
#include "validation/validate.h"

#include <gtest/gtest.h>

#include "util/random.h"

#include "test_util.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

Result<ValidationReport> RunExhaustiveLimited(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates,
    uint64_t max_equations) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  options.max_equations = max_equations;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

ValidationTree TreeOf(
    const std::vector<std::pair<LicenseSet, int64_t>>& entries) {
  ValidationTree tree;
  for (const auto& [set, count] : entries) {
    GEOLIC_CHECK(tree.Insert(set, count).ok());
  }
  return tree;
}

TEST(ExhaustiveValidatorTest, EmptyInputsAreValid) {
  ValidationTree tree;
  const Result<ValidationReport> report = RunExhaustive(tree, {});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->all_valid());
  EXPECT_EQ(report->equations_evaluated, 0u);
}

TEST(ExhaustiveValidatorTest, EvaluatesAllEquations) {
  const ValidationTree tree = TreeOf({{testing::Mask(0b1), 5}});
  const Result<ValidationReport> report =
      RunExhaustive(tree, {10, 10, 10});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->equations_evaluated, 7u);  // 2^3 - 1.
  EXPECT_TRUE(report->all_valid());
}

TEST(ExhaustiveValidatorTest, DetectsSingleLicenseOverflow) {
  const ValidationTree tree = TreeOf({{testing::Mask(0b1), 15}});
  const Result<ValidationReport> report = RunExhaustive(tree, {10, 100});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->violations.size(), 1u);
  EXPECT_EQ(report->violations[0].set, testing::Mask(0b1));
  EXPECT_EQ(report->violations[0].lhs, 15);
  EXPECT_EQ(report->violations[0].rhs, 10);
  EXPECT_FALSE(report->violations[0].valid());
}

TEST(ExhaustiveValidatorTest, DetectsPairwiseOverflowOnly) {
  // Individually fine (8 ≤ 10, 7 ≤ 10) but {L1} ∪ {L2} issued 15 + counts
  // on the pair 6 = 21 > A[{L1,L2}] = 20.
  const ValidationTree tree = TreeOf({{testing::Mask(0b01), 8}, {testing::Mask(0b10), 7}, {testing::Mask(0b11), 6}});
  const Result<ValidationReport> report = RunExhaustive(tree, {10, 10});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->violations.size(), 1u);
  EXPECT_EQ(report->violations[0].set, testing::Mask(0b11));
  EXPECT_EQ(report->violations[0].lhs, 21);
  EXPECT_EQ(report->violations[0].rhs, 20);
}

TEST(ExhaustiveValidatorTest, BoundaryEqualityIsValid) {
  const ValidationTree tree = TreeOf({{testing::Mask(0b1), 10}});
  const Result<ValidationReport> report = RunExhaustive(tree, {10});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->all_valid());
}

TEST(ExhaustiveValidatorTest, ViolationInSupersetEquationsToo) {
  // Overflow on {L1} also shows in {L1,L2} if A2 doesn't absorb it.
  const ValidationTree tree = TreeOf({{testing::Mask(0b01), 25}});
  const Result<ValidationReport> report = RunExhaustive(tree, {10, 5});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->violations.size(), 2u);
  EXPECT_EQ(report->violations[0].set, testing::Mask(0b01));
  EXPECT_EQ(report->violations[1].set, testing::Mask(0b11));
  EXPECT_EQ(report->violations[1].rhs, 15);
}

TEST(ExhaustiveValidatorTest, RejectsTreeBeyondAggregateArray) {
  const ValidationTree tree = TreeOf({{testing::Mask(0b100), 5}});
  const Result<ValidationReport> report = RunExhaustive(tree, {10, 10});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExhaustiveValidatorTest, RejectsMoreThan64Licenses) {
  ValidationTree tree;
  const Result<ValidationReport> report =
      RunExhaustive(tree, std::vector<int64_t>(65, 10));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCapacityExceeded);
}

TEST(ExhaustiveValidatorTest, LimitedStopsEarly) {
  const ValidationTree tree = TreeOf({{testing::Mask(0b1), 5}});
  const Result<ValidationReport> report =
      RunExhaustiveLimited(tree, std::vector<int64_t>(10, 100), 100);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->equations_evaluated, 100u);
}

TEST(ExhaustiveValidatorTest, ReportToString) {
  const ValidationTree tree = TreeOf({{testing::Mask(0b1), 15}});
  const Result<ValidationReport> report = RunExhaustive(tree, {10});
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->ToString().find("C<{L1}> = 15 > A[{L1}] = 10"),
            std::string::npos);
  ValidationReport ok_report;
  ok_report.equations_evaluated = 31;
  EXPECT_EQ(ok_report.ToString(), "OK (31 equations)");
}

TEST(LhsFromMergedCountsTest, SumsSubsetsOnly) {
  std::unordered_map<LicenseSet, int64_t> merged = {
      {testing::Mask(0b001), 5},
      {testing::Mask(0b011), 7},
      {testing::Mask(0b100), 9},
      {testing::Mask(0b111), 11}};
  EXPECT_EQ(LhsFromMergedCounts(merged, testing::Mask(0b011)), 12);
  EXPECT_EQ(LhsFromMergedCounts(merged, testing::Mask(0b111)), 32);
  EXPECT_EQ(LhsFromMergedCounts(merged, testing::Mask(0b100)), 9);
  EXPECT_EQ(LhsFromMergedCounts(merged, testing::Mask(0b010)), 0);
}

// Property: validator verdicts match a direct evaluation of every equation
// from merged counts, on random logs and aggregates.
class ExhaustivePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustivePropertyTest, MatchesDirectEvaluation) {
  const int n = GetParam();
  Rng rng(5150 + static_cast<uint64_t>(n));
  for (int trial = 0; trial < 20; ++trial) {
    LogStore store;
    ValidationTree tree;
    const int records = 100;
    for (int r = 0; r < records; ++r) {
      const LicenseSet set =
          (LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(n)) |
          LicenseSet::Singleton(static_cast<int>(rng.UniformInt(0, n - 1)));
      const int64_t count = rng.UniformInt(1, 40);
      ASSERT_TRUE(store.Append(LogRecord{"", set, count}).ok());
      ASSERT_TRUE(tree.Insert(set, count).ok());
    }
    // Aggregates tight enough that some violations occur.
    std::vector<int64_t> aggregates;
    for (int j = 0; j < n; ++j) {
      aggregates.push_back(rng.UniformInt(50, 600));
    }
    const Result<ValidationReport> report =
        RunExhaustive(tree, aggregates);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->equations_evaluated, (uint64_t{1} << n) - 1);

    const auto merged = store.MergedCounts();
    std::vector<EquationResult> expected;
    for (uint64_t word = 1; word <= ((uint64_t{1} << n) - 1); ++word) {
      const LicenseSet set = LicenseSet::FromWord(word);
      const int64_t lhs = LhsFromMergedCounts(merged, set);
      int64_t rhs = 0;
      for (int j = 0; j < n; ++j) {
        if ((set).Contains(j)) {
          rhs += aggregates[static_cast<size_t>(j)];
        }
      }
      if (lhs > rhs) {
        expected.push_back(EquationResult{set, lhs, rhs});
      }
    }
    ASSERT_EQ(report->violations.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(report->violations[i].set, expected[i].set);
      EXPECT_EQ(report->violations[i].lhs, expected[i].lhs);
      EXPECT_EQ(report->violations[i].rhs, expected[i].rhs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LicenseCounts, ExhaustivePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace geolic
