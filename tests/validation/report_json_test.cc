#include "validation/report_json.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace geolic {
namespace {

TEST(ReportJsonTest, CleanReport) {
  ValidationReport report;
  report.equations_evaluated = 31;
  report.nodes_visited = 12;
  EXPECT_EQ(ReportToJson(report),
            "{\"valid\":true,\"equations_evaluated\":31,"
            "\"nodes_visited\":12,\"violations\":[]}");
}

TEST(ReportJsonTest, ViolationsSerialised) {
  ValidationReport report;
  report.equations_evaluated = 7;
  report.violations.push_back(EquationResult{testing::Mask(0b011), 1240, 1000});
  const std::string json = ReportToJson(report);
  EXPECT_NE(json.find("\"valid\":false"), std::string::npos);
  EXPECT_NE(json.find("\"set_mask\":\"0x3\""), std::string::npos);
  EXPECT_NE(json.find("\"licenses\":[1,2]"), std::string::npos);
  EXPECT_NE(json.find("\"lhs\":1240"), std::string::npos);
  EXPECT_NE(json.find("\"rhs\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"excess\":240"), std::string::npos);
}

TEST(ReportJsonTest, SingleEquationResult) {
  EXPECT_EQ(EquationResultToJson(EquationResult{testing::Mask(0b100), 60, 50}),
            "{\"set_mask\":\"0x4\",\"licenses\":[3],\"lhs\":60,"
            "\"rhs\":50,\"excess\":10}");
}

TEST(ReportJsonTest, HighLicenseIndexes) {
  const std::string json =
      EquationResultToJson(EquationResult{LicenseSet::Singleton(63), 1, 2});
  EXPECT_NE(json.find("\"licenses\":[64]"), std::string::npos);
  EXPECT_NE(json.find("\"set_mask\":\"0x8000000000000000\""),
            std::string::npos);
  EXPECT_NE(json.find("\"excess\":-1"), std::string::npos);
}

}  // namespace
}  // namespace geolic
