#include "validation/tree_serialization.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/random.h"

namespace geolic {
namespace {

std::string TempPath(const std::string& suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "geolic_" + info->test_suite_name() + "_" +
         info->name() + suffix;
}

ValidationTree SampleTree() {
  ValidationTree tree;
  GEOLIC_CHECK(tree.Insert(0b00011, 840).ok());
  GEOLIC_CHECK(tree.Insert(0b00010, 400).ok());
  GEOLIC_CHECK(tree.Insert(0b01011, 30).ok());
  GEOLIC_CHECK(tree.Insert(0b10100, 800).ok());
  GEOLIC_CHECK(tree.Insert(0b10000, 20).ok());
  return tree;
}

TEST(TreeSerializationTest, RoundTripsSampleTree) {
  const ValidationTree original = SampleTree();
  const std::string path = TempPath(".tree");
  ASSERT_TRUE(SaveTree(original, path).ok());
  const Result<ValidationTree> loaded = LoadTree(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ToString(), original.ToString());
  EXPECT_EQ(loaded->NodeCount(), original.NodeCount());
  EXPECT_EQ(loaded->TotalCount(), original.TotalCount());
  EXPECT_TRUE(loaded->CheckInvariants().ok());
  std::remove(path.c_str());
}

TEST(TreeSerializationTest, RoundTripsEmptyTree) {
  const std::string path = TempPath(".tree");
  ASSERT_TRUE(SaveTree(ValidationTree(), path).ok());
  const Result<ValidationTree> loaded = LoadTree(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NodeCount(), 0u);
  std::remove(path.c_str());
}

TEST(TreeSerializationTest, StreamVariants) {
  const ValidationTree original = SampleTree();
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTree(original, &buffer).ok());
  const Result<ValidationTree> loaded = DeserializeTree(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ToString(), original.ToString());
}

TEST(TreeSerializationTest, RejectsWrongMagic) {
  std::stringstream buffer;
  buffer << "GARBAGE_GARBAGE_GARBAGE";
  EXPECT_EQ(DeserializeTree(&buffer).status().code(),
            StatusCode::kParseError);
}

TEST(TreeSerializationTest, RejectsTruncation) {
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTree(SampleTree(), &buffer).ok());
  const std::string bytes = buffer.str();
  // Cut the payload at every prefix length; none may crash and all but the
  // full length must fail cleanly.
  for (size_t cut = 0; cut + 1 < bytes.size(); cut += 7) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_FALSE(DeserializeTree(&truncated).ok()) << "cut=" << cut;
  }
}

TEST(TreeSerializationTest, RejectsCorruptedStructure) {
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTree(SampleTree(), &buffer).ok());
  std::string bytes = buffer.str();
  // Flip the root's first child index (right after the root triple) to a
  // large value, breaking the child-ordering invariant downstream.
  const size_t root_child_index_offset =
      sizeof(char) * 8 + sizeof(uint64_t) +  // magic + node count
      sizeof(int32_t) + sizeof(int64_t) + sizeof(uint32_t);  // root triple
  bytes[root_child_index_offset] = 60;  // L1 node index 0 → 60.
  std::stringstream corrupted(bytes);
  const Result<ValidationTree> loaded = DeserializeTree(&corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(TreeSerializationTest, MissingFileFails) {
  EXPECT_EQ(LoadTree("/nonexistent/geolic.tree").status().code(),
            StatusCode::kIoError);
}

// Property: random trees survive the round trip with identical set counts.
TEST(TreeSerializationPropertyTest, RandomTreesRoundTrip) {
  Rng rng(60606);
  for (int trial = 0; trial < 20; ++trial) {
    ValidationTree tree;
    const int records = static_cast<int>(rng.UniformInt(1, 300));
    for (int r = 0; r < records; ++r) {
      const LicenseMask set =
          (static_cast<LicenseMask>(rng.Next()) & FullMask(20)) | 1u;
      ASSERT_TRUE(tree.Insert(set, rng.UniformInt(1, 100)).ok());
    }
    std::stringstream buffer;
    ASSERT_TRUE(SerializeTree(tree, &buffer).ok());
    const Result<ValidationTree> loaded = DeserializeTree(&buffer);
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(loaded->CheckInvariants().ok());
    // Compare the full set→count maps.
    std::unordered_map<LicenseMask, int64_t> expected;
    tree.ForEachSet([&expected](LicenseMask set, int64_t count) {
      expected[set] = count;
    });
    size_t seen = 0;
    loaded->ForEachSet([&](LicenseMask set, int64_t count) {
      ++seen;
      auto it = expected.find(set);
      ASSERT_NE(it, expected.end());
      EXPECT_EQ(it->second, count);
    });
    EXPECT_EQ(seen, expected.size());
  }
}

TEST(ValidationTreeTest, ForEachSetListsExactlyMergedCounts) {
  const ValidationTree tree = SampleTree();
  std::unordered_map<LicenseMask, int64_t> sets;
  tree.ForEachSet([&sets](LicenseMask set, int64_t count) {
    sets[set] = count;
  });
  EXPECT_EQ(sets.size(), 5u);
  EXPECT_EQ(sets.at(0b00011), 840);
  EXPECT_EQ(sets.at(0b10000), 20);
  // Prefix nodes with zero count (e.g. {L1}) are not reported.
  EXPECT_EQ(sets.find(0b00001), sets.end());
}

}  // namespace
}  // namespace geolic
