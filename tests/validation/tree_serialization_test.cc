#include "validation/tree_serialization.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace geolic {
namespace {

std::string TempPath(const std::string& suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "geolic_" + info->test_suite_name() + "_" +
         info->name() + suffix;
}

ValidationTree SampleTree() {
  ValidationTree tree;
  GEOLIC_CHECK(tree.Insert(testing::Mask(0b00011), 840).ok());
  GEOLIC_CHECK(tree.Insert(testing::Mask(0b00010), 400).ok());
  GEOLIC_CHECK(tree.Insert(testing::Mask(0b01011), 30).ok());
  GEOLIC_CHECK(tree.Insert(testing::Mask(0b10100), 800).ok());
  GEOLIC_CHECK(tree.Insert(testing::Mask(0b10000), 20).ok());
  return tree;
}

TEST(TreeSerializationTest, RoundTripsSampleTree) {
  const ValidationTree original = SampleTree();
  const std::string path = TempPath(".tree");
  ASSERT_TRUE(SaveTree(original, path).ok());
  const Result<ValidationTree> loaded = LoadTree(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ToString(), original.ToString());
  EXPECT_EQ(loaded->NodeCount(), original.NodeCount());
  EXPECT_EQ(loaded->TotalCount(), original.TotalCount());
  EXPECT_TRUE(loaded->CheckInvariants().ok());
  std::remove(path.c_str());
}

TEST(TreeSerializationTest, RoundTripsEmptyTree) {
  const std::string path = TempPath(".tree");
  ASSERT_TRUE(SaveTree(ValidationTree(), path).ok());
  const Result<ValidationTree> loaded = LoadTree(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NodeCount(), 0u);
  std::remove(path.c_str());
}

TEST(TreeSerializationTest, StreamVariants) {
  const ValidationTree original = SampleTree();
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTree(original, &buffer).ok());
  const Result<ValidationTree> loaded = DeserializeTree(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ToString(), original.ToString());
}

TEST(TreeSerializationTest, RejectsWrongMagic) {
  std::stringstream buffer;
  buffer << "GARBAGE_GARBAGE_GARBAGE";
  EXPECT_EQ(DeserializeTree(&buffer).status().code(),
            StatusCode::kParseError);
}

TEST(TreeSerializationTest, RejectsTruncation) {
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTree(SampleTree(), &buffer).ok());
  const std::string bytes = buffer.str();
  // Cut the payload at every prefix length; none may crash and all but the
  // full length must fail cleanly.
  for (size_t cut = 0; cut + 1 < bytes.size(); cut += 7) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_FALSE(DeserializeTree(&truncated).ok()) << "cut=" << cut;
  }
}

TEST(TreeSerializationTest, RejectsCorruptedStructure) {
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTree(SampleTree(), &buffer).ok());
  std::string bytes = buffer.str();
  // Flip the root's first child index (right after the root triple) to a
  // large value, breaking the child-ordering invariant downstream.
  const size_t root_child_index_offset =
      sizeof(char) * 8 + sizeof(uint64_t) +  // magic + node count
      sizeof(int32_t) + sizeof(int64_t) + sizeof(uint32_t);  // root triple
  bytes[root_child_index_offset] = 60;  // L1 node index 0 → 60.
  std::stringstream corrupted(bytes);
  const Result<ValidationTree> loaded = DeserializeTree(&corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(TreeSerializationTest, MissingFileFails) {
  EXPECT_EQ(LoadTree("/nonexistent/geolic.tree").status().code(),
            StatusCode::kIoError);
}

// Property: random trees survive the round trip with identical set counts.
TEST(TreeSerializationPropertyTest, RandomTreesRoundTrip) {
  Rng rng(testing::TestSeed(60606));
  for (int trial = 0; trial < 20; ++trial) {
    ValidationTree tree;
    const int records = static_cast<int>(rng.UniformInt(1, 300));
    for (int r = 0; r < records; ++r) {
      const LicenseSet set =
          (LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(20)) |
          LicenseSet::Singleton(0);
      ASSERT_TRUE(tree.Insert(set, rng.UniformInt(1, 100)).ok());
    }
    std::stringstream buffer;
    ASSERT_TRUE(SerializeTree(tree, &buffer).ok());
    const Result<ValidationTree> loaded = DeserializeTree(&buffer);
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(loaded->CheckInvariants().ok());
    // Compare the full set→count maps.
    std::unordered_map<LicenseSet, int64_t> expected;
    tree.ForEachSet([&expected](LicenseSet set, int64_t count) {
      expected[set] = count;
    });
    size_t seen = 0;
    loaded->ForEachSet([&](LicenseSet set, int64_t count) {
      ++seen;
      auto it = expected.find(set);
      ASSERT_NE(it, expected.end());
      EXPECT_EQ(it->second, count);
    });
    EXPECT_EQ(seen, expected.size());
  }
}

// --- Deep chains -----------------------------------------------------------

// Chain-shaped tree of `depth` nodes (indexes 0..depth-1, each node the
// sole child of the previous, count 1 at every level). Path indexes only
// need to strictly increase, so the structure is format-legal at any
// depth. Built and compared without ToString/ForEachSet — those walk the
// license-mask space and are out of scope here.
ValidationTree DeepChain(int depth) {
  ValidationTree tree;
  ValidationTreeNode* node = tree.mutable_root();
  for (int level = 0; level < depth; ++level) {
    auto child = std::make_unique<ValidationTreeNode>();
    child->index = level;
    child->count = 1;
    ValidationTreeNode* child_ptr = child.get();
    node->children.push_back(std::move(child));
    node = child_ptr;
  }
  return tree;
}

// Regression: serializer, deserializer, invariant checker and destructor
// all used to recurse once per level — a ~100k-deep chain (an adversarial
// checkpoint, or any tree deeper than the call stack) blew the stack in
// whichever of the four ran first. All four must be iterative.
TEST(TreeSerializationTest, HundredThousandDeepChainRoundTrips) {
  constexpr int kDepth = 100000;
  std::string bytes;
  {
    const ValidationTree original = DeepChain(kDepth);
    ASSERT_EQ(original.NodeCount(), static_cast<size_t>(kDepth));
    ASSERT_EQ(original.TotalCount(), kDepth);
    std::stringstream buffer;
    ASSERT_TRUE(SerializeTree(original, &buffer).ok());
    bytes = buffer.str();
  }  // `original` destroyed here — teardown must be iterative too.
  std::stringstream in(bytes);
  const Result<ValidationTree> loaded = DeserializeTree(&in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NodeCount(), static_cast<size_t>(kDepth));
  EXPECT_EQ(loaded->TotalCount(), kDepth);
  // Re-serializing the loaded tree reproduces the bytes exactly.
  std::stringstream again;
  ASSERT_TRUE(SerializeTree(*loaded, &again).ok());
  EXPECT_EQ(again.str(), bytes);
}

TEST(TreeSerializationTest, DeepChainMoveAssignTearsDownIteratively) {
  ValidationTree tree = DeepChain(100000);
  // Move-assign drops the old deep chain; the default member-wise
  // unique_ptr teardown would recurse per level.
  tree = DeepChain(3);
  EXPECT_EQ(tree.NodeCount(), 3u);
}

// --- Corruption matrix -----------------------------------------------------

// A flipped bit anywhere in a v2 checkpoint fails the load: header flips
// break the header CRC, payload flips the payload CRC.
TEST(TreeSerializationTest, V2EveryFlippedByteFailsTheLoad) {
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTree(SampleTree(), &buffer).ok());
  const std::string bytes = buffer.str();
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    std::stringstream in(mutated);
    EXPECT_FALSE(DeserializeTree(&in).ok()) << "byte " << i;
  }
}

TEST(TreeSerializationTest, LegacyV1StillLoads) {
  const ValidationTree original = SampleTree();
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTreeV1(original, &buffer).ok());
  const Result<ValidationTree> loaded = DeserializeTree(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ToString(), original.ToString());
}

TEST(TreeSerializationTest, LegacyV1RejectsTruncatedHeader) {
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTreeV1(SampleTree(), &buffer).ok());
  const std::string bytes = buffer.str();
  // Cut inside the node-count field (after the magic, before the payload).
  for (size_t cut = 0; cut < 16; ++cut) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_FALSE(DeserializeTree(&truncated).ok()) << "cut=" << cut;
  }
}

TEST(TreeSerializationTest, LegacyV1RejectsOverdeclaredNodeCount) {
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTreeV1(SampleTree(), &buffer).ok());
  std::string bytes = buffer.str();
  // Node count (u64 at offset 8) claims one more node than the payload
  // holds: the reader must run out of declared payload, not over-read.
  ++bytes[8];
  std::stringstream in(bytes);
  const Result<ValidationTree> loaded = DeserializeTree(&in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(TreeSerializationTest, LegacyV1RejectsChildCountOverrun) {
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTreeV1(SampleTree(), &buffer).ok());
  std::string bytes = buffer.str();
  // Root triple starts at 16 (magic 8 + count 8); its child_count is the
  // u32 at 16 + 4 + 8. Claim far more children than declared nodes.
  bytes[16 + 4 + 8] = static_cast<char>(0xff);
  std::stringstream in(bytes);
  const Result<ValidationTree> loaded = DeserializeTree(&in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

// v1's documented blindness: with no checksums, a flipped bit inside a
// count field loads cleanly and silently corrupts every downstream C<S>.
// This is the failure mode the v2 container exists to close.
TEST(TreeSerializationTest, LegacyV1CannotDetectFlippedCountByte) {
  const ValidationTree original = SampleTree();
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTreeV1(original, &buffer).ok());
  std::string bytes = buffer.str();
  // First child triple at 16 + 16; its count is the i64 at +4. Flipping a
  // low bit keeps the count positive, so no invariant trips.
  bytes[16 + 16 + 4] = static_cast<char>(bytes[16 + 16 + 4] ^ 0x01);
  std::stringstream in(bytes);
  const Result<ValidationTree> loaded = DeserializeTree(&in);
  ASSERT_TRUE(loaded.ok());  // Loads fine...
  EXPECT_NE(loaded->ToString(), original.ToString());  // ...wrong counts.
}

// Fuzz: random byte soup and random mutations of a valid v2 document must
// never crash the loader (run under ASan/UBSan in CI).
TEST(TreeSerializationTest, FuzzedInputNeverCrashes) {
  Rng rng(testing::TestSeed(987654));
  std::stringstream clean_buffer;
  ASSERT_TRUE(SerializeTree(SampleTree(), &clean_buffer).ok());
  const std::string clean = clean_buffer.str();
  for (int trial = 0; trial < 3000; ++trial) {
    std::string bytes;
    if (trial % 2 == 0) {
      // Pure random soup, sometimes starting with a valid magic.
      const size_t size = static_cast<size_t>(rng.UniformInt(0, 200));
      bytes.resize(size);
      for (char& c : bytes) {
        c = static_cast<char>(rng.UniformInt(0, 255));
      }
      if (trial % 4 == 0 && bytes.size() >= 8) {
        bytes.replace(0, 8, clean, 0, 8);
      }
    } else {
      // Mutations of the valid document.
      bytes = clean;
      const int edits = 1 + static_cast<int>(rng.UniformInt(0, 4));
      for (int e = 0; e < edits; ++e) {
        const size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
        bytes[at] = static_cast<char>(rng.UniformInt(0, 255));
      }
    }
    std::stringstream in(bytes);
    const Result<ValidationTree> loaded = DeserializeTree(&in);
    if (loaded.ok()) {
      EXPECT_TRUE(loaded->CheckInvariants().ok());
    }
  }
}

TEST(ValidationTreeTest, ForEachSetListsExactlyMergedCounts) {
  const ValidationTree tree = SampleTree();
  std::unordered_map<LicenseSet, int64_t> sets;
  tree.ForEachSet([&sets](LicenseSet set, int64_t count) {
    sets[set] = count;
  });
  EXPECT_EQ(sets.size(), 5u);
  EXPECT_EQ(sets.at(testing::Mask(0b00011)), 840);
  EXPECT_EQ(sets.at(testing::Mask(0b10000)), 20);
  // Prefix nodes with zero count (e.g. {L1}) are not reported.
  EXPECT_EQ(sets.find(testing::Mask(0b00001)), sets.end());
}

}  // namespace
}  // namespace geolic
