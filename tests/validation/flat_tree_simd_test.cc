#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/cpu_dispatch.h"
#include "util/license_set.h"
#include "util/random.h"
#include "validation/flat_tree.h"
#include "validation/validation_tree.h"

namespace geolic {
namespace {

// Random tree over `n` licenses with `records` inserted sets. Wide license
// indexes come from shifting random words into high positions.
ValidationTree RandomTree(Rng* rng, int n, int records) {
  ValidationTree tree;
  for (int r = 0; r < records; ++r) {
    LicenseSet set;
    for (int w = 0; w * 64 < n; ++w) {
      uint64_t word = rng->Next();
      if ((w + 1) * 64 > n) {
        word &= (uint64_t{1} << (n % 64)) - 1;
      }
      // Keep sets sparse-ish so coverage/descent both occur.
      word &= rng->Next() & rng->Next();
      for (uint64_t bits = word; bits != 0; bits &= bits - 1) {
        set.Add(w * 64 + std::countr_zero(bits));
      }
    }
    if (set.Empty()) {
      continue;
    }
    EXPECT_TRUE(tree.Insert(set, rng->UniformInt(1, 50)).ok());
  }
  return tree;
}

std::vector<LicenseSet> RandomQueries(Rng* rng, int n, size_t count) {
  std::vector<LicenseSet> queries;
  queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    LicenseSet set;
    for (int w = 0; w * 64 < n; ++w) {
      uint64_t word = rng->Next();
      if ((w + 1) * 64 > n) {
        word &= (uint64_t{1} << (n % 64)) - 1;
      }
      if (rng->Bernoulli(0.4)) {
        word |= rng->Next();  // Dense query: drives the covered fast path.
      }
      for (uint64_t bits = word; bits != 0; bits &= bits - 1) {
        set.Add(w * 64 + std::countr_zero(bits));
      }
    }
    queries.push_back(set);
  }
  return queries;
}

// The dispatched batch scan, the pinned-scalar batch scan, the wide
// reference, and per-query SumSubsets must agree bit-for-bit on sums AND
// nodes_visited — the PR-2-style gate every kernel tier must pass before
// any timing run trusts it.
TEST(FlatTreeSimdTest, BatchTiersBitIdenticalToScalarAcrossWidths) {
  Rng rng(77002);
  for (const int n : {12, 48, 64, 100, 128, 256}) {
    for (int trial = 0; trial < 8; ++trial) {
      const ValidationTree tree =
          RandomTree(&rng, n, 40 + 20 * (trial % 3));
      const FlatValidationTree flat = FlatValidationTree::Compile(tree);
      // Odd count exercises the partial last chunk.
      const std::vector<LicenseSet> queries =
          RandomQueries(&rng, n, trial % 2 == 0 ? 192 : 67);

      std::vector<int64_t> vec_sums(queries.size());
      std::vector<int64_t> scalar_sums(queries.size());
      std::vector<int64_t> wide_sums(queries.size());
      uint64_t vec_nodes = 0;
      uint64_t scalar_nodes = 0;
      uint64_t wide_nodes = 0;
      flat.SumSubsetsBatch(queries, vec_sums, &vec_nodes);
      flat.SumSubsetsBatchScalar(queries, scalar_sums, &scalar_nodes);
      flat.SumSubsetsBatchWideReference(queries, wide_sums, &wide_nodes);

      EXPECT_EQ(vec_nodes, scalar_nodes) << "n=" << n << " trial=" << trial;
      EXPECT_EQ(wide_nodes, scalar_nodes) << "n=" << n << " trial=" << trial;
      uint64_t serial_nodes = 0;
      for (size_t q = 0; q < queries.size(); ++q) {
        const int64_t want = flat.SumSubsets(queries[q], &serial_nodes);
        ASSERT_EQ(vec_sums[q], want) << "n=" << n << " q=" << q;
        ASSERT_EQ(scalar_sums[q], want) << "n=" << n << " q=" << q;
        ASSERT_EQ(wide_sums[q], want) << "n=" << n << " q=" << q;
        ASSERT_EQ(want, tree.SumSubsets(queries[q])) << "n=" << n;
      }
      EXPECT_EQ(vec_nodes, serial_nodes)
          << "batch nodes_visited must equal the per-query scans, n=" << n;
    }
  }
}

TEST(FlatTreeSimdTest, ActiveKernelsReportNonEmptyTierName) {
  const simd::Kernels& kernels = simd::ActiveKernels();
  EXPECT_NE(kernels.name, nullptr);
  EXPECT_NE(kernels.name[0], '\0');
  // The active tier is one of the three known tables.
  const simd::Tier tier = simd::ActiveTier();
  EXPECT_EQ(&simd::KernelsForTier(tier), &kernels);
}

}  // namespace
}  // namespace geolic
