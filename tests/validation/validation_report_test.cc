#include "validation/validation_report.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace geolic {
namespace {

TEST(EquationResultTest, ValidIffLhsWithinRhs) {
  EXPECT_TRUE((EquationResult{0b1, 10, 10}).valid());
  EXPECT_TRUE((EquationResult{0b1, 9, 10}).valid());
  EXPECT_FALSE((EquationResult{0b1, 11, 10}).valid());
}

TEST(ValidationReportTest, ToStringListsEveryViolation) {
  ValidationReport report;
  report.equations_evaluated = 31;
  report.violations.push_back(EquationResult{0b00011, 1240, 1000});
  report.violations.push_back(EquationResult{0b10000, 60, 50});
  const std::string text = report.ToString();
  EXPECT_NE(text.find("2 violation(s) in 31 equations"), std::string::npos);
  EXPECT_NE(text.find("C<{L1, L2}> = 1240 > A[{L1, L2}] = 1000"),
            std::string::npos);
  EXPECT_NE(text.find("C<{L5}> = 60 > A[{L5}] = 50"), std::string::npos);
}

TEST(MinimalViolationsTest, ChainKeepsOnlyTheRoot) {
  // {L1} ⊂ {L1,L2} ⊂ {L1,L2,L3}: only the innermost survives.
  const std::vector<EquationResult> chain = {
      {0b111, 30, 10}, {0b011, 25, 10}, {0b001, 20, 10}};
  const std::vector<EquationResult> minimal = MinimalViolations(chain);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0].set, 0b001u);
}

TEST(MinimalViolationsTest, PreservesInputOrder) {
  const std::vector<EquationResult> violations = {
      {0b100, 5, 1}, {0b010, 5, 1}, {0b001, 5, 1}};
  const std::vector<EquationResult> minimal =
      MinimalViolations(violations);
  ASSERT_EQ(minimal.size(), 3u);
  EXPECT_EQ(minimal[0].set, 0b100u);
  EXPECT_EQ(minimal[1].set, 0b010u);
  EXPECT_EQ(minimal[2].set, 0b001u);
}

// Property: every minimal violation is in the input; every input violation
// is a superset of some minimal one; no minimal violation is a strict
// superset of another.
TEST(MinimalViolationsPropertyTest, SoundAndComplete) {
  Rng rng(2718);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<EquationResult> violations;
    const int count = static_cast<int>(rng.UniformInt(0, 20));
    for (int i = 0; i < count; ++i) {
      violations.push_back(EquationResult{
          (rng.Next() & FullMask(8)) | 1u, rng.UniformInt(1, 100), 0});
    }
    const std::vector<EquationResult> minimal =
        MinimalViolations(violations);
    for (const EquationResult& m : minimal) {
      bool found = false;
      for (const EquationResult& v : violations) {
        if (v.set == m.set) {
          found = true;
        }
      }
      EXPECT_TRUE(found);
      for (const EquationResult& other : minimal) {
        if (other.set != m.set) {
          EXPECT_FALSE(IsSubsetOf(other.set, m.set) &&
                       IsSubsetOf(m.set, other.set));
        }
      }
    }
    for (const EquationResult& v : violations) {
      bool covered = false;
      for (const EquationResult& m : minimal) {
        if (IsSubsetOf(m.set, v.set)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << MaskToString(v.set);
    }
  }
}

}  // namespace
}  // namespace geolic
