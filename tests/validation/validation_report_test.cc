#include "validation/validation_report.h"

#include <gtest/gtest.h>

#include "util/random.h"

#include "test_util.h"

namespace geolic {
namespace {

TEST(EquationResultTest, ValidIffLhsWithinRhs) {
  EXPECT_TRUE((EquationResult{testing::Mask(0b1), 10, 10}).valid());
  EXPECT_TRUE((EquationResult{testing::Mask(0b1), 9, 10}).valid());
  EXPECT_FALSE((EquationResult{testing::Mask(0b1), 11, 10}).valid());
}

TEST(ValidationReportTest, ToStringListsEveryViolation) {
  ValidationReport report;
  report.equations_evaluated = 31;
  report.violations.push_back(EquationResult{testing::Mask(0b00011), 1240, 1000});
  report.violations.push_back(EquationResult{testing::Mask(0b10000), 60, 50});
  const std::string text = report.ToString();
  EXPECT_NE(text.find("2 violation(s) in 31 equations"), std::string::npos);
  EXPECT_NE(text.find("C<{L1, L2}> = 1240 > A[{L1, L2}] = 1000"),
            std::string::npos);
  EXPECT_NE(text.find("C<{L5}> = 60 > A[{L5}] = 50"), std::string::npos);
}

TEST(MinimalViolationsTest, ChainKeepsOnlyTheRoot) {
  // {L1} ⊂ {L1,L2} ⊂ {L1,L2,L3}: only the innermost survives.
  const std::vector<EquationResult> chain = {
      {testing::Mask(0b111), 30, 10},
      {testing::Mask(0b011), 25, 10},
      {testing::Mask(0b001), 20, 10}};
  const std::vector<EquationResult> minimal = MinimalViolations(chain);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0].set, testing::Mask(0b001));
}

TEST(MinimalViolationsTest, PreservesInputOrder) {
  const std::vector<EquationResult> violations = {
      {testing::Mask(0b100), 5, 1}, {testing::Mask(0b010), 5, 1}, {testing::Mask(0b001), 5, 1}};
  const std::vector<EquationResult> minimal =
      MinimalViolations(violations);
  ASSERT_EQ(minimal.size(), 3u);
  EXPECT_EQ(minimal[0].set, testing::Mask(0b100));
  EXPECT_EQ(minimal[1].set, testing::Mask(0b010));
  EXPECT_EQ(minimal[2].set, testing::Mask(0b001));
}

// Property: every minimal violation is in the input; every input violation
// is a superset of some minimal one; no minimal violation is a strict
// superset of another.
TEST(MinimalViolationsPropertyTest, SoundAndComplete) {
  Rng rng(2718);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<EquationResult> violations;
    const int count = static_cast<int>(rng.UniformInt(0, 20));
    for (int i = 0; i < count; ++i) {
      violations.push_back(EquationResult{
          (LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(8)) |
              LicenseSet::Singleton(0), rng.UniformInt(1, 100), 0});
    }
    const std::vector<EquationResult> minimal =
        MinimalViolations(violations);
    for (const EquationResult& m : minimal) {
      bool found = false;
      for (const EquationResult& v : violations) {
        if (v.set == m.set) {
          found = true;
        }
      }
      EXPECT_TRUE(found);
      for (const EquationResult& other : minimal) {
        if (other.set != m.set) {
          EXPECT_FALSE((other.set).IsSubsetOf(m.set) &&
                       (m.set).IsSubsetOf(other.set));
        }
      }
    }
    for (const EquationResult& v : violations) {
      bool covered = false;
      for (const EquationResult& m : minimal) {
        if ((m.set).IsSubsetOf(v.set)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << (v.set).ToString();
    }
  }
}

}  // namespace
}  // namespace geolic
