#include "validation/validation_tree.h"

#include <gtest/gtest.h>

#include "validation/exhaustive_validator.h"
#include "util/random.h"

#include "test_util.h"

namespace geolic {
namespace {

// The paper's Table 2 log (0-based masks).
LogStore PaperLog() {
  LogStore store;
  struct Row {
    const char* id;
    uint64_t mask;
    int64_t count;
  };
  const Row kRows[] = {
      {"LU1", 0b00011, 800}, {"LU2", 0b00010, 400}, {"LU3", 0b00011, 40},
      {"LU4", 0b01011, 30},  {"LU5", 0b10100, 800}, {"LU6", 0b10000, 20},
  };
  for (const Row& row : kRows) {
    LogRecord record;
    record.issued_license_id = row.id;
    record.set = LicenseSet::FromWord(row.mask);
    record.count = row.count;
    GEOLIC_CHECK(store.Append(std::move(record)).ok());
  }
  return store;
}

TEST(ValidationTreeTest, EmptyTree) {
  ValidationTree tree;
  EXPECT_EQ(tree.NodeCount(), 0u);
  EXPECT_EQ(tree.TotalCount(), 0);
  EXPECT_EQ(tree.SumSubsets(LicenseSet::Full(10)), 0);
  EXPECT_TRUE(tree.PresentLicenses().Empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(ValidationTreeTest, InsertRejectsEmptySetAndBadCount) {
  ValidationTree tree;
  EXPECT_FALSE(tree.Insert(testing::Mask(0), 10).ok());
  EXPECT_FALSE(tree.Insert(testing::Mask(0b1), 0).ok());
  EXPECT_FALSE(tree.Insert(testing::Mask(0b1), -3).ok());
}

TEST(ValidationTreeTest, InsertAccumulatesCounts) {
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(testing::Mask(0b11), 800).ok());
  ASSERT_TRUE(tree.Insert(testing::Mask(0b11), 40).ok());
  EXPECT_EQ(tree.CountOf(testing::Mask(0b11)), 840);
  EXPECT_EQ(tree.CountOf(testing::Mask(0b01)), 0);   // Prefix node exists, count 0.
  EXPECT_EQ(tree.CountOf(testing::Mask(0b10)), 0);   // Absent set.
  EXPECT_EQ(tree.NodeCount(), 2u);    // L1 → L2 chain, no duplicates.
}

TEST(ValidationTreeTest, BuildsPaperFigure1Tree) {
  const Result<ValidationTree> tree = ValidationTree::BuildFromLog(PaperLog());
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());

  // Figure 1: counts 840 ({L1,L2}), 400 ({L2}), 30 ({L1,L2,L4}),
  // 800 ({L3,L5}), 20 ({L5}).
  EXPECT_EQ(tree->CountOf(testing::Mask(0b00011)), 840);
  EXPECT_EQ(tree->CountOf(testing::Mask(0b00010)), 400);
  EXPECT_EQ(tree->CountOf(testing::Mask(0b01011)), 30);
  EXPECT_EQ(tree->CountOf(testing::Mask(0b10100)), 800);
  EXPECT_EQ(tree->CountOf(testing::Mask(0b10000)), 20);
  // Prefix nodes carry zero counts.
  EXPECT_EQ(tree->CountOf(testing::Mask(0b00001)), 0);
  EXPECT_EQ(tree->CountOf(testing::Mask(0b00100)), 0);

  // Tree shape: root children L1, L2, L3, L5; L1→L2→L4 chain; L3→L5.
  // Total nodes: L1, L1.L2, L1.L2.L4, L2, L3, L3.L5, L5 = 7.
  EXPECT_EQ(tree->NodeCount(), 7u);
  EXPECT_EQ(tree->TotalCount(), 2090);
  EXPECT_EQ(tree->PresentLicenses(), testing::Mask(0b11111));
}

TEST(ValidationTreeTest, ToStringRendersFigure1) {
  const Result<ValidationTree> tree = ValidationTree::BuildFromLog(PaperLog());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->ToString(),
            "L1:0\n"
            "  L2:840\n"
            "    L4:30\n"
            "L2:400\n"
            "L3:0\n"
            "  L5:800\n"
            "L5:20\n");
}

TEST(ValidationTreeTest, SumSubsetsMatchesPaperEquationExamples) {
  const Result<ValidationTree> tree = ValidationTree::BuildFromLog(PaperLog());
  ASSERT_TRUE(tree.ok());
  // C⟨{L1,L2}⟩ = C[{L1}] + C[{L2}] + C[{L1,L2}] = 0 + 400 + 840 = 1240.
  EXPECT_EQ(tree->SumSubsets(testing::Mask(0b00011)), 1240);
  // C⟨{L2}⟩ = 400.
  EXPECT_EQ(tree->SumSubsets(testing::Mask(0b00010)), 400);
  // C⟨{L1,L2,L4}⟩ adds the 30.
  EXPECT_EQ(tree->SumSubsets(testing::Mask(0b01011)), 1270);
  // C⟨{L3,L5}⟩ = 800 + 20.
  EXPECT_EQ(tree->SumSubsets(testing::Mask(0b10100)), 820);
  // Full set.
  EXPECT_EQ(tree->SumSubsets(testing::Mask(0b11111)), 2090);
  // A set missing L2 sees nothing from the {L1,L2} branch.
  EXPECT_EQ(tree->SumSubsets(testing::Mask(0b00001)), 0);
  EXPECT_EQ(tree->SumSubsets(testing::Mask(0b01001)), 0);
}

TEST(ValidationTreeTest, SumSubsetsReportsNodesVisited) {
  const Result<ValidationTree> tree = ValidationTree::BuildFromLog(PaperLog());
  ASSERT_TRUE(tree.ok());
  uint64_t visited = 0;
  tree->SumSubsets(testing::Mask(0b00011), &visited);
  // Visits L1, L1.L2, L2 (not L4, L3, L5 branches).
  EXPECT_EQ(visited, 3u);
  visited = 0;
  tree->SumSubsets(testing::Mask(0b11111), &visited);
  EXPECT_EQ(visited, tree->NodeCount());
}

TEST(ValidationTreeTest, ChildrenStayOrderedRegardlessOfInsertOrder) {
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(LicenseSet::Singleton(5), 1).ok());
  ASSERT_TRUE(tree.Insert(LicenseSet::Singleton(1), 1).ok());
  ASSERT_TRUE(tree.Insert(LicenseSet::Singleton(3), 1).ok());
  ASSERT_TRUE(tree.Insert(LicenseSet::Singleton(0), 1).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  const ValidationTreeNode& root = tree.root();
  ASSERT_EQ(root.children.size(), 4u);
  EXPECT_EQ(root.children[0]->index, 0);
  EXPECT_EQ(root.children[1]->index, 1);
  EXPECT_EQ(root.children[2]->index, 3);
  EXPECT_EQ(root.children[3]->index, 5);
}

TEST(ValidationTreeTest, HighIndexLicenses) {
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(LicenseSet::Singleton(63), 7).ok());
  ASSERT_TRUE(tree.Insert(LicenseSet::Singleton(63) | LicenseSet::Singleton(0), 5).ok());
  EXPECT_EQ(tree.CountOf(LicenseSet::Singleton(63)), 7);
  EXPECT_EQ(tree.SumSubsets(LicenseSet::FromWord(~uint64_t{0})), 12);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(ValidationTreeTest, MemoryBytesGrowsWithNodes) {
  ValidationTree small;
  ASSERT_TRUE(small.Insert(testing::Mask(0b1), 1).ok());
  ValidationTree large;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(large.Insert(LicenseSet::Full(i % 10 + 1), 1).ok());
  }
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

TEST(ValidationTreeTest, MemoryBytesIncludesRootNode) {
  // The root is heap-allocated like every other node; an empty tree is one
  // node's payload, never zero. Pins the figure-10 accounting — division
  // grows storage by exactly one root payload per extra tree.
  const ValidationTree empty;
  EXPECT_EQ(empty.MemoryBytes(), sizeof(ValidationTreeNode));
  ValidationTree one;
  ASSERT_TRUE(one.Insert(testing::Mask(0b1), 1).ok());
  EXPECT_GE(one.MemoryBytes(),
            2 * sizeof(ValidationTreeNode) +
                sizeof(std::unique_ptr<ValidationTreeNode>));
}

// Property: for random logs, SumSubsets(S) computed by tree traversal
// equals the brute-force sum over merged counts, for many random S.
class TreeSumPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeSumPropertyTest, TraversalMatchesBruteForce) {
  const int n = GetParam();
  Rng rng(9000 + static_cast<uint64_t>(n));
  LogStore store;
  for (int r = 0; r < 500; ++r) {
    LogRecord record;
    record.set =
        (LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(n)) | LicenseSet::Singleton(
            static_cast<int>(rng.UniformInt(0, n - 1)));
    record.count = rng.UniformInt(1, 50);
    ASSERT_TRUE(store.Append(std::move(record)).ok());
  }
  const Result<ValidationTree> tree = ValidationTree::BuildFromLog(store);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->TotalCount(), store.TotalCount());

  const auto merged = store.MergedCounts();
  for (int trial = 0; trial < 300; ++trial) {
    const LicenseSet set =
        LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(n);
    EXPECT_EQ(tree->SumSubsets(set), LhsFromMergedCounts(merged, set))
        << "set=" << (set).ToString();
  }
  // Every stored set's exact count matches.
  for (const auto& [set, count] : merged) {
    EXPECT_EQ(tree->CountOf(set), count);
  }
}

INSTANTIATE_TEST_SUITE_P(LicenseCounts, TreeSumPropertyTest,
                         ::testing::Values(1, 2, 5, 10, 20, 40, 64));

}  // namespace
}  // namespace geolic
