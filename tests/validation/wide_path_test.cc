// Coverage for the multi-word (N > 64) LicenseSet path end to end:
// v3 wide-set serialization frames (journal + binary log store), the
// byte-identity guarantee for inline sets, tree serialization past index
// 64, and equation-by-equation equivalence gating of the flat tree's
// inline fast path against the forced word-sliced reference scan.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/journal.h"
#include "test_util.h"
#include "util/random.h"
#include "validation/flat_tree.h"
#include "validation/log_store.h"
#include "validation/tree_serialization.h"
#include "validation/validation_tree.h"

namespace geolic {
namespace {

LogRecord WideRecord(const std::string& id, const LicenseSet& set,
                     int64_t count) {
  LogRecord record;
  record.issued_license_id = id;
  record.set = set;
  record.count = count;
  return record;
}

// Random set with bits spread over [0, n): guaranteed non-empty.
LicenseSet RandomWideSet(Rng* rng, int n) {
  std::vector<int> indexes;
  const int bits = static_cast<int>(rng->UniformInt(1, 10));
  for (int k = 0; k < bits; ++k) {
    indexes.push_back(static_cast<int>(rng->UniformInt(0, n - 1)));
  }
  return LicenseSet::FromIndexes(indexes);
}

// --- v3 frame: journal record encoding -------------------------------------

TEST(WideSetSerializationTest, JournalRecordRoundTripsWideSets) {
  Rng rng(606001);
  for (int trial = 0; trial < 100; ++trial) {
    const LogRecord original = WideRecord(
        "LU" + std::to_string(trial), RandomWideSet(&rng, 1024),
        static_cast<int64_t>(rng.UniformInt(1, 1 << 20)));
    std::string bytes;
    EncodeLogRecord(original, &bytes);
    LogRecord decoded;
    size_t pos = 0;
    ASSERT_TRUE(DecodeLogRecord(bytes, &pos, &decoded).ok());
    EXPECT_EQ(pos, bytes.size());
    EXPECT_EQ(decoded.set, original.set);
    EXPECT_EQ(decoded.count, original.count);
    EXPECT_EQ(decoded.issued_license_id, original.issued_license_id);
  }
}

TEST(WideSetSerializationTest, InlineSetsKeepTheSeedByteLayout) {
  // The v3 escape reuses the impossible set word 0, so an inline record's
  // encoding is byte-identical to the v2 layout: the set slot holds the
  // bare little-endian uint64_t mask and nothing else. Verify both the
  // verbatim word and the total length delta against a wide record.
  const uint64_t mask = 0x0123456789abcdefull;
  const LogRecord inline_record = WideRecord("X", LicenseSet::FromWord(mask), 1);
  std::string inline_bytes;
  EncodeLogRecord(inline_record, &inline_bytes);
  // The raw mask appears verbatim (little-endian scalar write).
  uint64_t le = mask;
  ASSERT_NE(inline_bytes.find(
                std::string(reinterpret_cast<const char*>(&le), sizeof(le))),
            std::string::npos);

  // A two-word set with the same id/count costs exactly the escape word
  // (8 bytes) + word count (4) + one extra word (8) over the inline frame.
  const LogRecord wide_record = WideRecord(
      "X", LicenseSet::FromWord(mask) | LicenseSet::Singleton(64), 1);
  std::string wide_bytes;
  EncodeLogRecord(wide_record, &wide_bytes);
  EXPECT_EQ(wide_bytes.size(), inline_bytes.size() + 8 + 4 + 8);
}

TEST(WideSetSerializationTest, DecodeRejectsNonCanonicalWideFrames) {
  // Escape followed by a zero top word (or width 1) must fail loudly —
  // otherwise encode∘decode wouldn't be the identity.
  const LogRecord wide = WideRecord(
      "Y", LicenseSet::Singleton(3) | LicenseSet::Singleton(100), 2);
  std::string bytes;
  EncodeLogRecord(wide, &bytes);
  // Zero out the top word (the last 8 bytes before the trailing count
  // field would be format-specific; instead rebuild with a corrupted span
  // by flipping the top word's bytes to zero wherever they occur).
  const uint64_t top = wide.set.Word(1);
  const std::string needle(reinterpret_cast<const char*>(&top), sizeof(top));
  const size_t at = bytes.find(needle);
  ASSERT_NE(at, std::string::npos);
  std::memset(bytes.data() + at, 0, sizeof(top));
  LogRecord decoded;
  size_t pos = 0;
  EXPECT_FALSE(DecodeLogRecord(bytes, &pos, &decoded).ok());
}

// --- v3 frame: binary log store --------------------------------------------

TEST(WideSetSerializationTest, LogStoreBinaryRoundTripsWideSets) {
  Rng rng(606002);
  LogStore store;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store
                    .Append(WideRecord("LU" + std::to_string(i),
                                       RandomWideSet(&rng, 1024),
                                       rng.UniformInt(1, 1000)))
                    .ok());
  }
  const std::string path = ::testing::TempDir() + "wide_log_store.bin";
  ASSERT_TRUE(store.SaveBinary(path).ok());
  const Result<LogStore> loaded = LogStore::LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), store.size());
  for (size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(loaded->at(i).set, store.at(i).set);
    EXPECT_EQ(loaded->at(i).count, store.at(i).count);
    EXPECT_EQ(loaded->at(i).issued_license_id,
              store.at(i).issued_license_id);
  }
}

TEST(WideSetSerializationTest, LogStoreTextRoundTripsWideSets) {
  Rng rng(606003);
  LogStore store;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store
                    .Append(WideRecord("LU" + std::to_string(i),
                                       RandomWideSet(&rng, 1024),
                                       rng.UniformInt(1, 1000)))
                    .ok());
  }
  const std::string path = ::testing::TempDir() + "wide_log_store.txt";
  ASSERT_TRUE(store.SaveText(path).ok());
  const Result<LogStore> loaded = LogStore::LoadText(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), store.size());
  for (size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(loaded->at(i).set, store.at(i).set);
  }
}

// --- Tree serialization past index 64 ---------------------------------------

TEST(WideSetSerializationTest, TreeRoundTripsWideIndexes) {
  Rng rng(606004);
  ValidationTree tree;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        tree.Insert(RandomWideSet(&rng, 1024), rng.UniformInt(1, 50)).ok());
  }
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTree(tree, &buffer).ok());
  const Result<ValidationTree> loaded = DeserializeTree(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NodeCount(), tree.NodeCount());
  EXPECT_EQ(loaded->TotalCount(), tree.TotalCount());
  EXPECT_EQ(loaded->PresentLicenses(), tree.PresentLicenses());
  std::stringstream again;
  ASSERT_TRUE(SerializeTree(*loaded, &again).ok());
  EXPECT_EQ(again.str(), buffer.str());
}

// --- Equivalence gating: inline fast path vs forced wide reference ----------

TEST(WideEquivalenceTest, FlatTreeMatchesWideReferenceInlineAndWide) {
  Rng rng(606005);
  for (const int n : {16, 64, 128, 256, 1024}) {
    ValidationTree tree;
    std::vector<LicenseSet> equations;
    for (int i = 0; i < 150; ++i) {
      const LicenseSet set = RandomWideSet(&rng, n);
      ASSERT_TRUE(tree.Insert(set, rng.UniformInt(1, 100)).ok());
      equations.push_back(set);
      // Probe supersets and unions too, not just logged sets.
      equations.push_back(set | RandomWideSet(&rng, n));
    }
    const FlatValidationTree flat = FlatValidationTree::Compile(tree);
    std::vector<int64_t> batch(equations.size());
    std::vector<int64_t> batch_wide(equations.size());
    uint64_t nodes_batch = 0;
    uint64_t nodes_wide = 0;
    flat.SumSubsetsBatch(equations, batch, &nodes_batch);
    flat.SumSubsetsBatchWideReference(equations, batch_wide, &nodes_wide);
    EXPECT_EQ(nodes_batch, nodes_wide) << "n=" << n;
    for (size_t i = 0; i < equations.size(); ++i) {
      const int64_t reference = tree.SumSubsets(equations[i]);
      ASSERT_EQ(flat.SumSubsets(equations[i]), reference) << "n=" << n;
      ASSERT_EQ(flat.SumSubsetsWideReference(equations[i]), reference)
          << "n=" << n;
      ASSERT_EQ(flat.SumSubsetsNoAccel(equations[i]), reference) << "n=" << n;
      ASSERT_EQ(batch[i], reference) << "n=" << n;
      ASSERT_EQ(batch_wide[i], reference) << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace geolic
