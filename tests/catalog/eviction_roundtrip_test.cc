// Eviction round-trip equivalence (the catalog layer's core promise):
// a tenant that is forcibly spilled to its checkpoint and reloaded on
// every touch must make decisions *bit-identical* to a never-evicted twin
// — same admission outcome, same satisfying set, same cumulative
// catalog_epoch, same limiting equation on aggregate rejection — across
// issue, acquire, revoke and expire streams.
//
// The twin construction: two CatalogServices over the same deterministic
// MultiTenantWorkload. The "churn" catalog runs with a 1-byte budget and
// an explicit SpillTenant after every op, so every subsequent touch is a
// checkpoint reload; the "resident" catalog runs with the default budget
// and never evicts. Identical op streams go to both; any divergence is a
// spill-encode/decode or epoch_base bug.
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_map>

#include <gtest/gtest.h>

#include "catalog/catalog_service.h"
#include "catalog/tenant_source.h"
#include "licensing/license.h"
#include "test_util.h"
#include "util/random.h"
#include "workload/multi_tenant.h"

namespace geolic {
namespace {

namespace fs = std::filesystem;

constexpr int kTrials = 500;
constexpr int kOpsPerTrial = 14;

std::string TrialDir(const char* tag, int trial) {
  return (fs::temp_directory_path() /
          ("geolic-evict-rt-" + std::to_string(getpid()) + "-" + tag + "-" +
           std::to_string(trial)))
      .string();
}

// A redistribution license to acquire live: a random box in the tenant's
// domain with a small aggregate budget, built against the tenant's own
// schema (generated interval dimensions are named "C1", "C2", ...).
License MakeAcquire(const Workload& tenant, Rng* rng, int64_t domain,
                    const std::string& id) {
  LicenseBuilder builder(tenant.schema.get());
  builder.SetId(id)
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(rng->UniformInt(40, 200));
  for (int d = 0; d < tenant.schema->dimensions(); ++d) {
    const int64_t width = rng->UniformInt(domain / 20, domain / 4);
    const int64_t lo = rng->UniformInt(0, domain - width - 1);
    builder.SetInterval("C" + std::to_string(d + 1), lo, lo + width);
  }
  Result<License> license = builder.Build();
  EXPECT_TRUE(license.ok()) << license.status().message();
  return *license;
}

// Asserts two decisions are indistinguishable to a client. The count of
// equations *checked* is deliberately not compared: a reloaded service
// recompiles its grouping from the evolved catalog, which may partition
// groups differently without changing any decision (paper Theorem 2).
void ExpectSameDecision(const OnlineDecision& churn,
                        const OnlineDecision& resident,
                        const std::string& where) {
  EXPECT_EQ(churn.instance_valid, resident.instance_valid) << where;
  EXPECT_EQ(churn.aggregate_valid, resident.aggregate_valid) << where;
  EXPECT_EQ(churn.catalog_epoch, resident.catalog_epoch) << where;
  if (resident.instance_valid) {
    EXPECT_TRUE(churn.satisfying_set == resident.satisfying_set) << where;
  }
  if (resident.instance_valid && !resident.aggregate_valid) {
    EXPECT_TRUE(churn.limiting.set == resident.limiting.set) << where;
    EXPECT_EQ(churn.limiting.lhs, resident.limiting.lhs) << where;
    EXPECT_EQ(churn.limiting.rhs, resident.limiting.rhs) << where;
  }
}

void RunTrial(int trial) {
  const uint64_t trial_u = static_cast<uint64_t>(trial);
  Rng rng(testing::TestSeed(uint64_t{0xE71C7} * trial_u + uint64_t{17}));

  MultiTenantConfig config;
  config.num_tenants = 3;
  config.zipf_s = 1.1;
  config.seed = uint64_t{0x5EED} + trial_u;
  config.base.dimensions = 2;
  config.base.aggregate_min = 60;
  config.base.aggregate_max = 400;
  config.base.usage_count_min = 10;
  config.base.usage_count_max = 40;
  config.min_licenses = 2;
  config.max_licenses = 4;
  MultiTenantWorkload workload(config);
  WorkloadTenantSource source_churn(&workload);
  WorkloadTenantSource source_resident(&workload);

  const std::string churn_dir = TrialDir("churn", trial);
  const std::string resident_dir = TrialDir("resident", trial);
  fs::remove_all(churn_dir);
  fs::remove_all(resident_dir);

  CatalogOptions churn_options;
  churn_options.dir = churn_dir;
  churn_options.memory_budget_bytes = 1;  // Evict everything evictable.
  churn_options.lru_shards = 1;           // Floor = one resident tenant.
  churn_options.journal_writers = 2;
  churn_options.fsync_interval = 0;

  CatalogOptions resident_options;
  resident_options.dir = resident_dir;
  resident_options.journal_writers = 2;
  resident_options.fsync_interval = 0;

  Result<std::unique_ptr<CatalogService>> churn_or =
      CatalogService::Create(&source_churn, churn_options);
  Result<std::unique_ptr<CatalogService>> resident_or =
      CatalogService::Create(&source_resident, resident_options);
  ASSERT_TRUE(churn_or.ok()) << churn_or.status().message();
  ASSERT_TRUE(resident_or.ok()) << resident_or.status().message();
  CatalogService& churn = **churn_or;
  CatalogService& resident = **resident_or;

  // Tenant baselines for drawing requests (shared by both sides: the op
  // stream is drawn once and applied to each catalog verbatim).
  std::unordered_map<uint64_t, Workload> baselines;
  std::vector<std::string> acquired_ids;
  int acquire_seq = 0;

  for (int op = 0; op < kOpsPerTrial; ++op) {
    const uint64_t tenant = workload.DrawTenant(&rng);
    auto it = baselines.find(tenant);
    if (it == baselines.end()) {
      Result<Workload> made = workload.MakeTenant(tenant);
      ASSERT_TRUE(made.ok()) << made.status().message();
      it = baselines.emplace(tenant, std::move(*made)).first;
    }
    const Workload& baseline = it->second;
    const std::string where =
        "trial " + std::to_string(trial) + " op " + std::to_string(op) +
        " tenant " + std::to_string(tenant);

    const double roll = rng.UniformDouble();
    if (roll < 0.12) {
      // Live acquire: grows the catalog, bumps the epoch.
      const License license =
          MakeAcquire(baseline, &rng, config.base.domain_size,
                      "RT" + std::to_string(++acquire_seq));
      Result<int> a = churn.AcquireLicense(tenant, license);
      Result<int> b = resident.AcquireLicense(tenant, license);
      ASSERT_EQ(a.ok(), b.ok()) << where;
      if (a.ok()) {
        EXPECT_EQ(*a, *b) << where;
        acquired_ids.push_back(license.id());
      }
    } else if (roll < 0.20 && !acquired_ids.empty()) {
      // Revoke one of the live acquisitions (may target a different
      // tenant's id — then both sides must reject identically).
      const std::string& id =
          acquired_ids[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(acquired_ids.size()) - 1))];
      const Status a = churn.RevokeLicenseById(tenant, id);
      const Status b = resident.RevokeLicenseById(tenant, id);
      EXPECT_EQ(a.ok(), b.ok()) << where << " revoke " << id;
    } else if (roll < 0.26) {
      // Expire: drops licenses wholly below the cutoff in one dimension.
      const int dim = static_cast<int>(rng.UniformInt(0, 1));
      const int64_t cutoff =
          rng.UniformInt(0, config.base.domain_size / 2);
      Result<int> a = churn.ExpireDimensionBelow(tenant, dim, cutoff);
      Result<int> b = resident.ExpireDimensionBelow(tenant, dim, cutoff);
      ASSERT_EQ(a.ok(), b.ok()) << where;
      if (a.ok()) {
        EXPECT_EQ(*a, *b) << where;
      }
    } else {
      const License usage = workload.DrawRequest(baseline, &rng, op + 1);
      Result<OnlineDecision> a = churn.TryIssue(tenant, usage);
      Result<OnlineDecision> b = resident.TryIssue(tenant, usage);
      ASSERT_TRUE(a.ok()) << where << ": " << a.status().message();
      ASSERT_TRUE(b.ok()) << where << ": " << b.status().message();
      ExpectSameDecision(*a, *b, where);
    }

    // Epochs must track in the cumulative numbering even though the churn
    // side's in-memory service restarts at epoch 0 on every reload.
    Result<uint64_t> epoch_a = churn.TenantEpoch(tenant);
    Result<uint64_t> epoch_b = resident.TenantEpoch(tenant);
    ASSERT_TRUE(epoch_a.ok()) << where;
    ASSERT_TRUE(epoch_b.ok()) << where;
    EXPECT_EQ(*epoch_a, *epoch_b) << where;

    // Force the round-trip: spill the tenant now so the next touch is a
    // checkpoint reload, not a cache hit.
    const Status spilled = churn.SpillTenant(tenant);
    EXPECT_TRUE(spilled.ok()) << where << ": " << spilled.message();
  }

  // End-of-trial deep comparison of every touched tenant.
  for (const auto& [tenant, baseline] : baselines) {
    (void)baseline;
    Result<CatalogService::TenantSnapshot> a = churn.SnapshotTenant(tenant);
    Result<CatalogService::TenantSnapshot> b =
        resident.SnapshotTenant(tenant);
    ASSERT_TRUE(a.ok()) << a.status().message();
    ASSERT_TRUE(b.ok()) << b.status().message();
    EXPECT_EQ(a->epoch, b->epoch) << "tenant " << tenant;
    EXPECT_EQ(a->tenant_seq, b->tenant_seq) << "tenant " << tenant;
    ASSERT_EQ(a->licenses.size(), b->licenses.size()) << "tenant " << tenant;
    for (size_t i = 0; i < a->licenses.size(); ++i) {
      EXPECT_EQ(a->licenses[i].id(), b->licenses[i].id())
          << "tenant " << tenant << " license " << i;
    }
    ASSERT_EQ(a->log.size(), b->log.size()) << "tenant " << tenant;
  }

  // The property must actually have exercised the eviction machinery.
  const CatalogStats stats = churn.stats();
  EXPECT_GT(stats.spills, 0u) << "trial " << trial;
  EXPECT_GT(stats.loads, 0u) << "trial " << trial;
  EXPECT_EQ(resident.stats().spills, 0u) << "trial " << trial;

  EXPECT_TRUE(churn.Close().ok());
  EXPECT_TRUE(resident.Close().ok());
  fs::remove_all(churn_dir);
  fs::remove_all(resident_dir);
}

TEST(EvictionRoundtripTest, SpilledTenantsDecideLikeResidentTwins) {
  for (int trial = 1; trial <= kTrials; ++trial) {
    RunTrial(trial);
    if (HasFatalFailure() || HasNonfatalFailure()) {
      FAIL() << "divergence at trial " << trial
             << " — repro: rerun with kTrials floor at this trial";
    }
  }
}

}  // namespace
}  // namespace geolic
