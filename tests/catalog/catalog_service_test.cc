// Unit coverage for the multi-tenant catalog front door
// (catalog/catalog_service.h): lazy compilation and hit accounting, LRU
// eviction under a tiny budget, explicit spill/reload transparency, and
// journal-backed crash recovery of an evolved tenant.
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog_service.h"
#include "catalog/tenant_source.h"
#include "persist/faulty_file.h"
#include "persist/sync_file.h"
#include "test_util.h"
#include "util/random.h"
#include "workload/multi_tenant.h"

namespace geolic {
namespace {

namespace fs = std::filesystem;

class CatalogServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.num_tenants = 8;
    config_.base.dimensions = 2;
    config_.min_licenses = 2;
    config_.max_licenses = 3;
    workload_ = std::make_unique<MultiTenantWorkload>(config_);
    source_ = std::make_unique<WorkloadTenantSource>(workload_.get());
    dir_ = (fs::temp_directory_path() /
            ("geolic-catalog-unit-" + std::to_string(getpid())))
               .string();
    fs::remove_all(dir_);
    options_.dir = dir_;
    options_.journal_writers = 2;
    options_.lru_shards = 1;
    options_.fsync_interval = 0;
  }

  void TearDown() override { fs::remove_all(dir_); }

  // One on-policy usage request for `tenant` (deterministic per call
  // sequence — the Rng is owned by the fixture).
  License Request(uint64_t tenant) {
    Result<Workload> baseline = workload_->MakeTenant(tenant);
    EXPECT_TRUE(baseline.ok());
    return workload_->DrawRequest(*baseline, &rng_, ++sequence_);
  }

  MultiTenantConfig config_;
  std::unique_ptr<MultiTenantWorkload> workload_;
  std::unique_ptr<WorkloadTenantSource> source_;
  CatalogOptions options_;
  std::string dir_;
  Rng rng_{testing::TestSeed(0xCA7A)};
  int64_t sequence_ = 0;
};

TEST_F(CatalogServiceTest, RejectsBadOptions) {
  CatalogOptions bad = options_;
  bad.dir.clear();
  EXPECT_FALSE(CatalogService::Create(source_.get(), bad).ok());
  bad = options_;
  bad.journal_writers = 0;
  EXPECT_FALSE(CatalogService::Create(source_.get(), bad).ok());
  bad = options_;
  bad.lru_shards = 0;
  EXPECT_FALSE(CatalogService::Create(source_.get(), bad).ok());
}

TEST_F(CatalogServiceTest, LazyCompileThenCacheHit) {
  Result<std::unique_ptr<CatalogService>> catalog =
      CatalogService::Create(source_.get(), options_);
  ASSERT_TRUE(catalog.ok()) << catalog.status().message();

  Result<OnlineDecision> first = (*catalog)->TryIssue(3, Request(3));
  ASSERT_TRUE(first.ok()) << first.status().message();
  EXPECT_TRUE(first->instance_valid);
  CatalogStats stats = (*catalog)->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.resident_tenants, 1u);

  Result<OnlineDecision> second = (*catalog)->TryIssue(3, Request(3));
  ASSERT_TRUE(second.ok());
  stats = (*catalog)->stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.journal_frames, 2u);

  // Unknown tenants fail without poisoning the catalog.
  EXPECT_FALSE(
      (*catalog)->TryIssue(config_.num_tenants + 5, Request(3)).ok());
  EXPECT_TRUE((*catalog)->TryIssue(3, Request(3)).ok());
  EXPECT_TRUE((*catalog)->Close().ok());
}

TEST_F(CatalogServiceTest, TinyBudgetEvictsColdTenants) {
  options_.memory_budget_bytes = 1;  // Floor: one resident tenant/shard.
  Result<std::unique_ptr<CatalogService>> catalog =
      CatalogService::Create(source_.get(), options_);
  ASSERT_TRUE(catalog.ok());

  for (uint64_t tenant = 0; tenant < 4; ++tenant) {
    ASSERT_TRUE((*catalog)->TryIssue(tenant, Request(tenant)).ok());
  }
  const CatalogStats stats = (*catalog)->stats();
  EXPECT_GE(stats.evictions, 3u);
  EXPECT_EQ(stats.resident_tenants, 1u);

  // Evicted tenants come back transparently from their spills.
  ASSERT_TRUE((*catalog)->TryIssue(0, Request(0)).ok());
  EXPECT_GE((*catalog)->stats().loads, 1u);
  EXPECT_TRUE((*catalog)->Close().ok());
}

TEST_F(CatalogServiceTest, ExplicitSpillIsTransparent) {
  Result<std::unique_ptr<CatalogService>> catalog =
      CatalogService::Create(source_.get(), options_);
  ASSERT_TRUE(catalog.ok());

  const License usage = Request(2);
  Result<OnlineDecision> before = (*catalog)->TryIssue(2, usage);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE((*catalog)->SpillTenant(2).ok());
  EXPECT_TRUE(fs::exists((*catalog)->SpillPath(2)));
  // Spilling a cold tenant is a no-op.
  EXPECT_TRUE((*catalog)->SpillTenant(2).ok());

  // The reloaded tenant remembers the accepted record and keeps deciding.
  Result<CatalogService::TenantSnapshot> snapshot =
      (*catalog)->SnapshotTenant(2);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->log.size(), before->accepted() ? 1u : 0u);
  Result<OnlineDecision> after = (*catalog)->TryIssue(2, usage);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->instance_valid, before->instance_valid);
  EXPECT_TRUE((*catalog)->Close().ok());
}

TEST_F(CatalogServiceTest, RecoverReplaysTheJournaledTail) {
  uint64_t accepted = 0;
  {
    options_.fsync_interval = 1;
    Result<std::unique_ptr<CatalogService>> catalog =
        CatalogService::Create(source_.get(), options_);
    ASSERT_TRUE(catalog.ok());
    for (int i = 0; i < 6; ++i) {
      const uint64_t tenant = static_cast<uint64_t>(i % 2);
      Result<OnlineDecision> decision =
          (*catalog)->TryIssue(tenant, Request(tenant));
      ASSERT_TRUE(decision.ok());
      if (tenant == 1 && decision->accepted()) {
        ++accepted;
      }
    }
    // Crash: destroy without Close. The journal pool has every frame.
    catalog->reset();
  }

  CatalogRecoveryStats rstats;
  Result<std::unique_ptr<CatalogService>> recovered =
      CatalogService::Recover(source_.get(), options_, &rstats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_EQ(rstats.journal_frames, 6u);
  EXPECT_EQ(rstats.tenants_recovered, 2u);

  Result<CatalogService::TenantSnapshot> snapshot =
      (*recovered)->SnapshotTenant(1);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->log.size(), accepted);
  EXPECT_EQ(snapshot->tenant_seq, 3u);
  EXPECT_TRUE((*recovered)->Close().ok());
}

TEST_F(CatalogServiceTest, FreshCreateRemovesStaleSpills) {
  // Evolve a tenant, spill it, and shut down cleanly so nothing is left
  // in the journals.
  {
    Result<std::unique_ptr<CatalogService>> catalog =
        CatalogService::Create(source_.get(), options_);
    ASSERT_TRUE(catalog.ok());
    ASSERT_TRUE((*catalog)->TryIssue(2, Request(2)).ok());
    ASSERT_TRUE((*catalog)->SpillTenant(2).ok());
    ASSERT_TRUE(fs::exists((*catalog)->SpillPath(2)));
    EXPECT_TRUE((*catalog)->Close().ok());
  }
  // Plant an interrupted temp spill too — Create must sweep both.
  {
    std::ofstream stale(dir_ + "/tenant-5.spill.tmp", std::ios::binary);
    stale << "torn spill write";
  }

  // A *fresh* catalog over the same directory must not resurrect the old
  // generation's evolved tenant state.
  Result<std::unique_ptr<CatalogService>> fresh =
      CatalogService::Create(source_.get(), options_);
  ASSERT_TRUE(fresh.ok()) << fresh.status().message();
  EXPECT_FALSE(fs::exists((*fresh)->SpillPath(2)));
  EXPECT_FALSE(fs::exists(dir_ + "/tenant-5.spill.tmp"));

  // First touch compiles from the baseline — no spill load, no history.
  Result<CatalogService::TenantSnapshot> snapshot =
      (*fresh)->SnapshotTenant(2);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->log.size(), 0u);
  const CatalogStats stats = (*fresh)->stats();
  EXPECT_EQ(stats.loads, 0u);
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_TRUE((*fresh)->Close().ok());
}

TEST_F(CatalogServiceTest, PoisonedWriterFailStopsTheCatalog) {
  // Route journal I/O through fault injectors so one writer can die
  // mid-run.
  options_.fsync_interval = 1;
  std::vector<FaultyFile*> faulty(
      static_cast<size_t>(options_.journal_writers), nullptr);
  options_.journal_file_factory =
      [&faulty](const std::string& path,
                int writer_index) -> Result<std::unique_ptr<SyncFile>> {
    GEOLIC_ASSIGN_OR_RETURN(std::unique_ptr<PosixSyncFile> base,
                            PosixSyncFile::Create(path));
    auto file = std::make_unique<FaultyFile>(std::move(base));
    faulty[static_cast<size_t>(writer_index)] = file.get();
    return std::unique_ptr<SyncFile>(std::move(file));
  };
  Result<std::unique_ptr<CatalogService>> catalog =
      CatalogService::Create(source_.get(), options_);
  ASSERT_TRUE(catalog.ok());

  // Two tenants routing to different pool writers.
  uint64_t victim = 0;
  uint64_t bystander = 1;
  while ((*catalog)->WriterIndexForTenant(bystander) ==
         (*catalog)->WriterIndexForTenant(victim)) {
    ++bystander;
  }
  ASSERT_LT(bystander, config_.num_tenants);
  ASSERT_TRUE((*catalog)->TryIssue(victim, Request(victim)).ok());
  ASSERT_TRUE((*catalog)->TryIssue(bystander, Request(bystander)).ok());

  // Kill the victim's writer: the faulted op fails with the I/O error...
  faulty[static_cast<size_t>((*catalog)->WriterIndexForTenant(victim))]
      ->CrashNow();
  Result<OnlineDecision> faulted =
      (*catalog)->TryIssue(victim, Request(victim));
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kIoError);

  // ...and the whole catalog fail-stops: tenants on the healthy writer
  // are rejected too (no silent partial outage), with the health counter
  // exposed.
  Result<OnlineDecision> rejected =
      (*catalog)->TryIssue(bystander, Request(bystander));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.status().message().find("fail-stopped"),
            std::string::npos)
      << rejected.status().message();
  EXPECT_FALSE((*catalog)->RevokeLicenseById(bystander, "nope").ok());
  EXPECT_EQ((*catalog)->stats().poisoned_writers, 1u);

  // Read-side maintenance still works: spilling journals nothing.
  EXPECT_TRUE((*catalog)->SpillTenant(bystander).ok());

  // Recovery over the same directory restores service; the maybe-persisted
  // faulted frame is allowed to replay.
  catalog->reset();
  CatalogOptions recover_options = options_;
  recover_options.journal_file_factory = nullptr;
  CatalogRecoveryStats rstats;
  Result<std::unique_ptr<CatalogService>> recovered =
      CatalogService::Recover(source_.get(), recover_options, &rstats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_TRUE((*recovered)->TryIssue(victim, Request(victim)).ok());
  EXPECT_TRUE((*recovered)->TryIssue(bystander, Request(bystander)).ok());
  EXPECT_EQ((*recovered)->stats().poisoned_writers, 0u);
  EXPECT_TRUE((*recovered)->Close().ok());
}

TEST_F(CatalogServiceTest, WriterRoutingIsStablePerTenant) {
  Result<std::unique_ptr<CatalogService>> catalog =
      CatalogService::Create(source_.get(), options_);
  ASSERT_TRUE(catalog.ok());
  for (uint64_t tenant = 0; tenant < 8; ++tenant) {
    const int writer = (*catalog)->WriterIndexForTenant(tenant);
    EXPECT_GE(writer, 0);
    EXPECT_LT(writer, options_.journal_writers);
    EXPECT_EQ(writer, (*catalog)->WriterIndexForTenant(tenant));
  }
  EXPECT_TRUE((*catalog)->Close().ok());
}

}  // namespace
}  // namespace geolic
