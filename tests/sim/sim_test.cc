// Tests for the deterministic simulation harness itself: replayability,
// scheduler behavior, scheduled fault injection, clean sweeps, and —
// crucially — the mutation smoke check that proves the harness still has
// teeth.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "persist/faulty_file.h"
#include "persist/sync_file.h"
#include "sim/reference_model.h"
#include "sim/sim_environment.h"
#include "sim/sim_harness.h"
#include "sim/sim_scheduler.h"
#include "test_util.h"

namespace geolic {
namespace {

using geolic::testing::MakeRedistribution;
using geolic::testing::MakeUsage;
using geolic::testing::TestSeed;

std::vector<SchedulerStep> RunToyScheduler(uint64_t seed,
                                           std::vector<int>* order) {
  SimEnvironment env(seed);
  SimScheduler scheduler(&env);
  for (int t = 0; t < 3; ++t) {
    scheduler.AddTask("task" + std::to_string(t), [&scheduler, order, t] {
      for (int i = 0; i < 4; ++i) {
        order->push_back(t);
        scheduler.Yield("step");
      }
    });
  }
  scheduler.Run();
  return scheduler.steps();
}

TEST(SimSchedulerTest, SameSeedReplaysSameInterleaving) {
  std::vector<int> order_a;
  std::vector<int> order_b;
  const std::vector<SchedulerStep> steps_a = RunToyScheduler(7, &order_a);
  const std::vector<SchedulerStep> steps_b = RunToyScheduler(7, &order_b);
  EXPECT_EQ(order_a, order_b);
  ASSERT_EQ(steps_a.size(), steps_b.size());
  for (size_t i = 0; i < steps_a.size(); ++i) {
    EXPECT_EQ(steps_a[i].task, steps_b[i].task);
    EXPECT_EQ(steps_a[i].point, steps_b[i].point);
  }
  // All three tasks ran to completion.
  EXPECT_EQ(order_a.size(), 12u);
}

TEST(SimSchedulerTest, DifferentSeedsExploreDifferentInterleavings) {
  std::vector<std::vector<int>> orders;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<int> order;
    RunToyScheduler(seed, &order);
    orders.push_back(std::move(order));
  }
  bool any_difference = false;
  for (size_t i = 1; i < orders.size(); ++i) {
    if (orders[i] != orders[0]) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference)
      << "20 seeds produced a single interleaving — the schedule RNG is "
         "not reaching the chooser";
}

TEST(SimSchedulerTest, YieldOutsideScheduledTaskIsNoOp) {
  SimEnvironment env(1);
  SimScheduler scheduler(&env);
  scheduler.Yield("not_a_task");  // Must not deadlock or crash.
  scheduler.Run();                // No tasks: trivially done.
  EXPECT_TRUE(scheduler.steps().empty());
}

TEST(FaultyFileTest, ScheduledTearFiresOnExactAppend) {
  auto base = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* platter = base.get();
  FaultyFile file(std::move(base));
  file.ScheduleTearAppend(3, 2);
  EXPECT_TRUE(file.Append("aaaa").ok());
  EXPECT_TRUE(file.Append("bbbb").ok());
  EXPECT_FALSE(file.Append("cccc").ok());  // Torn: keeps "cc", disk dies.
  EXPECT_FALSE(file.Append("dddd").ok());
  EXPECT_FALSE(file.Sync().ok());
  EXPECT_EQ(platter->contents(), "aaaabbbbcc");
}

TEST(FaultyFileTest, ScheduledSyncFailurePersistsTheAppend) {
  auto base = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* platter = base.get();
  FaultyFile file(std::move(base));
  file.ScheduleFailSyncAfterAppend(2);
  EXPECT_TRUE(file.Append("aaaa").ok());
  EXPECT_TRUE(file.Sync().ok());
  EXPECT_TRUE(file.Append("bbbb").ok());  // Append persists...
  EXPECT_FALSE(file.Sync().ok());         // ...but its fsync fails,
  EXPECT_FALSE(file.Sync().ok());         // and every later one too.
  EXPECT_EQ(platter->contents(), "aaaabbbb");
}

TEST(ReferenceModelTest, BruteForceMatchesHandComputedExample) {
  ConstraintSchema schema = geolic::testing::IntervalSchema(1);
  LicenseCatalog licenses(&schema);
  ASSERT_TRUE(licenses.Add(MakeRedistribution(schema, "L1", {{0, 10}}, 3)).ok());
  ASSERT_TRUE(licenses.Add(MakeRedistribution(schema, "L2", {{5, 15}}, 2)).ok());
  ReferenceModel model(&licenses);

  // Two requests inside the overlap: S = {L1, L2}; the binding budget is
  // A[{L1,L2}] = 3 + 2 = 5, so counts of 2 + 2 both fit.
  const License both = MakeUsage(schema, "U1", {{6, 9}}, 2);
  ReferenceModel::Decision d = model.TryIssue(both);
  EXPECT_TRUE(d.instance_valid);
  EXPECT_EQ(d.satisfying_set, testing::Mask(0b11));
  EXPECT_TRUE(d.aggregate_valid);
  model.Apply(d.satisfying_set, 2);
  d = model.TryIssue(both);
  EXPECT_TRUE(d.aggregate_valid);  // C<{L1,L2}> = 2, 2 + 2 <= 5.
  model.Apply(d.satisfying_set, 2);

  // L2-only request with count 3: the singleton equation itself fails
  // (C<{L2}> = 0, 0 + 3 > A[{L2}] = 2) and is checked first in ascending
  // extension order, so it is the limiting equation.
  const License l2_only = MakeUsage(schema, "U2", {{12, 14}}, 3);
  d = model.TryIssue(l2_only);
  EXPECT_TRUE(d.instance_valid);
  EXPECT_EQ(d.satisfying_set, testing::Mask(0b10));
  EXPECT_FALSE(d.aggregate_valid);
  EXPECT_EQ(d.limiting_set, testing::Mask(0b10));
  EXPECT_EQ(d.limiting_lhs, 3);
  EXPECT_EQ(d.limiting_rhs, 2);

  // Count 2 fits the singleton (0 + 2 <= 2) but not the pair superset
  // (C<{L1,L2}> = 4, 4 + 2 > 5): the limiting set moves up to {L1,L2}.
  const License l2_two = MakeUsage(schema, "U3", {{12, 14}}, 2);
  d = model.TryIssue(l2_two);
  EXPECT_FALSE(d.aggregate_valid);
  EXPECT_EQ(d.limiting_set, testing::Mask(0b11));
  EXPECT_EQ(d.limiting_lhs, 6);
  EXPECT_EQ(d.limiting_rhs, 5);

  ASSERT_TRUE(model.CheckInvariant().ok());
}

TEST(SimHarnessTest, WorkloadGenerationIsDeterministic) {
  const SimConfig config;
  const uint64_t seed = TestSeed(11);
  const SimWorkload a = GenerateWorkload(seed, config);
  const SimWorkload b = GenerateWorkload(seed, config);
  EXPECT_EQ(a.licenses->size(), b.licenses->size());
  ASSERT_EQ(a.client_ops.size(), b.client_ops.size());
  for (size_t c = 0; c < a.client_ops.size(); ++c) {
    ASSERT_EQ(a.client_ops[c].size(), b.client_ops[c].size());
    for (size_t i = 0; i < a.client_ops[c].size(); ++i) {
      EXPECT_EQ(a.client_ops[c][i].kind, b.client_ops[c][i].kind);
      EXPECT_EQ(a.client_ops[c][i].requests.size(),
                b.client_ops[c][i].requests.size());
    }
  }
  EXPECT_EQ(a.fault_kind, b.fault_kind);
  EXPECT_EQ(a.fault_append, b.fault_append);
  EXPECT_EQ(a.fault_keep_bytes, b.fault_keep_bytes);
}

TEST(SimHarnessTest, SameSeedReplaysSameRun) {
  const SimConfig config;
  const uint64_t seed = TestSeed(3);
  const SimResult a = RunSimulation(seed, config);
  const SimResult b = RunSimulation(seed, config);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.op_trace, b.op_trace);
}

TEST(SimHarnessTest, SweepPassesClean) {
  const SimConfig config;
  const uint64_t base = TestSeed(1);
  for (uint64_t seed = base; seed < base + 40; ++seed) {
    const SimResult result = RunSimulation(seed, config);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.failure
                           << "\nrepro: sim_runner --seed=" << seed;
    if (!result.ok) {
      break;
    }
  }
}

TEST(SimHarnessTest, ForcedFaultSweepPassesClean) {
  SimConfig config;
  config.force_fault = true;
  const uint64_t base = TestSeed(1);
  for (uint64_t seed = base; seed < base + 25; ++seed) {
    const SimResult result = RunSimulation(seed, config);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.failure
                           << "\nrepro: sim_runner --seed=" << seed;
    if (!result.ok) {
      break;
    }
  }
}

// The acceptance gate for the whole harness: plant a real accounting bug
// (skip the last aggregate equation) in the service under test and verify
// the conformance checks catch it within a bounded seed budget. If this
// test ever fails, the harness has gone blind — treat it like a broken
// smoke detector, not a flaky test.
TEST(SimHarnessTest, MutationSmokeCatchesEquationSkipBug) {
  SimConfig config;
  config.inject_equation_skip = true;
  const uint64_t base = TestSeed(1);
  uint64_t caught_at = 0;
  std::string failure;
  for (uint64_t seed = base; seed < base + 200; ++seed) {
    const SimResult result = RunSimulation(seed, config);
    if (!result.ok) {
      caught_at = seed;
      failure = result.failure;
      break;
    }
  }
  ASSERT_NE(caught_at, 0u)
      << "planted equation-skip bug survived 200 seeds undetected";
  EXPECT_FALSE(failure.empty());
}

TEST(SimHarnessTest, ShrinkReducesFailingTrace) {
  SimConfig config;
  config.inject_equation_skip = true;
  const uint64_t base = TestSeed(1);
  uint64_t caught_at = 0;
  for (uint64_t seed = base; seed < base + 200; ++seed) {
    if (!RunSimulation(seed, config).ok) {
      caught_at = seed;
      break;
    }
  }
  ASSERT_NE(caught_at, 0u);
  const ShrinkOutcome shrunk = ShrinkFailure(caught_at, config);
  EXPECT_FALSE(shrunk.failure.empty());
  ASSERT_FALSE(shrunk.minimal_ops.empty());
  EXPECT_LE(shrunk.minimal_ops.size(), shrunk.original_ops);
  EXPECT_GE(shrunk.runs_used, 2u);
  // The shrunk trace still pins the failure: every listed op was verified
  // necessary by the 1-minimal pass, so re-running the full seed fails too.
  EXPECT_FALSE(RunSimulation(caught_at, config).ok);
}

}  // namespace
}  // namespace geolic
