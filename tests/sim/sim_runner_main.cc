// Seed-sweeping driver for the deterministic simulation harness.
//
//   sim_runner --seeds=1000            sweep seeds 1..1000, fail on first bug
//   sim_runner --seed=42               replay exactly one seed (the repro)
//   sim_runner --lifecycle             mix live acquire/revoke/expire
//                                      reconfigurations into the workload
//   sim_runner --mutation_smoke        plant the equation-skip bug and
//                                      verify the harness CATCHES it within
//                                      the seed budget (--seeds, default 200);
//                                      with --lifecycle, plants the
//                                      skipped-renumbering reconfig bug
//                                      instead
//   sim_runner --start_seed=N          shift the sweep window
//   sim_runner --wide_n=N               pin the license count to N and
//                                      scatter licenses into ceil(N/8)
//                                      disjoint slabs (multi-word sets)
//   sim_runner --tenants=T             multi-tenant catalog mode: T tenants
//                                      behind a CatalogService under a tiny
//                                      LRU budget, per-tenant reference
//                                      models, FaultyFile faults on the
//                                      shared journal pool, crash-recovery
//                                      conformance; with --mutation_smoke,
//                                      plants the cross-tenant frame
//                                      misrouting bug instead
//
// Every failure is reported with the one command that reproduces it.
// Exit codes: 0 = pass, 1 = conformance failure (or, in mutation smoke
// mode, planted bug NOT caught), 2 = bad usage.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/catalog_sim.h"
#include "sim/sim_harness.h"

namespace {

bool ParseUint(const char* arg, const char* name, uint64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') {
    return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg + len + 1, &end, 0);
  if (end == arg + len + 1 || *end != '\0') {
    std::fprintf(stderr, "sim_runner: cannot parse %s\n", arg);
    std::exit(2);
  }
  *out = static_cast<uint64_t>(value);
  return true;
}

void PrintFailure(const geolic::SimResult& result,
                  const geolic::SimConfig& config, uint64_t wide_n) {
  std::printf("FAILED seed=%" PRIu64 "\n", result.seed);
  std::printf("  failure: %s\n", result.failure.c_str());
  std::printf("  ops executed: %zu\n", result.ops_executed);
  std::printf("  shrinking...\n");
  const geolic::ShrinkOutcome shrunk =
      geolic::ShrinkFailure(result.seed, config);
  std::printf("  minimal failing trace (%zu of %zu ops, %zu runs):\n",
              shrunk.minimal_ops.size(), shrunk.original_ops,
              shrunk.runs_used);
  for (const std::string& op : shrunk.minimal_ops) {
    std::printf("    %s\n", op.c_str());
  }
  std::printf("  minimal failure: %s\n", shrunk.failure.c_str());
  const char* mode = config.lifecycle_ops ? " --lifecycle" : "";
  if (wide_n > 0) {
    std::printf("repro: sim_runner%s --wide_n=%" PRIu64 " --seed=%" PRIu64
                "\n",
                mode, wide_n, result.seed);
  } else {
    std::printf("repro: sim_runner%s --seed=%" PRIu64 "\n", mode, result.seed);
  }
}

void PrintCatalogFailure(const geolic::CatalogSimResult& result,
                         uint64_t tenants) {
  std::printf("FAILED seed=%" PRIu64 " (catalog mode)\n", result.seed);
  std::printf("  failure: %s\n", result.failure.c_str());
  std::printf("  ops executed: %zu\n", result.ops_executed);
  std::printf("  trace:\n");
  for (const std::string& op : result.op_trace) {
    std::printf("    %s\n", op.c_str());
  }
  std::printf("repro: sim_runner --tenants=%" PRIu64 " --seed=%" PRIu64 "\n",
              tenants, result.seed);
}

// The multi-tenant catalog sweep: same driver contract as the
// single-service modes (single seed / mutation smoke / sweep), but over
// RunCatalogSimulation.
int RunCatalogMode(uint64_t tenants, uint64_t seeds, uint64_t start_seed,
                   uint64_t single_seed, bool have_single,
                   bool mutation_smoke) {
  geolic::CatalogSimConfig config;
  config.min_tenants = static_cast<int>(tenants);
  config.max_tenants = static_cast<int>(tenants);
  config.inject_misroute = mutation_smoke;

  if (have_single) {
    const geolic::CatalogSimResult result =
        geolic::RunCatalogSimulation(single_seed, config);
    if (result.ok) {
      std::printf("seed %" PRIu64 " OK (%zu ops, catalog mode)\n",
                  result.seed, result.ops_executed);
      return 0;
    }
    PrintCatalogFailure(result, tenants);
    return 1;
  }

  if (mutation_smoke) {
    const uint64_t budget = seeds == 0 ? 200 : seeds;
    for (uint64_t s = start_seed; s < start_seed + budget; ++s) {
      const geolic::CatalogSimResult result =
          geolic::RunCatalogSimulation(s, config);
      if (!result.ok) {
        std::printf("mutation smoke OK: planted cross-tenant misrouting "
                    "bug caught at seed %" PRIu64 " (%" PRIu64
                    " seeds tried)\n",
                    s, s - start_seed + 1);
        std::printf("  failure: %s\n", result.failure.c_str());
        return 0;
      }
    }
    std::printf("mutation smoke FAILED: planted misrouting bug not caught "
                "in %" PRIu64 " seeds — the harness has lost its teeth\n",
                budget);
    return 1;
  }

  const uint64_t sweep = seeds == 0 ? 100 : seeds;
  for (uint64_t s = start_seed; s < start_seed + sweep; ++s) {
    const geolic::CatalogSimResult result =
        geolic::RunCatalogSimulation(s, config);
    if (!result.ok) {
      PrintCatalogFailure(result, tenants);
      return 1;
    }
    if ((s - start_seed + 1) % 100 == 0) {
      std::printf("  ... %" PRIu64 "/%" PRIu64 " seeds clean\n",
                  s - start_seed + 1, sweep);
      std::fflush(stdout);
    }
  }
  std::printf("OK: %" PRIu64 " seeds clean (catalog mode, tenants=%" PRIu64
              ", start_seed=%" PRIu64 ")\n",
              sweep, tenants, start_seed);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seeds = 0;
  uint64_t start_seed = 1;
  uint64_t single_seed = 0;
  uint64_t wide_n = 0;
  uint64_t tenants = 0;
  bool have_single = false;
  bool mutation_smoke = false;
  bool lifecycle = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseUint(arg, "--seeds", &seeds) ||
        ParseUint(arg, "--start_seed", &start_seed)) {
      continue;
    }
    if (ParseUint(arg, "--wide_n", &wide_n)) {
      continue;
    }
    if (ParseUint(arg, "--tenants", &tenants)) {
      continue;
    }
    if (ParseUint(arg, "--seed", &single_seed)) {
      have_single = true;
      continue;
    }
    if (std::strcmp(arg, "--mutation_smoke") == 0) {
      mutation_smoke = true;
      continue;
    }
    if (std::strcmp(arg, "--lifecycle") == 0) {
      lifecycle = true;
      continue;
    }
    std::fprintf(stderr,
                 "sim_runner: unknown flag %s\n"
                 "usage: sim_runner [--seeds=N] [--seed=S] [--start_seed=B] "
                 "[--wide_n=N] [--tenants=T] [--lifecycle] "
                 "[--mutation_smoke]\n",
                 arg);
    return 2;
  }

  if (tenants > 0) {
    if (lifecycle || wide_n > 0) {
      std::fprintf(stderr,
                   "sim_runner: --tenants is incompatible with --lifecycle "
                   "and --wide_n\n");
      return 2;
    }
    return RunCatalogMode(tenants, seeds, start_seed, single_seed,
                          have_single, mutation_smoke);
  }

  geolic::SimConfig config;
  config.lifecycle_ops = lifecycle;
  // The planted bug under --mutation_smoke depends on the mode: the
  // equation-skip accounting bug for plain sweeps, the skipped-renumbering
  // reconfiguration bug when lifecycle ops are in play.
  config.inject_equation_skip = mutation_smoke && !lifecycle;
  config.inject_skip_renumbering = mutation_smoke && lifecycle;
  if (wide_n > 0) {
    config.min_licenses = static_cast<int>(wide_n);
    config.max_licenses = static_cast<int>(wide_n);
    config.cluster_slabs = static_cast<int>((wide_n + 7) / 8);
  }

  if (have_single) {
    const geolic::SimResult result = geolic::RunSimulation(single_seed, config);
    if (result.ok) {
      std::printf("seed %" PRIu64 " OK (%zu ops)\n", result.seed,
                  result.ops_executed);
      return 0;
    }
    PrintFailure(result, config, wide_n);
    std::printf("  full trace:\n");
    for (const std::string& op : result.op_trace) {
      std::printf("    %s\n", op.c_str());
    }
    return 1;
  }

  if (mutation_smoke) {
    // The harness is on trial: a correct harness must catch the planted
    // accounting bug within the budget.
    const uint64_t budget = seeds == 0 ? 200 : seeds;
    const char* planted =
        lifecycle ? "skipped-renumbering" : "equation-skip";
    for (uint64_t s = start_seed; s < start_seed + budget; ++s) {
      const geolic::SimResult result = geolic::RunSimulation(s, config);
      if (!result.ok) {
        std::printf("mutation smoke OK: planted %s bug caught at "
                    "seed %" PRIu64 " (%" PRIu64 " seeds tried)\n",
                    planted, s, s - start_seed + 1);
        std::printf("  failure: %s\n", result.failure.c_str());
        return 0;
      }
    }
    std::printf("mutation smoke FAILED: planted bug not caught in %" PRIu64
                " seeds — the harness has lost its teeth\n",
                budget);
    return 1;
  }

  const uint64_t sweep = seeds == 0 ? 100 : seeds;
  for (uint64_t s = start_seed; s < start_seed + sweep; ++s) {
    const geolic::SimResult result = geolic::RunSimulation(s, config);
    if (!result.ok) {
      PrintFailure(result, config, wide_n);
      return 1;
    }
    if ((s - start_seed + 1) % 100 == 0) {
      std::printf("  ... %" PRIu64 "/%" PRIu64 " seeds clean\n",
                  s - start_seed + 1, sweep);
      std::fflush(stdout);
    }
  }
  std::printf("OK: %" PRIu64 " seeds clean (start_seed=%" PRIu64 ")\n", sweep,
              start_seed);
  return 0;
}
