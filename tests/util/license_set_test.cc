#include "util/license_set.h"

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace geolic {
namespace {

// ---------------------------------------------------------------------------
// Inline-path fuzz: at N <= 64 every LicenseSet operation must be
// bit-identical to the seed's bare-uint64_t mask arithmetic. The "model"
// below IS that seed arithmetic, transcribed; 1000 random word pairs are
// pushed through both.
// ---------------------------------------------------------------------------

int ModelSize(uint64_t mask) { return std::popcount(mask); }
bool ModelSubset(uint64_t sub, uint64_t super) { return (sub & ~super) == 0; }
bool ModelContains(uint64_t mask, int i) {
  return (mask & (uint64_t{1} << i)) != 0;
}
int ModelLowest(uint64_t mask) { return std::countr_zero(mask); }
int ModelHighest(uint64_t mask) { return 63 - std::countl_zero(mask); }

TEST(LicenseSetInlineFuzzTest, BitIdenticalToSeedWordArithmetic) {
  Rng rng(20260808);
  for (int trial = 0; trial < 1000; ++trial) {
    const uint64_t a = rng.Next();
    const uint64_t b = rng.Next();
    const LicenseSet sa = LicenseSet::FromWord(a);
    const LicenseSet sb = LicenseSet::FromWord(b);

    // Representation: inline sets ARE the old word.
    ASSERT_EQ(sa.WordCount(), 1);
    ASSERT_EQ(sa.AsWord(), a);
    ASSERT_EQ(sa.Word(0), a);

    // Algebra.
    EXPECT_EQ((sa | sb).AsWord(), a | b);
    EXPECT_EQ((sa & sb).AsWord(), a & b);
    EXPECT_EQ((sa - sb).AsWord(), a & ~b);

    // Observers.
    EXPECT_EQ(sa.Size(), ModelSize(a));
    EXPECT_EQ(sa.Empty(), a == 0);
    EXPECT_EQ(sa.IsSubsetOf(sb), ModelSubset(a, b));
    EXPECT_EQ(sa.Intersects(sb), (a & b) != 0);
    if (a != 0) {
      EXPECT_EQ(sa.Lowest(), ModelLowest(a));
      EXPECT_EQ(sa.Highest(), ModelHighest(a));
    }
    const int probe = static_cast<int>(rng.UniformInt(0, 63));
    EXPECT_EQ(sa.Contains(probe), ModelContains(a, probe));

    // Ordering and equality are numeric, as with bare words.
    EXPECT_EQ(sa == sb, a == b);
    EXPECT_EQ(sa < sb, a < b);

    // Index round trip.
    EXPECT_EQ(LicenseSet::FromIndexes(sa.ToIndexes()), sa);

    // Hex round trip.
    LicenseSet parsed;
    ASSERT_TRUE(LicenseSet::FromHex(sa.ToHex(), &parsed));
    EXPECT_EQ(parsed, sa);
  }
}

TEST(LicenseSetInlineFuzzTest, SubsetIterationOrderMatchesSeedDescent) {
  // The seed enumerated non-empty submasks descending via
  // `sub = (sub - 1) & mask`. SubsetIterator must visit in exactly that
  // order for inline sets.
  Rng rng(77002);
  for (int trial = 0; trial < 1000; ++trial) {
    // Keep popcount small so enumeration stays cheap.
    const uint64_t mask = rng.Next() & rng.Next() & rng.Next();
    std::vector<uint64_t> expected;
    for (uint64_t sub = mask; sub != 0; sub = (sub - 1) & mask) {
      expected.push_back(sub);
    }
    std::vector<uint64_t> got;
    for (SubsetIterator it(LicenseSet::FromWord(mask)); !it.Done();
         it.Next()) {
      ASSERT_EQ(it.subset().WordCount(), 1);
      got.push_back(it.subset().AsWord());
    }
    ASSERT_EQ(got, expected) << "mask=0x" << std::hex << mask;
  }
}

TEST(LicenseSetInlineFuzzTest, AscendingIterationAndLimitingEquation) {
  // The online validator's extension scan enumerates ALL subsets ascending
  // (empty first) via `sub = (sub - mask) & mask`; the first violated
  // equation it meets is the reported limiting set. Both the order and the
  // resulting limiting choice must match the seed trick.
  Rng rng(88003);
  for (int trial = 0; trial < 1000; ++trial) {
    const uint64_t mask = rng.Next() & rng.Next() & rng.Next();
    std::vector<uint64_t> expected;
    uint64_t sub = 0;
    while (true) {
      expected.push_back(sub);
      if (sub == mask) {
        break;
      }
      sub = (sub - mask) & mask;
    }
    std::vector<uint64_t> got;
    for (AscendingSubsetIterator it(LicenseSet::FromWord(mask)); !it.Done();
         it.Next()) {
      got.push_back(it.subset().AsWord());
      if (it.AtLast()) {
        EXPECT_EQ(it.subset().AsWord(), mask);
      }
    }
    ASSERT_EQ(got, expected) << "mask=0x" << std::hex << mask;

    // Limiting equation: random per-subset budgets, first ascending subset
    // whose budget is "violated" must agree between model and iterator.
    uint64_t model_limiting = 0;
    bool model_found = false;
    for (const uint64_t s : expected) {
      if (s != 0 && (s & 1u) == 1u && ModelSize(s) >= 2) {
        model_limiting = s;
        model_found = true;
        break;
      }
    }
    LicenseSet set_limiting;
    bool set_found = false;
    for (AscendingSubsetIterator it(LicenseSet::FromWord(mask)); !it.Done();
         it.Next()) {
      const LicenseSet s = it.subset();
      if (!s.Empty() && s.Contains(0) && s.Size() >= 2) {
        set_limiting = s;
        set_found = true;
        break;
      }
    }
    ASSERT_EQ(set_found, model_found);
    if (model_found) {
      EXPECT_EQ(set_limiting.AsWord(), model_limiting);
    }
  }
}

// ---------------------------------------------------------------------------
// Wide-path unit coverage: representation canonicality and cross-word ops.
// ---------------------------------------------------------------------------

TEST(LicenseSetWideTest, FromWordsCanonicalizesTrailingZeroWords) {
  const uint64_t one_word[] = {0x5au};
  EXPECT_EQ(LicenseSet::FromWords(one_word).WordCount(), 1);

  const uint64_t padded[] = {0x5au, 0, 0};
  const LicenseSet set = LicenseSet::FromWords(padded);
  EXPECT_EQ(set.WordCount(), 1);  // Trimmed back to inline.
  EXPECT_EQ(set, LicenseSet::FromWord(0x5au));

  const uint64_t wide[] = {0, 0x1u, 0};
  const LicenseSet spilled = LicenseSet::FromWords(wide);
  EXPECT_EQ(spilled.WordCount(), 2);
  EXPECT_EQ(spilled, LicenseSet::Singleton(64));
}

TEST(LicenseSetWideTest, SingletonFullAndObserversAcrossWords) {
  const LicenseSet high = LicenseSet::Singleton(900);
  EXPECT_EQ(high.Size(), 1);
  EXPECT_EQ(high.Lowest(), 900);
  EXPECT_EQ(high.Highest(), 900);
  EXPECT_TRUE(high.Contains(900));
  EXPECT_FALSE(high.Contains(899));
  EXPECT_EQ(high.WordCount(), 900 / 64 + 1);

  const LicenseSet full = LicenseSet::Full(200);
  EXPECT_EQ(full.Size(), 200);
  EXPECT_EQ(full.Lowest(), 0);
  EXPECT_EQ(full.Highest(), 199);
  EXPECT_TRUE(LicenseSet::Full(64).IsSubsetOf(full));
  EXPECT_TRUE(high.IsSubsetOf(LicenseSet::Full(1024)));
  EXPECT_FALSE(high.IsSubsetOf(full));
}

TEST(LicenseSetWideTest, AlgebraNarrowsBackToInline) {
  const LicenseSet wide = LicenseSet::Singleton(5) | LicenseSet::Singleton(700);
  EXPECT_EQ(wide.WordCount(), 700 / 64 + 1);
  // Subtracting the high bit must re-canonicalize to the inline word.
  const LicenseSet narrowed = wide - LicenseSet::Singleton(700);
  EXPECT_EQ(narrowed.WordCount(), 1);
  EXPECT_EQ(narrowed, LicenseSet::FromWord(0b100000u));
  // Intersection with an inline set narrows too.
  EXPECT_EQ((wide & LicenseSet::Full(64)).WordCount(), 1);
  // Equality is representation-independent because both sides canonicalize.
  EXPECT_EQ(narrowed.AsWord(), 0b100000u);
}

TEST(LicenseSetWideTest, FuzzWideOpsAgainstIndexSets) {
  // Model a wide set as its sorted index list; every op must agree.
  Rng rng(404405);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> ia;
    std::vector<int> ib;
    for (int k = 0; k < 12; ++k) {
      ia.push_back(static_cast<int>(rng.UniformInt(0, 1023)));
      ib.push_back(static_cast<int>(rng.UniformInt(0, 1023)));
    }
    const LicenseSet a = LicenseSet::FromIndexes(ia);
    const LicenseSet b = LicenseSet::FromIndexes(ib);
    std::map<int, bool> in_a;
    std::map<int, bool> in_b;
    for (int i : ia) in_a[i] = true;
    for (int i : ib) in_b[i] = true;

    std::vector<int> union_indexes;
    std::vector<int> inter_indexes;
    std::vector<int> minus_indexes;
    bool subset = true;
    bool intersects = false;
    for (int i = 0; i < 1024; ++i) {
      const bool pa = in_a.count(i) != 0;
      const bool pb = in_b.count(i) != 0;
      if (pa || pb) union_indexes.push_back(i);
      if (pa && pb) {
        inter_indexes.push_back(i);
        intersects = true;
      }
      if (pa && !pb) {
        minus_indexes.push_back(i);
        subset = false;
      }
    }
    EXPECT_EQ((a | b).ToIndexes(), union_indexes);
    EXPECT_EQ((a & b).ToIndexes(), inter_indexes);
    EXPECT_EQ((a - b).ToIndexes(), minus_indexes);
    EXPECT_EQ(a.IsSubsetOf(b), subset);
    EXPECT_EQ(a.Intersects(b), intersects);
    EXPECT_EQ(a.Size(), static_cast<int>(in_a.size()));
    EXPECT_EQ(a.Lowest(), a.ToIndexes().front());
    EXPECT_EQ(a.Highest(), a.ToIndexes().back());

    // Round trips.
    EXPECT_EQ(LicenseSet::FromIndexes(a.ToIndexes()), a);
    LicenseSet parsed;
    ASSERT_TRUE(LicenseSet::FromHex(a.ToHex(), &parsed));
    EXPECT_EQ(parsed, a);
    EXPECT_EQ(LicenseSet::FromWords(a.WordSpan()), a);

    // Indexes() range agrees with ToIndexes().
    std::vector<int> ranged;
    for (const int index : a.Indexes()) {
      ranged.push_back(index);
    }
    EXPECT_EQ(ranged, a.ToIndexes());
  }
}

TEST(LicenseSetWideTest, SubsetIterationOverWideSets) {
  // A sparse wide set with k bits has exactly 2^k - 1 non-empty subsets;
  // descending order generalizes word-wise.
  const LicenseSet set = LicenseSet::FromIndexes({3, 70, 200, 513, 1000});
  std::vector<LicenseSet> seen;
  for (SubsetIterator it(set); !it.Done(); it.Next()) {
    EXPECT_TRUE(it.subset().IsSubsetOf(set));
    EXPECT_FALSE(it.subset().Empty());
    if (!seen.empty()) {
      EXPECT_TRUE(it.subset() < seen.back()) << "not descending";
    }
    seen.push_back(it.subset());
  }
  EXPECT_EQ(seen.size(), 31u);  // 2^5 - 1.

  size_t ascending_count = 0;
  LicenseSet last;
  for (AscendingSubsetIterator it(set); !it.Done(); it.Next()) {
    if (ascending_count > 0) {
      EXPECT_TRUE(last < it.subset()) << "not ascending";
    }
    last = it.subset();
    ++ascending_count;
    if (it.AtLast()) {
      EXPECT_EQ(it.subset(), set);
    }
  }
  EXPECT_EQ(ascending_count, 32u);  // 2^5, empty set included.
}

TEST(LicenseSetWideTest, AddRemoveMutatorsMatchFactories) {
  LicenseSet set;
  set.Add(10);
  set.Add(800);
  EXPECT_EQ(set, LicenseSet::FromIndexes({10, 800}));
  set.Remove(800);
  EXPECT_EQ(set.WordCount(), 1);
  EXPECT_EQ(set, LicenseSet::Singleton(10));
  set.Remove(10);
  EXPECT_TRUE(set.Empty());
}

}  // namespace
}  // namespace geolic
