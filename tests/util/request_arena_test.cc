#include "util/request_arena.h"

#include <cstdint>
#include <thread>

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(RequestArenaTest, AllocationsAreAlignedAndDisjoint) {
  RequestArena arena(128);
  char* a = arena.AllocateArray<char>(3);
  uint64_t* b = arena.AllocateArray<uint64_t>(4);
  char* c = arena.AllocateArray<char>(1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(uint64_t), 0u);
  // Writes must not overlap.
  a[0] = 'x';
  a[2] = 'y';
  for (int i = 0; i < 4; ++i) {
    b[i] = ~uint64_t{0};
  }
  c[0] = 'z';
  EXPECT_EQ(a[0], 'x');
  EXPECT_EQ(a[2], 'y');
  EXPECT_EQ(c[0], 'z');
}

TEST(RequestArenaTest, GrowsPastFirstBlockAndResetsToIt) {
  RequestArena arena(64);
  // Far past the first block: forces the doubling slow path.
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(arena.AllocateArray<uint64_t>(8), nullptr);
  }
  EXPECT_GT(arena.block_count(), 1u);
  const size_t grown_capacity = arena.capacity_bytes();
  arena.Reset();
  // Reset retains capacity; the same demand allocates no new blocks.
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(arena.AllocateArray<uint64_t>(8), nullptr);
  }
  EXPECT_EQ(arena.capacity_bytes(), grown_capacity);
}

TEST(RequestArenaTest, MarkRewindReleasesSuffix) {
  RequestArena arena(256);
  (void)arena.AllocateArray<uint64_t>(4);
  const RequestArena::Mark mark = arena.mark();
  void* first_after_mark = arena.Allocate(64, 8);
  (void)arena.AllocateArray<uint64_t>(16);
  arena.Rewind(mark);
  // The next allocation reuses the rewound space.
  EXPECT_EQ(arena.Allocate(64, 8), first_after_mark);
}

TEST(RequestArenaTest, ArenaScopeRewindsOnExit) {
  RequestArena arena(256);
  void* base = arena.Allocate(16, 8);
  ASSERT_NE(base, nullptr);
  void* inner = nullptr;
  {
    const ArenaScope scope(&arena);
    inner = arena.Allocate(32, 8);
  }
  // Scope exit rewound to the mark: same address comes back.
  EXPECT_EQ(arena.Allocate(32, 8), inner);
}

TEST(RequestArenaTest, ThreadLocalArenasAreDistinct) {
  RequestArena* main_arena = &ThreadLocalRequestArena();
  ASSERT_NE(main_arena, nullptr);
  RequestArena* worker_arena = nullptr;
  std::thread worker(
      [&worker_arena] { worker_arena = &ThreadLocalRequestArena(); });
  worker.join();
  EXPECT_NE(worker_arena, nullptr);
  EXPECT_NE(worker_arena, main_arena);
}

}  // namespace
}  // namespace geolic
