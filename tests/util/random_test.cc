#include "util/random.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 24);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(99);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) {
    first.push_back(rng.Next());
  }
  rng.Seed(99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.Next(), first[static_cast<size_t>(i)]);
  }
}

TEST(RngTest, UniformIntStaysInClosedRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t value = rng.UniformInt(-5, 5);
    EXPECT_GE(value, -5);
    EXPECT_LE(value, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(42, 42), 42);
  }
}

TEST(RngTest, UniformIntHitsAllValuesOfSmallRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.UniformInt(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformInt(0, kBuckets - 1)];
  }
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    // Expected 10000 per bucket; allow ±5%.
    EXPECT_GT(counts[bucket], 9500) << "bucket " << bucket;
    EXPECT_LT(counts[bucket], 10500) << "bucket " << bucket;
  }
}

TEST(RngTest, UniformIntFullInt64Range) {
  Rng rng(17);
  // Just exercises the span == UINT64_MAX path without crashing.
  for (int i = 0; i < 10; ++i) {
    (void)rng.UniformInt(INT64_MIN, INT64_MAX);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.UniformDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
    sum += value;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / 100000.0, 0.3, 0.01);
}

TEST(RngTest, UniformIndexBounds) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformIndex(17), 17u);
  }
  EXPECT_EQ(rng.UniformIndex(1), 0u);
}

}  // namespace
}  // namespace geolic
