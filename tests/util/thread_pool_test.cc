#include "util/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 64; ++i) {
    pool.Schedule([&running, &peak] {
      const int now = running.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      // Busy-wait a little so tasks overlap.
      std::atomic<int> spin{0};
      while (spin.fetch_add(1) < 50000) {
      }
      running.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, WaitCanBeReusedAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 100; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 100);
  }
}

TEST(ThreadPoolTest, DestructionDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Schedule([&counter] { counter.fetch_add(1); });
    }
    // No Wait: the destructor must still run every queued task (workers
    // only exit on an empty queue).
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace geolic
