#include "util/license_set.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace geolic {
namespace {

LicenseSet M(uint64_t word) { return LicenseSet::FromWord(word); }

TEST(BitsTest, MaskSizeCountsBits) {
  EXPECT_EQ(M(0).Size(), 0);
  EXPECT_EQ(M(0b1).Size(), 1);
  EXPECT_EQ(M(0b1011).Size(), 3);
  EXPECT_EQ(M(~uint64_t{0}).Size(), 64);
}

TEST(BitsTest, SingletonMask) {
  EXPECT_EQ(LicenseSet::Singleton(0), M(1));
  EXPECT_EQ(LicenseSet::Singleton(3), M(8));
  EXPECT_EQ(LicenseSet::Singleton(63), M(uint64_t{1} << 63));
}

TEST(BitsTest, FullMask) {
  EXPECT_EQ(LicenseSet::Full(0), M(0));
  EXPECT_EQ(LicenseSet::Full(1), M(0b1));
  EXPECT_EQ(LicenseSet::Full(5), M(0b11111));
  EXPECT_EQ(LicenseSet::Full(64), M(~uint64_t{0}));
}

TEST(BitsTest, SubsetRelation) {
  EXPECT_TRUE(M(0).IsSubsetOf(M(0)));
  EXPECT_TRUE(M(0).IsSubsetOf(M(0b101)));
  EXPECT_TRUE(M(0b100).IsSubsetOf(M(0b101)));
  EXPECT_TRUE(M(0b101).IsSubsetOf(M(0b101)));
  EXPECT_FALSE(M(0b10).IsSubsetOf(M(0b101)));
  EXPECT_FALSE(M(0b111).IsSubsetOf(M(0b101)));
}

TEST(BitsTest, MaskContains) {
  EXPECT_TRUE(M(0b101).Contains(0));
  EXPECT_FALSE(M(0b101).Contains(1));
  EXPECT_TRUE(M(0b101).Contains(2));
}

TEST(BitsTest, LowestAndHighest) {
  EXPECT_EQ(M(0b100).Lowest(), 2);
  EXPECT_EQ(M(0b101).Lowest(), 0);
  EXPECT_EQ(M(0b101).Highest(), 2);
  EXPECT_EQ(LicenseSet::Singleton(63).Highest(), 63);
}

TEST(BitsTest, MaskIndexRoundTrip) {
  const std::vector<int> indexes = {0, 3, 5, 41};
  const LicenseSet mask = LicenseSet::FromIndexes(indexes);
  EXPECT_EQ(mask.ToIndexes(), indexes);
}

TEST(BitsTest, MaskToIndexesIsAscending) {
  const std::vector<int> indexes = M(0b110101).ToIndexes();
  EXPECT_EQ(indexes, (std::vector<int>{0, 2, 4, 5}));
}

TEST(BitsTest, IndexesToMaskCollapsesDuplicates) {
  EXPECT_EQ(LicenseSet::FromIndexes({1, 1, 1}), M(0b10));
}

TEST(SubsetIteratorTest, EmptySetHasNoSubsets) {
  SubsetIterator it((LicenseSet()));
  EXPECT_TRUE(it.Done());
}

TEST(SubsetIteratorTest, EnumeratesAllNonEmptySubsets) {
  const LicenseSet set = M(0b10110);
  std::set<LicenseSet> seen;
  for (SubsetIterator it(set); !it.Done(); it.Next()) {
    EXPECT_TRUE(it.subset().IsSubsetOf(set));
    EXPECT_FALSE(it.subset().Empty());
    EXPECT_TRUE(seen.insert(it.subset()).second) << "duplicate subset";
  }
  // 2^3 - 1 = 7 non-empty subsets of a 3-element set.
  EXPECT_EQ(seen.size(), 7u);
}

TEST(SubsetIteratorTest, SingletonSet) {
  SubsetIterator it(M(0b100));
  ASSERT_FALSE(it.Done());
  EXPECT_EQ(it.subset(), M(0b100));
  it.Next();
  EXPECT_TRUE(it.Done());
}

TEST(SubsetIteratorTest, CountMatchesFormulaForVariousSizes) {
  for (int n = 1; n <= 10; ++n) {
    int count = 0;
    for (SubsetIterator it(LicenseSet::Full(n)); !it.Done(); it.Next()) {
      ++count;
    }
    EXPECT_EQ(count, (1 << n) - 1) << "n=" << n;
  }
}

TEST(BitsTest, MaskToStringUsesPaperNotation) {
  EXPECT_EQ(M(0).ToString(), "{}");
  EXPECT_EQ(M(0b1).ToString(), "{L1}");
  // Bits 0,1,3 are the paper's L1, L2, L4.
  EXPECT_EQ(M(0b1011).ToString(), "{L1, L2, L4}");
}

}  // namespace
}  // namespace geolic
