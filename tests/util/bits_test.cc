#include "util/bits.h"

#include <set>

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(BitsTest, MaskSizeCountsBits) {
  EXPECT_EQ(MaskSize(0), 0);
  EXPECT_EQ(MaskSize(0b1), 1);
  EXPECT_EQ(MaskSize(0b1011), 3);
  EXPECT_EQ(MaskSize(~LicenseMask{0}), 64);
}

TEST(BitsTest, SingletonMask) {
  EXPECT_EQ(SingletonMask(0), 1u);
  EXPECT_EQ(SingletonMask(3), 8u);
  EXPECT_EQ(SingletonMask(63), LicenseMask{1} << 63);
}

TEST(BitsTest, FullMask) {
  EXPECT_EQ(FullMask(0), 0u);
  EXPECT_EQ(FullMask(1), 0b1u);
  EXPECT_EQ(FullMask(5), 0b11111u);
  EXPECT_EQ(FullMask(64), ~LicenseMask{0});
}

TEST(BitsTest, SubsetRelation) {
  EXPECT_TRUE(IsSubsetOf(0, 0));
  EXPECT_TRUE(IsSubsetOf(0, 0b101));
  EXPECT_TRUE(IsSubsetOf(0b100, 0b101));
  EXPECT_TRUE(IsSubsetOf(0b101, 0b101));
  EXPECT_FALSE(IsSubsetOf(0b10, 0b101));
  EXPECT_FALSE(IsSubsetOf(0b111, 0b101));
}

TEST(BitsTest, MaskContains) {
  EXPECT_TRUE(MaskContains(0b101, 0));
  EXPECT_FALSE(MaskContains(0b101, 1));
  EXPECT_TRUE(MaskContains(0b101, 2));
}

TEST(BitsTest, LowestAndHighest) {
  EXPECT_EQ(LowestLicense(0b100), 2);
  EXPECT_EQ(LowestLicense(0b101), 0);
  EXPECT_EQ(HighestLicense(0b101), 2);
  EXPECT_EQ(HighestLicense(SingletonMask(63)), 63);
}

TEST(BitsTest, MaskIndexRoundTrip) {
  const std::vector<int> indexes = {0, 3, 5, 41};
  const LicenseMask mask = IndexesToMask(indexes);
  EXPECT_EQ(MaskToIndexes(mask), indexes);
}

TEST(BitsTest, MaskToIndexesIsAscending) {
  const std::vector<int> indexes = MaskToIndexes(0b110101);
  EXPECT_EQ(indexes, (std::vector<int>{0, 2, 4, 5}));
}

TEST(BitsTest, IndexesToMaskCollapsesDuplicates) {
  EXPECT_EQ(IndexesToMask({1, 1, 1}), 0b10u);
}

TEST(SubsetIteratorTest, EmptySetHasNoSubsets) {
  SubsetIterator it(0);
  EXPECT_TRUE(it.Done());
}

TEST(SubsetIteratorTest, EnumeratesAllNonEmptySubsets) {
  const LicenseMask set = 0b10110;
  std::set<LicenseMask> seen;
  for (SubsetIterator it(set); !it.Done(); it.Next()) {
    EXPECT_TRUE(IsSubsetOf(it.subset(), set));
    EXPECT_NE(it.subset(), 0u);
    EXPECT_TRUE(seen.insert(it.subset()).second) << "duplicate subset";
  }
  // 2^3 - 1 = 7 non-empty subsets of a 3-element set.
  EXPECT_EQ(seen.size(), 7u);
}

TEST(SubsetIteratorTest, SingletonSet) {
  SubsetIterator it(0b100);
  ASSERT_FALSE(it.Done());
  EXPECT_EQ(it.subset(), 0b100u);
  it.Next();
  EXPECT_TRUE(it.Done());
}

TEST(SubsetIteratorTest, CountMatchesFormulaForVariousSizes) {
  for (int n = 1; n <= 10; ++n) {
    int count = 0;
    for (SubsetIterator it(FullMask(n)); !it.Done(); it.Next()) {
      ++count;
    }
    EXPECT_EQ(count, (1 << n) - 1) << "n=" << n;
  }
}

TEST(BitsTest, MaskToStringUsesPaperNotation) {
  EXPECT_EQ(MaskToString(0), "{}");
  EXPECT_EQ(MaskToString(0b1), "{L1}");
  // Bits 0,1,3 are the paper's L1, L2, L4.
  EXPECT_EQ(MaskToString(0b1011), "{L1, L2, L4}");
}

}  // namespace
}  // namespace geolic
