#include "util/metrics.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(LatencyHistogramTest, QuantilesOnCleanSnapshot) {
  LatencyHistogram histogram;
  for (int i = 0; i < 100; ++i) {
    histogram.Record(10);  // Bucket 3: [8, 16).
  }
  histogram.Record(1000);  // Bucket 9: [512, 1024).
  const LatencyHistogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.QuantileUpperBoundNanos(0.0), int64_t{1} << 4);
  EXPECT_EQ(snap.QuantileUpperBoundNanos(0.5), int64_t{1} << 4);
  EXPECT_EQ(snap.QuantileUpperBoundNanos(1.0), int64_t{1} << 10);
}

TEST(LatencyHistogramTest, EmptySnapshotQuantileIsZero) {
  const LatencyHistogram::Snapshot snap = LatencyHistogram().Snap();
  EXPECT_EQ(snap.QuantileUpperBoundNanos(0.5), 0);
  EXPECT_EQ(snap.QuantileUpperBoundNanos(0.99), 0);
}

// Regression: Record is two relaxed RMWs (bucket, then total_count), so a
// concurrent Snap can observe total_count ahead of the bucket sum. The old
// quantile code ranked against total_count and ran off the end of the
// bucket array, reporting a spurious 2^40 ns p99 under load. The rank must
// come from the snapshotted bucket sum itself.
TEST(LatencyHistogramTest, QuantileRankUsesBucketSumNotTotalCount) {
  LatencyHistogram::Snapshot snap;
  snap.counts[3] = 10;   // All real observations in [8, 16).
  snap.total_count = 15; // Skewed ahead, as a racy Snap() can see.
  snap.total_nanos = 100;
  // p99 rank over the 10 visible observations is index 9 — still bucket 3.
  EXPECT_EQ(snap.QuantileUpperBoundNanos(0.99), int64_t{1} << 4);
  EXPECT_EQ(snap.QuantileUpperBoundNanos(1.0), int64_t{1} << 4);
  // Never the saturated tail bound the bug produced.
  EXPECT_LT(snap.QuantileUpperBoundNanos(0.99), int64_t{1} << 40);
}

TEST(LatencyHistogramTest, ConcurrentSnapshotsNeverSaturateQuantile) {
  LatencyHistogram histogram;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&histogram, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        histogram.Record(100);  // Bucket 6: [64, 128).
      }
    });
  }
  // Snapshot under write load: whatever skew Snap observes, the quantile
  // must stay inside the only populated bucket (or 0 if nothing landed).
  for (int i = 0; i < 2000; ++i) {
    const LatencyHistogram::Snapshot snap = histogram.Snap();
    const int64_t p99 = snap.QuantileUpperBoundNanos(0.99);
    EXPECT_TRUE(p99 == 0 || p99 == (int64_t{1} << 7)) << p99;
  }
  stop.store(true);
  for (std::thread& writer : writers) {
    writer.join();
  }
}

// Regression: negative latencies (cross-thread timestamp math can go
// backwards) were cast straight to uint64_t, landing in the 2^40 ns top
// bucket and wrecking the mean. They must be clamped into bucket 0, still
// counted, and surfaced through the clamped_negative counter.
TEST(LatencyHistogramTest, NegativeNanosClampToBucketZeroAndAreCounted) {
  LatencyHistogram histogram;
  histogram.Record(-1);
  histogram.Record(std::numeric_limits<int64_t>::min());
  histogram.Record(10);  // Bucket 3: [8, 16).
  const LatencyHistogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.total_count, 3u);
  EXPECT_EQ(snap.total_nanos, 10u);  // Clamped observations contribute 0.
  EXPECT_EQ(snap.clamped_negative, 2u);
  // The clamped observations keep the quantiles in range.
  EXPECT_EQ(snap.QuantileUpperBoundNanos(0.5), int64_t{1} << 1);
  EXPECT_EQ(snap.QuantileUpperBoundNanos(1.0), int64_t{1} << 4);
  // Clamping is observable in the log line, and only when it happened.
  EXPECT_NE(snap.ToString().find("clamped_negative=2"), std::string::npos);
  EXPECT_EQ(LatencyHistogram().Snap().ToString().find("clamped_negative"),
            std::string::npos);
}

// Regression: ToString used a fixed 256-byte buffer; six 20-digit counters
// plus the latency line overflowed it and truncated the output.
TEST(IssuanceMetricsTest, ToStringSurvivesMaxMagnitudeCounters) {
  IssuanceMetrics::Snapshot snap;
  const uint64_t max = std::numeric_limits<uint64_t>::max();
  snap.accepted = max;
  snap.rejected_instance = max;
  snap.rejected_aggregate = max;
  snap.equations_checked = max;
  snap.batches = max;
  snap.batched_requests = max;
  snap.latency.counts[39] = max;
  snap.latency.total_count = max;
  snap.latency.total_nanos = max;
  const std::string text = snap.ToString();
  // Every counter appears in full — nothing cut off mid-number.
  EXPECT_NE(text.find("accepted=18446744073709551615"), std::string::npos)
      << text;
  EXPECT_NE(text.find("(18446744073709551615 reqs)"), std::string::npos)
      << text;
  // The latency one-liner made it in after all six counters.
  EXPECT_NE(text.find("count=18446744073709551615"), std::string::npos)
      << text;
  EXPECT_NE(text.find("p99"), std::string::npos) << text;
}

TEST(IssuanceMetricsTest, CountersAccumulate) {
  IssuanceMetrics metrics;
  metrics.RecordAccepted(3, 50);
  metrics.RecordAccepted(2, 70);
  metrics.RecordRejectedInstance(10);
  metrics.RecordRejectedAggregate(4, 90);
  metrics.RecordBatch(5);
  const IssuanceMetrics::Snapshot snap = metrics.Snap();
  EXPECT_EQ(snap.accepted, 2u);
  EXPECT_EQ(snap.rejected_instance, 1u);
  EXPECT_EQ(snap.rejected_aggregate, 1u);
  EXPECT_EQ(snap.equations_checked, 9u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_EQ(snap.batched_requests, 5u);
  EXPECT_EQ(snap.total_requests(), 4u);
  EXPECT_EQ(snap.latency.total_count, 4u);
}

}  // namespace
}  // namespace geolic
