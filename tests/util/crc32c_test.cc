#include "util/crc32c.h"

#include <cstdint>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

namespace geolic {
namespace {

// Reference vectors from RFC 3720 (iSCSI), appendix B.4.
TEST(Crc32cTest, Rfc3720Vectors) {
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);

  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);

  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);

  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) {
    ascending[static_cast<size_t>(i)] = static_cast<char>(i);
  }
  EXPECT_EQ(Crc32c(ascending), 0x46DD794Eu);

  std::string descending(32, '\0');
  for (int i = 0; i < 32; ++i) {
    descending[static_cast<size_t>(i)] = static_cast<char>(31 - i);
  }
  EXPECT_EQ(Crc32c(descending), 0x113FDB5Cu);
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data =
      "the geolic journal frames every accepted issuance";
  const uint32_t one_shot = Crc32c(data);
  // Any split point must yield the same digest as the one-shot call.
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, one_shot) << "split at " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipsChangeDigest) {
  const std::string data(64, 'a');
  const uint32_t clean = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = data;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(mutated), clean) << "byte " << i << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace geolic
