#include "util/status.h"

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::ParseError("bad token").ToString(),
            "PARSE_ERROR: bad token");
  EXPECT_EQ(Status(StatusCode::kNotFound, "").ToString(), "NOT_FOUND");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, StatusCodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCapacityExceeded),
               "CAPACITY_EXCEEDED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, OkStatusIntoResultBecomesInternalError) {
  Result<int> result = Status::Ok();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  const std::string moved = *std::move(result);
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result = std::string("abc");
  EXPECT_EQ(result->size(), 3u);
}

namespace helpers {

Status FailWhenNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::Ok();
}

Status Chain(int x) {
  GEOLIC_RETURN_IF_ERROR(FailWhenNegative(x));
  return Status::Ok();
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return Status::InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  GEOLIC_ASSIGN_OR_RETURN(const int half, Half(x));
  GEOLIC_ASSIGN_OR_RETURN(const int quarter, Half(half));
  return quarter;
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chain(1).ok());
  EXPECT_EQ(helpers::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesAndAssigns) {
  const Result<int> ok = helpers::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(helpers::Quarter(6).ok());  // 6/2 = 3 is odd.
  EXPECT_FALSE(helpers::Quarter(5).ok());
}

}  // namespace
}  // namespace geolic
