#include "util/str_util.h"

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(StripWhitespaceTest, Basics) {
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("\t a b \n"), "a b");
}

TEST(SplitAndTrimTest, EmptyInputYieldsNothing) {
  EXPECT_TRUE(SplitAndTrim("", ',').empty());
}

TEST(SplitAndTrimTest, SplitsAndTrims) {
  const auto pieces = SplitAndTrim(" a , b ,c ", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(SplitAndTrimTest, KeepsEmptyPieces) {
  const auto pieces = SplitAndTrim("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
}

TEST(SplitAndTrimTest, NoDelimiterYieldsWhole) {
  const auto pieces = SplitAndTrim("  solo  ", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "solo");
}

TEST(SplitAndTrimTest, TrailingDelimiterYieldsTrailingEmpty) {
  const auto pieces = SplitAndTrim("a;b;", ';');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[2], "");
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(ParseInt64Test, ParsesDecimal) {
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("+9"), 9);
  EXPECT_EQ(*ParseInt64("  123  "), 123);
}

TEST(ParseInt64Test, ParsesExtremes) {
  EXPECT_EQ(*ParseInt64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(*ParseInt64("-9223372036854775808"), INT64_MIN);
}

TEST(ParseInt64Test, RejectsOverflow) {
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());
  EXPECT_FALSE(ParseInt64("-9223372036854775809").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999").ok());
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("-").ok());
  EXPECT_FALSE(ParseInt64("+").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("0x1f").ok());
  EXPECT_FALSE(ParseInt64("1 2").ok());
}

TEST(AffixTest, StartsWith) {
  EXPECT_TRUE(StartsWith("license", "lic"));
  EXPECT_TRUE(StartsWith("license", ""));
  EXPECT_FALSE(StartsWith("lic", "license"));
  EXPECT_FALSE(StartsWith("license", "Lic"));
}

TEST(AffixTest, EndsWith) {
  EXPECT_TRUE(EndsWith("report.txt", ".txt"));
  EXPECT_TRUE(EndsWith("x", ""));
  EXPECT_FALSE(EndsWith(".txt", "report.txt"));
}

TEST(AsciiToLowerTest, Basics) {
  EXPECT_EQ(AsciiToLower("PlAy"), "play");
  EXPECT_EQ(AsciiToLower("ABC-123"), "abc-123");
  EXPECT_EQ(AsciiToLower(""), "");
}

}  // namespace
}  // namespace geolic
