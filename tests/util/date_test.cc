#include "util/date.h"

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(DateTest, EpochIsDayZero) {
  const Result<Date> epoch = Date::FromCivil(1970, 1, 1);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(epoch->day_number(), 0);
  EXPECT_EQ(Date().day_number(), 0);
}

TEST(DateTest, KnownDayNumbers) {
  EXPECT_EQ(Date::FromCivil(1970, 1, 2)->day_number(), 1);
  EXPECT_EQ(Date::FromCivil(1969, 12, 31)->day_number(), -1);
  EXPECT_EQ(Date::FromCivil(2000, 3, 1)->day_number(), 11017);
  EXPECT_EQ(Date::FromCivil(2009, 3, 15)->day_number(), 14318);
}

TEST(DateTest, CivilRoundTripAcrossYears) {
  for (int year : {1900, 1970, 1999, 2000, 2008, 2009, 2100}) {
    for (int month : {1, 2, 3, 6, 12}) {
      for (int day : {1, 15, 28}) {
        const Result<Date> date = Date::FromCivil(year, month, day);
        ASSERT_TRUE(date.ok());
        EXPECT_EQ(date->year(), year);
        EXPECT_EQ(date->month(), month);
        EXPECT_EQ(date->day(), day);
      }
    }
  }
}

TEST(DateTest, DayNumberRoundTrip) {
  for (int64_t day = -1000000; day <= 1000000; day += 99991) {
    const Date date = Date::FromDayNumber(day);
    EXPECT_EQ(date.day_number(), day);
    const Result<Date> again =
        Date::FromCivil(date.year(), date.month(), date.day());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->day_number(), day);
  }
}

TEST(DateTest, RejectsInvalidComponents) {
  EXPECT_FALSE(Date::FromCivil(2009, 0, 1).ok());
  EXPECT_FALSE(Date::FromCivil(2009, 13, 1).ok());
  EXPECT_FALSE(Date::FromCivil(2009, 2, 29).ok());  // 2009 not a leap year.
  EXPECT_TRUE(Date::FromCivil(2008, 2, 29).ok());   // 2008 is.
  EXPECT_FALSE(Date::FromCivil(2009, 4, 31).ok());
  EXPECT_FALSE(Date::FromCivil(2009, 1, 0).ok());
  EXPECT_FALSE(Date::FromCivil(10000, 1, 1).ok());
  EXPECT_FALSE(Date::FromCivil(-10000, 1, 1).ok());
}

TEST(DateTest, LeapYearRules) {
  EXPECT_TRUE(Date::IsLeapYear(2000));   // Divisible by 400.
  EXPECT_FALSE(Date::IsLeapYear(1900));  // Divisible by 100 only.
  EXPECT_TRUE(Date::IsLeapYear(2004));
  EXPECT_FALSE(Date::IsLeapYear(2009));
}

TEST(DateTest, DaysInMonth) {
  EXPECT_EQ(Date::DaysInMonth(2009, 1), 31);
  EXPECT_EQ(Date::DaysInMonth(2009, 2), 28);
  EXPECT_EQ(Date::DaysInMonth(2008, 2), 29);
  EXPECT_EQ(Date::DaysInMonth(2009, 4), 30);
  EXPECT_EQ(Date::DaysInMonth(2009, 0), 0);
  EXPECT_EQ(Date::DaysInMonth(2009, 13), 0);
}

TEST(DateTest, ParsesIsoFormat) {
  const Result<Date> date = Date::Parse("2009-03-15");
  ASSERT_TRUE(date.ok());
  EXPECT_EQ(date->year(), 2009);
  EXPECT_EQ(date->month(), 3);
  EXPECT_EQ(date->day(), 15);
}

TEST(DateTest, ParsesPaperSlashFormat) {
  // The paper writes validity periods like [15/03/09, 25/03/09].
  const Result<Date> date = Date::Parse("15/03/09");
  ASSERT_TRUE(date.ok());
  EXPECT_EQ(date->year(), 2009);
  EXPECT_EQ(date->month(), 3);
  EXPECT_EQ(date->day(), 15);
}

TEST(DateTest, SlashFormatCenturyWindow) {
  EXPECT_EQ(Date::Parse("01/01/68")->year(), 2068);
  EXPECT_EQ(Date::Parse("01/01/69")->year(), 1969);
  EXPECT_EQ(Date::Parse("01/01/99")->year(), 1999);
  EXPECT_EQ(Date::Parse("01/01/00")->year(), 2000);
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Date::Parse("").ok());
  EXPECT_FALSE(Date::Parse("2009/03/15").ok());
  EXPECT_FALSE(Date::Parse("2009-3-15").ok());
  EXPECT_FALSE(Date::Parse("aaaa-bb-cc").ok());
  EXPECT_FALSE(Date::Parse("2009-13-01").ok());
  EXPECT_FALSE(Date::Parse("32/01/09").ok());
  EXPECT_FALSE(Date::Parse("2009-03-15X").ok());
}

TEST(DateTest, ToStringIsIso) {
  EXPECT_EQ(Date::FromCivil(2009, 3, 5)->ToString(), "2009-03-05");
  EXPECT_EQ(Date::FromCivil(1970, 1, 1)->ToString(), "1970-01-01");
}

TEST(DateTest, ParseToStringRoundTrip) {
  for (const char* text : {"2009-03-10", "1999-12-31", "2020-02-29"}) {
    const Result<Date> date = Date::Parse(text);
    ASSERT_TRUE(date.ok());
    EXPECT_EQ(date->ToString(), text);
  }
}

TEST(DateTest, ArithmeticAndComparison) {
  const Date a = *Date::FromCivil(2009, 3, 10);
  const Date b = *Date::FromCivil(2009, 3, 20);
  EXPECT_EQ(a.DaysUntil(b), 10);
  EXPECT_EQ(b.DaysUntil(a), -10);
  EXPECT_EQ(a.AddDays(10), b);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, a);
  EXPECT_LE(a, a);
}

TEST(DateTest, AddDaysCrossesMonthAndYearBoundaries) {
  EXPECT_EQ(Date::FromCivil(2009, 3, 31)->AddDays(1).ToString(),
            "2009-04-01");
  EXPECT_EQ(Date::FromCivil(2009, 12, 31)->AddDays(1).ToString(),
            "2010-01-01");
  EXPECT_EQ(Date::FromCivil(2008, 2, 28)->AddDays(1).ToString(),
            "2008-02-29");
  EXPECT_EQ(Date::FromCivil(2009, 1, 1)->AddDays(-1).ToString(),
            "2008-12-31");
}

}  // namespace
}  // namespace geolic
