#include "util/json_writer.h"

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(JsonWriterTest, EmptyObjectAndArray) {
  {
    JsonWriter json;
    json.BeginObject();
    json.EndObject();
    EXPECT_EQ(std::move(json).Take(), "{}");
  }
  {
    JsonWriter json;
    json.BeginArray();
    json.EndArray();
    EXPECT_EQ(std::move(json).Take(), "[]");
  }
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("name", std::string_view("geolic"));
  json.KeyValue("count", int64_t{-5});
  json.KeyValue("big", uint64_t{18446744073709551615ULL});
  json.KeyValue("ratio", 0.5);
  json.KeyValue("ok", true);
  json.Key("nothing");
  json.Null();
  json.EndObject();
  EXPECT_EQ(std::move(json).Take(),
            "{\"name\":\"geolic\",\"count\":-5,"
            "\"big\":18446744073709551615,\"ratio\":0.5,\"ok\":true,"
            "\"nothing\":null}");
}

// A string literal must emit as a JSON string, not ride the const char* →
// bool standard conversion into the Bool overload.
TEST(JsonWriterTest, KeyValueStringLiteralStaysAString) {
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("bench", "ablation_flat_tree");
  json.EndObject();
  EXPECT_EQ(std::move(json).Take(), "{\"bench\":\"ablation_flat_tree\"}");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter json;
  json.BeginObject();
  json.Key("rows");
  json.BeginArray();
  json.BeginArray();
  json.Int(1);
  json.Int(2);
  json.EndArray();
  json.BeginObject();
  json.KeyValue("x", int64_t{3});
  json.EndObject();
  json.EndArray();
  json.EndObject();
  EXPECT_EQ(std::move(json).Take(), "{\"rows\":[[1,2],{\"x\":3}]}");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonWriter::Escape("line\nbreak\ttab"),
            "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonWriter::Escape("плэй"), "плэй");  // UTF-8 passes through.
}

TEST(JsonWriterTest, StringValuesEscaped) {
  JsonWriter json;
  json.BeginArray();
  json.String("say \"hi\"");
  json.EndArray();
  EXPECT_EQ(std::move(json).Take(), "[\"say \\\"hi\\\"\"]");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Double(1.0 / 0.0);
  json.Double(0.0 / 0.0);
  json.Double(2.5);
  json.EndArray();
  EXPECT_EQ(std::move(json).Take(), "[null,null,2.5]");
}

TEST(JsonWriterTest, TopLevelScalar) {
  JsonWriter json;
  json.Int(42);
  EXPECT_EQ(std::move(json).Take(), "42");
}

}  // namespace
}  // namespace geolic
