#ifndef GEOLIC_TESTS_TEST_UTIL_H_
#define GEOLIC_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "geometry/hyper_rect.h"
#include "licensing/constraint_schema.h"
#include "licensing/license.h"
#include "licensing/license_catalog.h"
#include "util/check.h"
#include "util/license_set.h"
#include "util/random.h"

namespace geolic::testing {

// Shorthand for a single-word LicenseSet literal: Mask(0b101) == {L1, L3}.
inline LicenseSet Mask(uint64_t word) { return LicenseSet::FromWord(word); }

// Seed for randomized tests: `default_seed` unless the GEOLIC_TEST_SEED
// environment variable overrides it (parsed with base auto-detection, so
// both 123 and 0x7b work). Always logs the seed in effect, so any failure
// report carries the line needed to reproduce it:
//   GEOLIC_TEST_SEED=<seed> ctest -R <test> --output-on-failure
inline uint64_t TestSeed(uint64_t default_seed) {
  uint64_t seed = default_seed;
  const char* env = std::getenv("GEOLIC_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 0);
    if (end != env && *end == '\0') {
      seed = static_cast<uint64_t>(parsed);
    } else {
      std::fprintf(stderr,
                   "[ seed ] ignoring unparseable GEOLIC_TEST_SEED=\"%s\"\n",
                   env);
    }
  }
  std::fprintf(stderr, "[ seed ] using seed %llu (override: GEOLIC_TEST_SEED)\n",
               static_cast<unsigned long long>(seed));
  return seed;
}

// Schema with `dims` integer interval dimensions named C1..Cdims.
inline ConstraintSchema IntervalSchema(int dims) {
  ConstraintSchema schema;
  for (int d = 0; d < dims; ++d) {
    GEOLIC_CHECK(
        schema.AddIntervalDimension("C" + std::to_string(d + 1)).ok());
  }
  return schema;
}

// Hyper-rectangle from interval endpoint pairs: {{0,10},{5,7}} → two dims.
inline HyperRect Rect(
    const std::vector<std::pair<int64_t, int64_t>>& intervals) {
  std::vector<ConstraintRange> dims;
  dims.reserve(intervals.size());
  for (const auto& [lo, hi] : intervals) {
    dims.push_back(ConstraintRange(Interval(lo, hi)));
  }
  return HyperRect(std::move(dims));
}

// Redistribution license over `schema` (interval dims) with the given
// ranges and aggregate count.
inline License MakeRedistribution(
    const ConstraintSchema& schema, const std::string& id,
    const std::vector<std::pair<int64_t, int64_t>>& intervals,
    int64_t aggregate) {
  LicenseBuilder builder(&schema);
  builder.SetId(id)
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(aggregate);
  for (size_t d = 0; d < intervals.size(); ++d) {
    builder.SetInterval("C" + std::to_string(d + 1), intervals[d].first,
                        intervals[d].second);
  }
  const Result<License> license = builder.Build();
  GEOLIC_CHECK(license.ok());
  return *license;
}

// Usage license, same shape.
inline License MakeUsage(
    const ConstraintSchema& schema, const std::string& id,
    const std::vector<std::pair<int64_t, int64_t>>& intervals,
    int64_t count) {
  LicenseBuilder builder(&schema);
  builder.SetId(id)
      .SetContentKey("K")
      .SetType(LicenseType::kUsage)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(count);
  for (size_t d = 0; d < intervals.size(); ++d) {
    builder.SetInterval("C" + std::to_string(d + 1), intervals[d].first,
                        intervals[d].second);
  }
  const Result<License> license = builder.Build();
  GEOLIC_CHECK(license.ok());
  return *license;
}

// Random hyper-rectangle with `dims` interval dimensions inside
// [0, domain).
inline HyperRect RandomRect(Rng* rng, int dims, int64_t domain) {
  std::vector<ConstraintRange> ranges;
  ranges.reserve(static_cast<size_t>(dims));
  for (int d = 0; d < dims; ++d) {
    const int64_t lo = rng->UniformInt(0, domain - 1);
    const int64_t hi = rng->UniformInt(lo, domain - 1);
    ranges.push_back(ConstraintRange(Interval(lo, hi)));
  }
  return HyperRect(std::move(ranges));
}

}  // namespace geolic::testing

#endif  // GEOLIC_TESTS_TEST_UTIL_H_
