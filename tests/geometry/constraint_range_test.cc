#include "geometry/constraint_range.h"

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(ConstraintRangeTest, DefaultIsEmptyInterval) {
  ConstraintRange range;
  EXPECT_TRUE(range.is_interval());
  EXPECT_TRUE(range.empty());
}

TEST(ConstraintRangeTest, IntervalKind) {
  const ConstraintRange range{Interval(2, 8)};
  EXPECT_TRUE(range.is_interval());
  EXPECT_FALSE(range.is_categories());
  EXPECT_FALSE(range.empty());
  EXPECT_EQ(range.interval(), Interval(2, 8));
}

TEST(ConstraintRangeTest, CategoricalKind) {
  const ConstraintRange range{CategorySet(0b11)};
  EXPECT_TRUE(range.is_categories());
  EXPECT_FALSE(range.empty());
  EXPECT_EQ(range.categories().mask(), 0b11u);
  EXPECT_TRUE(ConstraintRange(CategorySet::Empty()).empty());
}

TEST(ConstraintRangeTest, IntervalContainsAndOverlaps) {
  const ConstraintRange outer{Interval(0, 10)};
  const ConstraintRange inner{Interval(3, 5)};
  const ConstraintRange disjoint{Interval(11, 20)};
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
  EXPECT_TRUE(outer.Overlaps(inner));
  EXPECT_FALSE(outer.Overlaps(disjoint));
}

TEST(ConstraintRangeTest, CategoricalContainsAndOverlaps) {
  const ConstraintRange big{CategorySet(0b111)};
  const ConstraintRange small{CategorySet(0b010)};
  const ConstraintRange other{CategorySet(0b1000)};
  EXPECT_TRUE(big.Contains(small));
  EXPECT_TRUE(big.Overlaps(small));
  EXPECT_FALSE(big.Overlaps(other));
}

TEST(ConstraintRangeTest, MixedKindsNeverRelate) {
  const ConstraintRange interval{Interval(0, 63)};
  const ConstraintRange categories{CategorySet(0b1)};
  EXPECT_FALSE(interval.Contains(categories));
  EXPECT_FALSE(categories.Contains(interval));
  EXPECT_FALSE(interval.Overlaps(categories));
  EXPECT_TRUE(interval.Intersect(categories).empty());
}

TEST(ConstraintRangeTest, IntersectMatchesKind) {
  const ConstraintRange a{Interval(0, 5)};
  const ConstraintRange b{Interval(3, 9)};
  EXPECT_EQ(a.Intersect(b).interval(), Interval(3, 5));

  const ConstraintRange c{CategorySet(0b110)};
  const ConstraintRange d{CategorySet(0b011)};
  EXPECT_EQ(c.Intersect(d).categories().mask(), 0b010u);
}

TEST(ConstraintRangeTest, BoundingIntervalForIntervalIsIdentity) {
  const ConstraintRange range{Interval(-3, 12)};
  EXPECT_EQ(range.BoundingInterval(), Interval(-3, 12));
}

TEST(ConstraintRangeTest, BoundingIntervalForCategoriesSpansBits) {
  // Bits 1 and 5 set → bounding interval [1, 5].
  const ConstraintRange range{CategorySet(0b100010)};
  EXPECT_EQ(range.BoundingInterval(), Interval(1, 5));
  EXPECT_TRUE(
      ConstraintRange(CategorySet::Empty()).BoundingInterval().empty());
}

TEST(ConstraintRangeTest, BoundingIntervalIsOverApproximation) {
  // {bit0, bit5} and {bit2} do not overlap as sets, but their bounding
  // intervals [0,5] and [2,2] do — the R-tree must treat its answers as
  // candidates only.
  const ConstraintRange sparse{CategorySet(0b100001)};
  const ConstraintRange middle{CategorySet(0b000100)};
  EXPECT_FALSE(sparse.Overlaps(middle));
  EXPECT_TRUE(sparse.BoundingInterval().Overlaps(middle.BoundingInterval()));
}

TEST(ConstraintRangeTest, ToString) {
  EXPECT_EQ(ConstraintRange(Interval(1, 2)).ToString(), "[1, 2]");
  EXPECT_EQ(ConstraintRange(CategorySet(0x5)).ToString(), "<cats:0x5>");
}

TEST(ConstraintRangeTest, Equality) {
  EXPECT_EQ(ConstraintRange(Interval(1, 2)), ConstraintRange(Interval(1, 2)));
  EXPECT_FALSE(ConstraintRange(Interval(1, 2)) ==
               ConstraintRange(Interval(1, 3)));
  EXPECT_FALSE(ConstraintRange(Interval(0, 0)) ==
               ConstraintRange(CategorySet(0b1)));
}

}  // namespace
}  // namespace geolic
