#include "geometry/category_set.h"

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(CategorySetTest, EmptySet) {
  CategorySet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0);
}

TEST(CategorySetTest, SetAlgebra) {
  const CategorySet a(0b1010);
  const CategorySet b(0b0110);
  EXPECT_EQ(a.Intersect(b).mask(), 0b0010u);
  EXPECT_EQ(a.Union(b).mask(), 0b1110u);
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_FALSE(a.Contains(b));
  EXPECT_TRUE(a.Union(b).Contains(a));
  EXPECT_TRUE(a.Contains(CategorySet::Empty()));
  EXPECT_FALSE(a.Overlaps(CategorySet::Empty()));
}

TEST(CategoryUniverseTest, DefineAndResolve) {
  CategoryUniverse universe;
  ASSERT_TRUE(universe.Define("Asia").ok());
  ASSERT_TRUE(universe.Define("Europe").ok());
  EXPECT_EQ(universe.size(), 2);
  EXPECT_TRUE(universe.Has("Asia"));
  EXPECT_FALSE(universe.Has("America"));

  const Result<CategorySet> asia = universe.Resolve("Asia");
  ASSERT_TRUE(asia.ok());
  EXPECT_EQ(asia->size(), 1);
  EXPECT_FALSE(universe.Resolve("Mars").ok());
}

TEST(CategoryUniverseTest, RejectsDuplicatesAndEmptyNames) {
  CategoryUniverse universe;
  ASSERT_TRUE(universe.Define("Asia").ok());
  EXPECT_EQ(universe.Define("Asia").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(universe.Define("").code(), StatusCode::kInvalidArgument);
}

TEST(CategoryUniverseTest, CapacityIs64) {
  CategoryUniverse universe;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(universe.Define("cat" + std::to_string(i)).ok());
  }
  EXPECT_EQ(universe.Define("overflow").code(),
            StatusCode::kCapacityExceeded);
}

TEST(CategoryUniverseTest, HierarchyFoldsChildrenIntoParent) {
  CategoryUniverse universe;
  ASSERT_TRUE(universe.Define("Asia").ok());
  ASSERT_TRUE(universe.DefineUnder("India", "Asia").ok());
  ASSERT_TRUE(universe.DefineUnder("Japan", "Asia").ok());

  const CategorySet asia = *universe.Resolve("Asia");
  const CategorySet india = *universe.Resolve("India");
  const CategorySet japan = *universe.Resolve("Japan");
  // The paper's Example 1 relies on exactly this: R=[India] must count as
  // inside R=[Asia].
  EXPECT_TRUE(asia.Contains(india));
  EXPECT_TRUE(asia.Contains(japan));
  EXPECT_FALSE(india.Contains(asia));
  EXPECT_FALSE(india.Overlaps(japan));
  EXPECT_TRUE(asia.Overlaps(india));
}

TEST(CategoryUniverseTest, DeepHierarchyPropagates) {
  CategoryUniverse universe;
  ASSERT_TRUE(universe.Define("World").ok());
  ASSERT_TRUE(universe.DefineUnder("Asia", "World").ok());
  ASSERT_TRUE(universe.DefineUnder("India", "Asia").ok());
  ASSERT_TRUE(universe.DefineUnder("Mumbai", "India").ok());
  EXPECT_TRUE(universe.Resolve("World")->Contains(*universe.Resolve("Mumbai")));
  EXPECT_TRUE(universe.Resolve("Asia")->Contains(*universe.Resolve("Mumbai")));
  EXPECT_TRUE(universe.Resolve("India")->Contains(*universe.Resolve("Mumbai")));
}

TEST(CategoryUniverseTest, DefineUnderUnknownParentFails) {
  CategoryUniverse universe;
  EXPECT_EQ(universe.DefineUnder("India", "Asia").code(),
            StatusCode::kNotFound);
}

TEST(CategoryUniverseTest, ResolveAllUnions) {
  CategoryUniverse universe;
  ASSERT_TRUE(universe.Define("Asia").ok());
  ASSERT_TRUE(universe.Define("Europe").ok());
  ASSERT_TRUE(universe.DefineUnder("India", "Asia").ok());
  const Result<CategorySet> both = universe.ResolveAll({"Asia", "Europe"});
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE(both->Contains(*universe.Resolve("India")));
  EXPECT_TRUE(both->Contains(*universe.Resolve("Europe")));
  EXPECT_FALSE(universe.ResolveAll({"Asia", "Atlantis"}).ok());
}

TEST(CategoryUniverseTest, AllCoversEverything) {
  CategoryUniverse universe;
  ASSERT_TRUE(universe.Define("A").ok());
  ASSERT_TRUE(universe.DefineUnder("B", "A").ok());
  ASSERT_TRUE(universe.Define("C").ok());
  const CategorySet all = universe.All();
  EXPECT_EQ(all.size(), 3);
  EXPECT_TRUE(all.Contains(*universe.Resolve("A")));
  EXPECT_TRUE(all.Contains(*universe.Resolve("C")));
}

TEST(CategoryUniverseTest, ToStringPrefersBroadCategories) {
  CategoryUniverse universe;
  ASSERT_TRUE(universe.Define("Asia").ok());
  ASSERT_TRUE(universe.Define("Europe").ok());
  ASSERT_TRUE(universe.DefineUnder("India", "Asia").ok());
  ASSERT_TRUE(universe.DefineUnder("Japan", "Asia").ok());

  EXPECT_EQ(universe.ToString(*universe.Resolve("Asia")), "{Asia}");
  EXPECT_EQ(universe.ToString(*universe.Resolve("India")), "{India}");
  EXPECT_EQ(universe.ToString(universe.ResolveAll({"Asia", "Europe"}).value()),
            "{Asia, Europe}");
  EXPECT_EQ(universe.ToString(CategorySet::Empty()), "{}");
}

TEST(CategoryUniverseTest, ToStringFallsBackToBitNames) {
  CategoryUniverse universe;
  ASSERT_TRUE(universe.Define("A").ok());
  // Bit 7 was never defined in this universe.
  EXPECT_EQ(universe.ToString(CategorySet(0b10000000)), "{#7}");
}

TEST(CategoryUniverseTest, WorldRegionsPreset) {
  const CategoryUniverse world = CategoryUniverse::WorldRegions();
  EXPECT_TRUE(world.Has("Asia"));
  EXPECT_TRUE(world.Has("India"));
  EXPECT_TRUE(world.Has("USA"));
  EXPECT_TRUE(world.Resolve("Asia")->Contains(*world.Resolve("India")));
  EXPECT_TRUE(world.Resolve("America")->Contains(*world.Resolve("USA")));
  EXPECT_FALSE(world.Resolve("Asia")->Overlaps(*world.Resolve("Europe")));
}

}  // namespace
}  // namespace geolic
