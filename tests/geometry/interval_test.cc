#include "geometry/interval.h"

#include <limits>

#include <gtest/gtest.h>

#include "util/random.h"

namespace geolic {
namespace {

TEST(IntervalTest, DefaultIsEmpty) {
  Interval interval;
  EXPECT_TRUE(interval.empty());
  EXPECT_EQ(interval.Length(), 0);
}

TEST(IntervalTest, ReversedEndpointsNormaliseToEmpty) {
  EXPECT_TRUE(Interval(5, 3).empty());
  EXPECT_EQ(Interval(5, 3), Interval::Empty());
}

TEST(IntervalTest, PointInterval) {
  const Interval point = Interval::Point(7);
  EXPECT_FALSE(point.empty());
  EXPECT_EQ(point.lo(), 7);
  EXPECT_EQ(point.hi(), 7);
  EXPECT_EQ(point.Length(), 1);
}

TEST(IntervalTest, LengthIsInclusive) {
  EXPECT_EQ(Interval(3, 7).Length(), 5);
  EXPECT_EQ(Interval(-2, 2).Length(), 5);
}

TEST(IntervalTest, LengthSaturates) {
  const Interval huge(std::numeric_limits<int64_t>::min(),
                      std::numeric_limits<int64_t>::max());
  EXPECT_EQ(huge.Length(), std::numeric_limits<int64_t>::max());
}

TEST(IntervalTest, ContainsValue) {
  const Interval interval(3, 7);
  EXPECT_TRUE(interval.Contains(3));
  EXPECT_TRUE(interval.Contains(5));
  EXPECT_TRUE(interval.Contains(7));
  EXPECT_FALSE(interval.Contains(2));
  EXPECT_FALSE(interval.Contains(8));
  EXPECT_FALSE(Interval::Empty().Contains(0));
}

TEST(IntervalTest, ContainsInterval) {
  const Interval outer(0, 10);
  EXPECT_TRUE(outer.Contains(Interval(0, 10)));
  EXPECT_TRUE(outer.Contains(Interval(3, 7)));
  EXPECT_TRUE(outer.Contains(Interval(0, 0)));
  EXPECT_FALSE(outer.Contains(Interval(-1, 5)));
  EXPECT_FALSE(outer.Contains(Interval(5, 11)));
  // The empty interval is inside everything, including another empty.
  EXPECT_TRUE(outer.Contains(Interval::Empty()));
  EXPECT_TRUE(Interval::Empty().Contains(Interval::Empty()));
  EXPECT_FALSE(Interval::Empty().Contains(Interval(1, 2)));
}

TEST(IntervalTest, OverlapsIsSymmetricAndTouchCounts) {
  const Interval a(0, 5);
  const Interval b(5, 9);
  const Interval c(6, 9);
  EXPECT_TRUE(a.Overlaps(b));  // Closed intervals: sharing 5 overlaps.
  EXPECT_TRUE(b.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(c));
  EXPECT_FALSE(c.Overlaps(a));
  EXPECT_FALSE(a.Overlaps(Interval::Empty()));
  EXPECT_FALSE(Interval::Empty().Overlaps(Interval::Empty()));
}

TEST(IntervalTest, IntersectBasics) {
  EXPECT_EQ(Interval(0, 5).Intersect(Interval(3, 9)), Interval(3, 5));
  EXPECT_EQ(Interval(0, 5).Intersect(Interval(5, 9)), Interval(5, 5));
  EXPECT_TRUE(Interval(0, 4).Intersect(Interval(5, 9)).empty());
  EXPECT_TRUE(Interval(0, 4).Intersect(Interval::Empty()).empty());
}

TEST(IntervalTest, HullBasics) {
  EXPECT_EQ(Interval(0, 2).Hull(Interval(5, 9)), Interval(0, 9));
  EXPECT_EQ(Interval(0, 9).Hull(Interval(3, 4)), Interval(0, 9));
  EXPECT_EQ(Interval::Empty().Hull(Interval(1, 2)), Interval(1, 2));
  EXPECT_EQ(Interval(1, 2).Hull(Interval::Empty()), Interval(1, 2));
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ(Interval(3, 7).ToString(), "[3, 7]");
  EXPECT_EQ(Interval::Empty().ToString(), "[]");
}

TEST(IntervalTest, EqualityTreatsAllEmptyAsEqual) {
  EXPECT_EQ(Interval(5, 3), Interval(9, 1));
  EXPECT_EQ(Interval(3, 5), Interval(3, 5));
  EXPECT_FALSE(Interval(3, 5) == Interval(3, 6));
}

// Property: Overlaps(a, b) ⇔ Intersect(a, b) non-empty; Contains(a, b) ⇒
// Intersect(a, b) == b. Randomised over many interval pairs.
TEST(IntervalPropertyTest, OverlapIntersectContainsAgree) {
  Rng rng(404);
  for (int trial = 0; trial < 5000; ++trial) {
    const int64_t a_lo = rng.UniformInt(-50, 50);
    const int64_t a_hi = rng.UniformInt(-50, 50);
    const int64_t b_lo = rng.UniformInt(-50, 50);
    const int64_t b_hi = rng.UniformInt(-50, 50);
    const Interval a(a_lo, a_hi);
    const Interval b(b_lo, b_hi);
    const Interval meet = a.Intersect(b);
    EXPECT_EQ(a.Overlaps(b), !meet.empty());
    EXPECT_EQ(a.Overlaps(b), b.Overlaps(a));
    if (a.Contains(b) && !b.empty()) {
      EXPECT_EQ(meet, b);
    }
    if (!meet.empty()) {
      EXPECT_TRUE(a.Contains(meet));
      EXPECT_TRUE(b.Contains(meet));
    }
    // Hull contains both operands.
    const Interval hull = a.Hull(b);
    EXPECT_TRUE(hull.Contains(a));
    EXPECT_TRUE(hull.Contains(b));
  }
}

// Property: containment is transitive.
TEST(IntervalPropertyTest, ContainmentTransitive) {
  Rng rng(405);
  for (int trial = 0; trial < 2000; ++trial) {
    const Interval a(rng.UniformInt(-40, 0), rng.UniformInt(0, 40));
    const Interval b(a.lo() + rng.UniformInt(0, 5),
                     a.hi() - rng.UniformInt(0, 5));
    if (b.empty()) {
      continue;
    }
    const Interval c(b.lo() + rng.UniformInt(0, 3),
                     b.hi() - rng.UniformInt(0, 3));
    if (c.empty()) {
      continue;
    }
    ASSERT_TRUE(a.Contains(b));
    ASSERT_TRUE(b.Contains(c));
    EXPECT_TRUE(a.Contains(c));
  }
}

}  // namespace
}  // namespace geolic
