#include "geometry/rtree.h"

#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace geolic {
namespace {

IntervalBox Box(const std::vector<std::pair<int64_t, int64_t>>& intervals) {
  IntervalBox box;
  for (const auto& [lo, hi] : intervals) {
    box.dims.push_back(Interval(lo, hi));
  }
  return box;
}

TEST(IntervalBoxTest, ContainsAndOverlaps) {
  const IntervalBox outer = Box({{0, 10}, {0, 10}});
  EXPECT_TRUE(outer.Contains(Box({{2, 8}, {3, 7}})));
  EXPECT_FALSE(outer.Contains(Box({{2, 11}, {3, 7}})));
  EXPECT_TRUE(outer.Overlaps(Box({{10, 20}, {5, 15}})));
  EXPECT_FALSE(outer.Overlaps(Box({{11, 20}, {5, 15}})));
  EXPECT_FALSE(outer.Contains(Box({{1, 2}})));  // Dimensionality mismatch.
}

TEST(IntervalBoxTest, ExtendGrowsToCover) {
  IntervalBox box = Box({{0, 5}, {0, 5}});
  box.Extend(Box({{3, 9}, {-2, 1}}));
  EXPECT_EQ(box.dims[0], Interval(0, 9));
  EXPECT_EQ(box.dims[1], Interval(-2, 5));
}

TEST(IntervalBoxTest, ExtendIntoDefaultAdopts) {
  IntervalBox box;
  box.Extend(Box({{1, 2}, {3, 4}}));
  ASSERT_EQ(box.dims.size(), 2u);
  EXPECT_EQ(box.dims[0], Interval(1, 2));
}

TEST(IntervalBoxTest, Measure) {
  EXPECT_DOUBLE_EQ(Box({{0, 9}, {0, 4}}).Measure(), 50.0);
  EXPECT_DOUBLE_EQ(Box({{3, 3}}).Measure(), 1.0);
}

TEST(RtreeTest, EmptyTree) {
  Rtree tree(2);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.FindContaining(Box({{0, 1}, {0, 1}})).empty());
  EXPECT_TRUE(tree.FindOverlapping(Box({{0, 1}, {0, 1}})).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RtreeTest, InsertRejectsBadBoxes) {
  Rtree tree(2);
  EXPECT_FALSE(tree.Insert(Box({{0, 1}}), 1).ok());          // Wrong dims.
  EXPECT_FALSE(tree.Insert(Box({{0, 1}, {5, 3}}), 1).ok());  // Empty dim.
  EXPECT_EQ(tree.size(), 0u);
}

TEST(RtreeTest, SingleEntryLookup) {
  Rtree tree(2);
  ASSERT_TRUE(tree.Insert(Box({{0, 10}, {0, 10}}), 7).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  const std::vector<int64_t> hits = tree.FindContaining(Box({{2, 3}, {4, 5}}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7);
  EXPECT_TRUE(tree.FindContaining(Box({{2, 11}, {4, 5}})).empty());
}

TEST(RtreeTest, SplitsGrowHeightAndKeepInvariants) {
  Rtree tree(2, 4);
  for (int i = 0; i < 100; ++i) {
    const int64_t x = (i % 10) * 20;
    const int64_t y = (i / 10) * 20;
    ASSERT_TRUE(tree.Insert(Box({{x, x + 15}, {y, y + 15}}), i).ok());
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << i;
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.Height(), 1);
}

TEST(RtreeTest, FindOverlappingFindsTouchingBoxes) {
  Rtree tree(1, 4);
  ASSERT_TRUE(tree.Insert(Box({{0, 5}}), 1).ok());
  ASSERT_TRUE(tree.Insert(Box({{5, 9}}), 2).ok());
  ASSERT_TRUE(tree.Insert(Box({{10, 20}}), 3).ok());
  std::vector<int64_t> hits = tree.FindOverlapping(Box({{5, 5}}));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int64_t>{1, 2}));
}

TEST(RtreeTest, DuplicateBoxesAllRetrievable) {
  Rtree tree(2, 4);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tree.Insert(Box({{0, 10}, {0, 10}}), i).ok());
  }
  EXPECT_EQ(tree.FindContaining(Box({{1, 2}, {1, 2}})).size(), 20u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

// Property: R-tree results match a brute-force linear scan on random boxes,
// for both containment and overlap queries, across fanouts.
class RtreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RtreePropertyTest, MatchesLinearScan) {
  const int max_entries = GetParam();
  Rng rng(1234 + static_cast<uint64_t>(max_entries));
  constexpr int kDims = 3;
  constexpr int kBoxes = 400;
  Rtree tree(kDims, max_entries);
  std::vector<IntervalBox> boxes;
  for (int i = 0; i < kBoxes; ++i) {
    IntervalBox box;
    for (int d = 0; d < kDims; ++d) {
      const int64_t lo = rng.UniformInt(0, 99);
      const int64_t hi = rng.UniformInt(lo, 99);
      box.dims.push_back(Interval(lo, hi));
    }
    ASSERT_TRUE(tree.Insert(box, i).ok());
    boxes.push_back(box);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());

  for (int trial = 0; trial < 200; ++trial) {
    IntervalBox query;
    for (int d = 0; d < kDims; ++d) {
      const int64_t lo = rng.UniformInt(0, 99);
      const int64_t hi = rng.UniformInt(lo, std::min<int64_t>(lo + 30, 99));
      query.dims.push_back(Interval(lo, hi));
    }
    std::vector<int64_t> expected_containing;
    std::vector<int64_t> expected_overlapping;
    for (int i = 0; i < kBoxes; ++i) {
      if (boxes[static_cast<size_t>(i)].Contains(query)) {
        expected_containing.push_back(i);
      }
      if (boxes[static_cast<size_t>(i)].Overlaps(query)) {
        expected_overlapping.push_back(i);
      }
    }
    std::vector<int64_t> actual_containing = tree.FindContaining(query);
    std::vector<int64_t> actual_overlapping = tree.FindOverlapping(query);
    std::sort(actual_containing.begin(), actual_containing.end());
    std::sort(actual_overlapping.begin(), actual_overlapping.end());
    EXPECT_EQ(actual_containing, expected_containing);
    EXPECT_EQ(actual_overlapping, expected_overlapping);
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RtreePropertyTest,
                         ::testing::Values(4, 8, 16));

TEST(RtreeTest, SurvivesSaturatedMeasuresInHighDimensions) {
  // Regression: with 20 dimensions each saturating Interval::Length() at
  // INT64_MAX, an unsaturated Measure() overflows double to inf, the
  // enlargement/waste arithmetic turns into inf − inf = NaN, and the
  // quadratic split picks an out-of-range entry (ChooseLeaf keeps no best
  // child at all). Measure now clamps at DBL_MAX, so inserts split
  // deterministically and queries still work.
  constexpr int kDims = 20;
  constexpr int kBoxes = 40;
  const int64_t kLo = std::numeric_limits<int64_t>::min();
  const int64_t kHi = std::numeric_limits<int64_t>::max();
  Rtree tree(kDims, /*max_entries=*/4);
  for (int i = 0; i < kBoxes; ++i) {
    IntervalBox box;
    for (int d = 0; d < kDims; ++d) {
      // Every box nearly full-range — narrow one edge so boxes differ and
      // containment queries have structure.
      box.dims.push_back(d == i % kDims ? Interval(kLo + i, kHi - i)
                                        : Interval(kLo, kHi));
    }
    ASSERT_TRUE(tree.Insert(box, i).ok()) << "insert " << i;
  }
  ASSERT_EQ(tree.size(), static_cast<size_t>(kBoxes));
  ASSERT_TRUE(tree.CheckInvariants().ok());

  // A full-range query is contained only in the truly full-range boxes.
  IntervalBox query;
  for (int d = 0; d < kDims; ++d) {
    query.dims.push_back(Interval(kLo, kHi));
  }
  std::vector<int64_t> containing = tree.FindContaining(query);
  std::sort(containing.begin(), containing.end());
  EXPECT_EQ(containing, (std::vector<int64_t>{0}));
  EXPECT_EQ(tree.FindOverlapping(query).size(), static_cast<size_t>(kBoxes));
}

}  // namespace
}  // namespace geolic
