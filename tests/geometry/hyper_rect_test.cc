#include "geometry/hyper_rect.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace geolic {
namespace {

using testing::RandomRect;
using testing::Rect;

TEST(HyperRectTest, ZeroDimensionalRectIsNonEmptyUnit) {
  HyperRect rect;
  EXPECT_EQ(rect.dimensions(), 0);
  EXPECT_FALSE(rect.IsEmpty());
  EXPECT_TRUE(rect.Contains(HyperRect()));
  EXPECT_TRUE(rect.Overlaps(HyperRect()));
}

TEST(HyperRectTest, EmptyWhenAnyDimensionEmpty) {
  HyperRect rect = Rect({{0, 10}, {5, 3}});
  EXPECT_TRUE(rect.IsEmpty());
  EXPECT_FALSE(Rect({{0, 10}, {3, 5}}).IsEmpty());
}

TEST(HyperRectTest, ContainsRequiresAllDimensions) {
  const HyperRect outer = Rect({{0, 10}, {0, 10}});
  EXPECT_TRUE(outer.Contains(Rect({{2, 8}, {3, 7}})));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect({{2, 8}, {3, 11}})));
  EXPECT_FALSE(outer.Contains(Rect({{-1, 8}, {3, 7}})));
}

TEST(HyperRectTest, OverlapsRequiresAllDimensions) {
  // The paper's figure 2 point: rectangles overlap iff *every* constraint
  // dimension overlaps.
  const HyperRect a = Rect({{0, 10}, {0, 10}});
  EXPECT_TRUE(a.Overlaps(Rect({{5, 15}, {5, 15}})));
  EXPECT_FALSE(a.Overlaps(Rect({{5, 15}, {11, 15}})));  // Dim 2 disjoint.
  EXPECT_FALSE(a.Overlaps(Rect({{11, 15}, {5, 15}})));  // Dim 1 disjoint.
}

TEST(HyperRectTest, DimensionMismatchNeverRelates) {
  const HyperRect two = Rect({{0, 10}, {0, 10}});
  const HyperRect three = Rect({{0, 10}, {0, 10}, {0, 10}});
  EXPECT_FALSE(two.Contains(three));
  EXPECT_FALSE(three.Contains(two));
  EXPECT_FALSE(two.Overlaps(three));
  EXPECT_FALSE(two.Intersect(three).ok());
}

TEST(HyperRectTest, IntersectPerDimension) {
  const HyperRect a = Rect({{0, 10}, {0, 10}});
  const HyperRect b = Rect({{5, 15}, {-5, 5}});
  const Result<HyperRect> meet = a.Intersect(b);
  ASSERT_TRUE(meet.ok());
  EXPECT_EQ(meet->dim(0).interval(), Interval(5, 10));
  EXPECT_EQ(meet->dim(1).interval(), Interval(0, 5));
  EXPECT_FALSE(meet->IsEmpty());
}

TEST(HyperRectTest, IntersectDisjointIsEmpty) {
  const HyperRect a = Rect({{0, 4}, {0, 4}});
  const HyperRect b = Rect({{5, 9}, {0, 4}});
  const Result<HyperRect> meet = a.Intersect(b);
  ASSERT_TRUE(meet.ok());
  EXPECT_TRUE(meet->IsEmpty());
}

TEST(HyperRectTest, CommonRegionOfThree) {
  const std::vector<HyperRect> rects = {
      Rect({{0, 10}}), Rect({{5, 15}}), Rect({{8, 20}})};
  const Result<HyperRect> region = HyperRect::CommonRegion(rects);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->dim(0).interval(), Interval(8, 10));
}

TEST(HyperRectTest, CommonRegionEmptyWhenPairwiseOverlapButNoTriple) {
  // a∩b, b∩c, a∩c all non-empty, but a∩b∩c empty — the Theorem 1 situation
  // of licenses L1, L2, L3 in the paper's figure 2.
  const HyperRect a = Rect({{0, 10}, {0, 4}});
  const HyperRect b = Rect({{8, 20}, {0, 10}});
  const HyperRect c = Rect({{0, 10}, {6, 10}});
  ASSERT_TRUE(a.Overlaps(b));
  ASSERT_TRUE(b.Overlaps(c));
  ASSERT_FALSE(a.Overlaps(c));
  const Result<HyperRect> region = HyperRect::CommonRegion({a, b, c});
  ASSERT_TRUE(region.ok());
  EXPECT_TRUE(region->IsEmpty());
}

TEST(HyperRectTest, CommonRegionOfEmptyListFails) {
  EXPECT_FALSE(HyperRect::CommonRegion({}).ok());
}

TEST(HyperRectTest, BoundingBoxMixesKinds) {
  HyperRect rect;
  rect.AddDim(ConstraintRange(Interval(3, 9)));
  rect.AddDim(ConstraintRange(CategorySet(0b10010)));
  const std::vector<Interval> box = rect.BoundingBox();
  ASSERT_EQ(box.size(), 2u);
  EXPECT_EQ(box[0], Interval(3, 9));
  EXPECT_EQ(box[1], Interval(1, 4));
}

TEST(HyperRectTest, ToString) {
  EXPECT_EQ(Rect({{0, 1}, {2, 3}}).ToString(), "[0, 1] x [2, 3]");
}

// Property: containment implies overlap (for non-empty rects); overlap is
// symmetric; intersect is the greatest lower bound.
TEST(HyperRectPropertyTest, RandomisedAlgebra) {
  Rng rng(777);
  for (int trial = 0; trial < 3000; ++trial) {
    const HyperRect a = RandomRect(&rng, 3, 40);
    const HyperRect b = RandomRect(&rng, 3, 40);
    EXPECT_EQ(a.Overlaps(b), b.Overlaps(a));
    if (a.Contains(b)) {
      EXPECT_TRUE(a.Overlaps(b));
    }
    const Result<HyperRect> meet = a.Intersect(b);
    ASSERT_TRUE(meet.ok());
    EXPECT_EQ(a.Overlaps(b), !meet->IsEmpty());
    if (!meet->IsEmpty()) {
      EXPECT_TRUE(a.Contains(*meet));
      EXPECT_TRUE(b.Contains(*meet));
    }
  }
}

// Property: a rectangle contains any rectangle drawn inside it.
TEST(HyperRectPropertyTest, SubRectanglesAreContained) {
  Rng rng(778);
  for (int trial = 0; trial < 2000; ++trial) {
    const HyperRect outer = RandomRect(&rng, 4, 100);
    std::vector<ConstraintRange> dims;
    for (int d = 0; d < 4; ++d) {
      const Interval& range = outer.dim(d).interval();
      const int64_t lo = rng.UniformInt(range.lo(), range.hi());
      const int64_t hi = rng.UniformInt(lo, range.hi());
      dims.push_back(ConstraintRange(Interval(lo, hi)));
    }
    EXPECT_TRUE(outer.Contains(HyperRect(dims)));
  }
}

}  // namespace
}  // namespace geolic
