// Hyper-rectangles mixing all three dimension kinds (interval,
// multi-interval, categorical): the paper's geometric arguments only use
// per-dimension intersection algebra, so everything must compose.
#include <gtest/gtest.h>

#include "geometry/hyper_rect.h"
#include "util/random.h"

namespace geolic {
namespace {

HyperRect MixedRect(Interval time, std::vector<Interval> windows,
                    uint64_t regions) {
  HyperRect rect;
  rect.AddDim(ConstraintRange(time));
  rect.AddDim(
      ConstraintRange(MultiInterval::FromIntervals(std::move(windows))));
  rect.AddDim(ConstraintRange(CategorySet(regions)));
  return rect;
}

TEST(MixedDimensionsTest, ContainsRequiresEveryKind) {
  const HyperRect outer =
      MixedRect(Interval(0, 100), {Interval(0, 10), Interval(20, 30)},
                0b111);
  // Inside on all three dimensions.
  EXPECT_TRUE(outer.Contains(
      MixedRect(Interval(5, 50), {Interval(2, 8)}, 0b010)));
  // Fails the multi-interval dimension (spans the gap).
  EXPECT_FALSE(outer.Contains(
      MixedRect(Interval(5, 50), {Interval(8, 22)}, 0b010)));
  // Fails the categorical dimension.
  EXPECT_FALSE(outer.Contains(
      MixedRect(Interval(5, 50), {Interval(2, 8)}, 0b1000)));
  // Fails the plain interval dimension.
  EXPECT_FALSE(outer.Contains(
      MixedRect(Interval(-5, 50), {Interval(2, 8)}, 0b010)));
}

TEST(MixedDimensionsTest, OverlapRequiresEveryKind) {
  const HyperRect a =
      MixedRect(Interval(0, 100), {Interval(0, 10), Interval(20, 30)},
                0b011);
  EXPECT_TRUE(a.Overlaps(
      MixedRect(Interval(50, 150), {Interval(25, 40)}, 0b110)));
  // Multi-interval dimensions miss each other (gap vs gap-filler).
  EXPECT_FALSE(a.Overlaps(
      MixedRect(Interval(50, 150), {Interval(12, 18)}, 0b110)));
  // Categories disjoint.
  EXPECT_FALSE(a.Overlaps(
      MixedRect(Interval(50, 150), {Interval(25, 40)}, 0b100)));
}

TEST(MixedDimensionsTest, IntersectAndCommonRegion) {
  const HyperRect a =
      MixedRect(Interval(0, 100), {Interval(0, 10), Interval(20, 30)},
                0b011);
  const HyperRect b =
      MixedRect(Interval(50, 150), {Interval(5, 25)}, 0b001);
  const Result<HyperRect> meet = a.Intersect(b);
  ASSERT_TRUE(meet.ok());
  EXPECT_FALSE(meet->IsEmpty());
  EXPECT_EQ(meet->dim(0).interval(), Interval(50, 100));
  EXPECT_EQ(meet->dim(1).multi_interval().ToString(), "[5, 10]|[20, 25]");
  EXPECT_EQ(meet->dim(2).categories().mask(), 0b001u);

  const Result<HyperRect> region = HyperRect::CommonRegion({a, b, a});
  ASSERT_TRUE(region.ok());
  EXPECT_FALSE(region->IsEmpty());
}

TEST(MixedDimensionsTest, KindMismatchAcrossRectsNeverRelates) {
  // Same dimensionality, different kinds in the same slot.
  HyperRect ordered;
  ordered.AddDim(ConstraintRange(Interval(0, 63)));
  HyperRect categorical;
  categorical.AddDim(ConstraintRange(CategorySet(0b1)));
  EXPECT_FALSE(ordered.Contains(categorical));
  EXPECT_FALSE(ordered.Overlaps(categorical));
  const Result<HyperRect> meet = ordered.Intersect(categorical);
  ASSERT_TRUE(meet.ok());
  EXPECT_TRUE(meet->IsEmpty());
}

// Property: mixed-kind algebra matches a dense point-set model over a
// small domain (time ∈ [0,15], window ∈ [0,15], region bit ∈ [0,3]).
TEST(MixedDimensionsPropertyTest, MatchesDenseModel) {
  Rng rng(13131);
  auto random_rect = [&rng]() {
    const int64_t t_lo = rng.UniformInt(0, 15);
    std::vector<Interval> windows;
    for (int i = 0; i < 2; ++i) {
      const int64_t lo = rng.UniformInt(0, 15);
      windows.push_back(Interval(lo, rng.UniformInt(lo, 15)));
    }
    return MixedRect(Interval(t_lo, rng.UniformInt(t_lo, 15)), windows,
                     rng.Next() & 0xF);
  };
  // Enumerate all (t, w, r) points of the small domain.
  auto covers = [](const HyperRect& rect, int64_t t, int64_t w, int bit) {
    return rect.dim(0).interval().Contains(t) &&
           rect.dim(1).AsMultiInterval().Contains(w) &&
           ((rect.dim(2).categories().mask() >> bit) & 1) != 0;
  };
  for (int trial = 0; trial < 400; ++trial) {
    const HyperRect a = random_rect();
    const HyperRect b = random_rect();
    bool subset = true;
    bool overlap = false;
    bool b_empty = true;
    for (int64_t t = 0; t <= 15; ++t) {
      for (int64_t w = 0; w <= 15; ++w) {
        for (int bit = 0; bit < 4; ++bit) {
          const bool in_a = covers(a, t, w, bit);
          const bool in_b = covers(b, t, w, bit);
          if (in_b) {
            b_empty = false;
            if (!in_a) {
              subset = false;
            }
          }
          if (in_a && in_b) {
            overlap = true;
          }
        }
      }
    }
    EXPECT_EQ(a.Overlaps(b), overlap);
    if (!b_empty) {
      EXPECT_EQ(a.Contains(b), subset);
    }
    const Result<HyperRect> meet = a.Intersect(b);
    ASSERT_TRUE(meet.ok());
    EXPECT_EQ(!meet->IsEmpty(), overlap);
  }
}

}  // namespace
}  // namespace geolic
