#include "geometry/soa_rects.h"

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/hyper_rect.h"
#include "util/cpu_dispatch.h"
#include "util/license_set.h"
#include "util/random.h"

namespace geolic {
namespace {

constexpr int64_t kInt64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();

// Every kernel tier the host can actually execute (scalar always; the
// wider tiers only where cpuid says so).
std::vector<simd::Tier> AvailableTiers() {
  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  if (simd::TierAvailable(simd::Tier::kSse42)) {
    tiers.push_back(simd::Tier::kSse42);
  }
  if (simd::TierAvailable(simd::Tier::kAvx2)) {
    tiers.push_back(simd::Tier::kAvx2);
  }
  return tiers;
}

// Bound values skewed toward the saturation edges the PR-4 Guttman fix
// exercised: INT64 extremes and off-by-one neighbors show up often enough
// that the fail-closed sentinels and closed-interval comparisons get hit.
int64_t EdgyValue(Rng* rng) {
  switch (rng->UniformIndex(8)) {
    case 0:
      return kInt64Min;
    case 1:
      return kInt64Max;
    case 2:
      return kInt64Min + 1;
    case 3:
      return kInt64Max - 1;
    default:
      return rng->UniformInt(-100, 100);
  }
}

ConstraintRange RandomRange(Rng* rng) {
  switch (rng->UniformIndex(4)) {
    case 0: {  // Single interval (sometimes empty).
      if (rng->Bernoulli(0.1)) {
        return ConstraintRange(Interval::Empty());
      }
      int64_t a = EdgyValue(rng);
      int64_t b = EdgyValue(rng);
      if (a > b) {
        std::swap(a, b);
      }
      return ConstraintRange(Interval(a, b));
    }
    case 1: {  // Multi-interval union (1-3 pieces, may normalize to fewer).
      std::vector<Interval> pieces;
      const size_t count = 1 + rng->UniformIndex(3);
      for (size_t p = 0; p < count; ++p) {
        int64_t a = EdgyValue(rng);
        int64_t b = EdgyValue(rng);
        if (a > b) {
          std::swap(a, b);
        }
        pieces.emplace_back(a, b);
      }
      return ConstraintRange(MultiInterval::FromIntervals(std::move(pieces)));
    }
    case 2:  // Category set (sometimes empty).
      return ConstraintRange(
          CategorySet(rng->Bernoulli(0.15) ? 0 : rng->Next() & 0xFF));
    default: {  // Narrow interval: makes containment/overlap hits common.
      const int64_t lo = rng->UniformInt(-20, 20);
      return ConstraintRange(Interval(lo, lo + rng->UniformInt(0, 10)));
    }
  }
}

HyperRect RandomRect(Rng* rng, int dims) {
  HyperRect rect;
  for (int d = 0; d < dims; ++d) {
    rect.AddDim(RandomRange(rng));
  }
  return rect;
}

// 1k random (catalog, query) trials: every available tier's Containing /
// Overlapping must be bit-identical to the scalar HyperRect predicates.
TEST(SoaRectsTest, FuzzEquivalenceAcrossTiersMatchesHyperRect) {
  Rng rng(20260808);
  const std::vector<simd::Tier> tiers = AvailableTiers();
  ASSERT_FALSE(tiers.empty());
  for (int trial = 0; trial < 1000; ++trial) {
    const int dims = static_cast<int>(1 + rng.UniformIndex(20));
    const size_t n = 1 + rng.UniformIndex(70);  // Crosses the 64-bit word.
    std::vector<HyperRect> rects;
    rects.reserve(n);
    for (size_t j = 0; j < n; ++j) {
      // A sprinkle of wrong-dimensionality rects exercises the irregular
      // scalar-only path.
      const int rect_dims =
          rng.Bernoulli(0.05) ? dims + 1 : dims;
      rects.push_back(RandomRect(&rng, rect_dims));
    }
    const SoaRects soa = SoaRects::Build(rects);
    const HyperRect query = RandomRect(
        &rng, rng.Bernoulli(0.05) ? dims + 1 : dims);

    for (const simd::Tier tier : tiers) {
      uint64_t contain[kMaxLicenseWords];
      uint64_t overlap[kMaxLicenseWords];
      const simd::Kernels& kernels = simd::KernelsForTier(tier);
      soa.ContainingWithKernels(kernels, query, contain);
      soa.OverlappingWithKernels(kernels, query, overlap);
      for (size_t j = 0; j < n; ++j) {
        const bool got_contain = (contain[j / 64] >> (j % 64)) & 1;
        const bool got_overlap = (overlap[j / 64] >> (j % 64)) & 1;
        ASSERT_EQ(got_contain, rects[j].Contains(query))
            << "trial " << trial << " tier " << kernels.name << " rect " << j
            << " contains: rect=" << rects[j].ToString()
            << " query=" << query.ToString();
        ASSERT_EQ(got_overlap, rects[j].Overlaps(query))
            << "trial " << trial << " tier " << kernels.name << " rect " << j
            << " overlaps: rect=" << rects[j].ToString()
            << " query=" << query.ToString();
      }
      // Tail bits past n stay clear (callers hand the words to
      // LicenseSet::FromWords, which requires canonical padding).
      for (size_t j = n; j < SoaRects::WordsFor(n) * 64; ++j) {
        ASSERT_FALSE((contain[j / 64] >> (j % 64)) & 1);
        ASSERT_FALSE((overlap[j / 64] >> (j % 64)) & 1);
      }
    }
  }
}

TEST(SoaRectsTest, EmptyBuildMatchesEmptyCatalog) {
  const SoaRects soa = SoaRects::Build({});
  EXPECT_EQ(soa.size(), 0);
  uint64_t out[kMaxLicenseWords];
  HyperRect query;
  query.AddDim(ConstraintRange(Interval(0, 10)));
  soa.Containing(query, out);
  EXPECT_EQ(out[0], 0u);
  soa.Overlapping(query, out);
  EXPECT_EQ(out[0], 0u);
}

TEST(SoaRectsTest, MultiPieceCellsReCheckExactly) {
  // Catalog cell [0,10] ∪ [20,30]: the bounding interval [0,30] would
  // wrongly contain [12,15]; the exact re-check must clear it.
  std::vector<HyperRect> rects;
  HyperRect gap;
  gap.AddDim(ConstraintRange(
      MultiInterval::FromIntervals({Interval(0, 10), Interval(20, 30)})));
  rects.push_back(gap);
  const SoaRects soa = SoaRects::Build(rects);

  HyperRect inside_gap;
  inside_gap.AddDim(ConstraintRange(Interval(12, 15)));
  uint64_t out[kMaxLicenseWords];
  soa.Containing(inside_gap, out);
  EXPECT_EQ(out[0], 0u);
  // But the gap query still fails overlap, while [5,25] overlaps.
  soa.Overlapping(inside_gap, out);
  EXPECT_EQ(out[0], 0u);
  HyperRect spanning;
  spanning.AddDim(ConstraintRange(Interval(5, 25)));
  soa.Overlapping(spanning, out);
  EXPECT_EQ(out[0], 1u);
  soa.Containing(spanning, out);
  EXPECT_EQ(out[0], 0u);
  HyperRect in_piece;
  in_piece.AddDim(ConstraintRange(Interval(21, 29)));
  soa.Containing(in_piece, out);
  EXPECT_EQ(out[0], 1u);
}

}  // namespace
}  // namespace geolic
