#include "geometry/multi_interval.h"

#include <gtest/gtest.h>

#include "geometry/constraint_range.h"

#include "util/random.h"

namespace geolic {
namespace {

MultiInterval Of(const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  std::vector<Interval> pieces;
  for (const auto& [lo, hi] : pairs) {
    pieces.push_back(Interval(lo, hi));
  }
  return MultiInterval::FromIntervals(std::move(pieces));
}

TEST(MultiIntervalTest, DefaultIsEmpty) {
  MultiInterval multi;
  EXPECT_TRUE(multi.empty());
  EXPECT_EQ(multi.piece_count(), 0);
  EXPECT_EQ(multi.TotalLength(), 0);
  EXPECT_TRUE(multi.BoundingInterval().empty());
  EXPECT_EQ(multi.ToString(), "[]");
}

TEST(MultiIntervalTest, NormalisationDropsEmptiesAndSorts) {
  const MultiInterval multi = Of({{10, 20}, {5, 3}, {0, 2}});
  ASSERT_EQ(multi.piece_count(), 2);
  EXPECT_EQ(multi.pieces()[0], Interval(0, 2));
  EXPECT_EQ(multi.pieces()[1], Interval(10, 20));
}

TEST(MultiIntervalTest, NormalisationMergesOverlapping) {
  const MultiInterval multi = Of({{0, 5}, {3, 9}, {20, 30}});
  ASSERT_EQ(multi.piece_count(), 2);
  EXPECT_EQ(multi.pieces()[0], Interval(0, 9));
  EXPECT_EQ(multi.pieces()[1], Interval(20, 30));
}

TEST(MultiIntervalTest, NormalisationMergesIntegerAdjacent) {
  // [1,3] and [4,6] cover 1..6 without a gap over the integers.
  const MultiInterval multi = Of({{1, 3}, {4, 6}});
  ASSERT_EQ(multi.piece_count(), 1);
  EXPECT_EQ(multi.pieces()[0], Interval(1, 6));
  // [1,3] and [5,6] keep the gap at 4.
  EXPECT_EQ(Of({{1, 3}, {5, 6}}).piece_count(), 2);
}

TEST(MultiIntervalTest, TotalLengthSumsPieces) {
  EXPECT_EQ(Of({{0, 4}, {10, 11}}).TotalLength(), 7);
  EXPECT_EQ(MultiInterval::Of(Interval::Point(5)).TotalLength(), 1);
}

TEST(MultiIntervalTest, BoundingIntervalSpansAll) {
  EXPECT_EQ(Of({{0, 4}, {10, 11}}).BoundingInterval(), Interval(0, 11));
}

TEST(MultiIntervalTest, ContainsValueUsesGaps) {
  const MultiInterval multi = Of({{0, 4}, {10, 14}});
  EXPECT_TRUE(multi.Contains(0));
  EXPECT_TRUE(multi.Contains(4));
  EXPECT_FALSE(multi.Contains(5));
  EXPECT_FALSE(multi.Contains(9));
  EXPECT_TRUE(multi.Contains(12));
  EXPECT_FALSE(multi.Contains(15));
  EXPECT_FALSE(multi.Contains(-1));
}

TEST(MultiIntervalTest, ContainsMultiRespectsGaps) {
  const MultiInterval outer = Of({{0, 10}, {20, 30}});
  EXPECT_TRUE(outer.Contains(Of({{2, 8}})));
  EXPECT_TRUE(outer.Contains(Of({{2, 8}, {22, 25}})));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_TRUE(outer.Contains(MultiInterval()));  // Empty inside anything.
  // A piece spanning the gap is not contained.
  EXPECT_FALSE(outer.Contains(Of({{8, 22}})));
  EXPECT_FALSE(outer.Contains(Of({{2, 8}, {28, 35}})));
  EXPECT_FALSE(MultiInterval().Contains(Of({{1, 2}})));
}

TEST(MultiIntervalTest, OverlapsAcrossPieces) {
  const MultiInterval a = Of({{0, 4}, {10, 14}});
  EXPECT_TRUE(a.Overlaps(Of({{4, 6}})));
  EXPECT_TRUE(a.Overlaps(Of({{6, 10}})));
  EXPECT_FALSE(a.Overlaps(Of({{5, 9}})));
  EXPECT_FALSE(a.Overlaps(Of({{15, 20}})));
  EXPECT_FALSE(a.Overlaps(MultiInterval()));
}

TEST(MultiIntervalTest, IntersectProducesPiecewiseMeet) {
  const MultiInterval a = Of({{0, 10}, {20, 30}});
  const MultiInterval b = Of({{5, 25}});
  const MultiInterval meet = a.Intersect(b);
  ASSERT_EQ(meet.piece_count(), 2);
  EXPECT_EQ(meet.pieces()[0], Interval(5, 10));
  EXPECT_EQ(meet.pieces()[1], Interval(20, 25));
  EXPECT_TRUE(a.Intersect(Of({{11, 19}})).empty());
}

TEST(MultiIntervalTest, UnionMergesEverything) {
  const MultiInterval a = Of({{0, 4}, {10, 14}});
  const MultiInterval b = Of({{5, 9}, {20, 24}});
  const MultiInterval all = a.Union(b);
  // [0,4] ∪ [5,9] ∪ [10,14] collapse into [0,14] (integer adjacency).
  ASSERT_EQ(all.piece_count(), 2);
  EXPECT_EQ(all.pieces()[0], Interval(0, 14));
  EXPECT_EQ(all.pieces()[1], Interval(20, 24));
}

TEST(MultiIntervalTest, ToStringJoinsPieces) {
  EXPECT_EQ(Of({{1, 3}, {7, 9}}).ToString(), "[1, 3]|[7, 9]");
  EXPECT_EQ(Of({{1, 3}}).ToString(), "[1, 3]");
}

// Property: multi-interval algebra agrees with a dense membership bitmap
// over a small domain.
TEST(MultiIntervalPropertyTest, AgreesWithDenseSets) {
  Rng rng(90210);
  constexpr int kDomain = 60;
  auto random_multi = [&rng]() {
    std::vector<Interval> pieces;
    const int n = static_cast<int>(rng.UniformInt(0, 4));
    for (int i = 0; i < n; ++i) {
      const int64_t lo = rng.UniformInt(0, kDomain - 1);
      pieces.push_back(Interval(lo, rng.UniformInt(lo, kDomain - 1)));
    }
    return MultiInterval::FromIntervals(std::move(pieces));
  };
  auto to_bits = [](const MultiInterval& multi) {
    uint64_t bits = 0;
    for (int v = 0; v < kDomain; ++v) {
      if (multi.Contains(v)) {
        bits |= uint64_t{1} << v;
      }
    }
    return bits;
  };
  for (int trial = 0; trial < 3000; ++trial) {
    const MultiInterval a = random_multi();
    const MultiInterval b = random_multi();
    const uint64_t bits_a = to_bits(a);
    const uint64_t bits_b = to_bits(b);
    EXPECT_EQ(a.Contains(b), (bits_b & ~bits_a) == 0);
    EXPECT_EQ(a.Overlaps(b), (bits_a & bits_b) != 0);
    EXPECT_EQ(to_bits(a.Intersect(b)), bits_a & bits_b);
    EXPECT_EQ(to_bits(a.Union(b)), bits_a | bits_b);
    // Normalisation invariants: sorted, disjoint, non-adjacent pieces.
    int64_t previous_hi = INT64_MIN;
    for (const Interval& piece : a.pieces()) {
      EXPECT_FALSE(piece.empty());
      if (previous_hi != INT64_MIN) {
        EXPECT_GT(piece.lo(), previous_hi + 1);
      }
      previous_hi = piece.hi();
    }
  }
}

TEST(ConstraintRangeMultiTest, OrderedKindsInteroperate) {
  const ConstraintRange window{
      MultiInterval::FromIntervals({Interval(0, 10), Interval(20, 30)})};
  const ConstraintRange inside{Interval(2, 8)};
  const ConstraintRange spanning{Interval(8, 22)};
  EXPECT_TRUE(window.is_multi_interval());
  EXPECT_TRUE(window.is_ordered());
  EXPECT_TRUE(window.Contains(inside));
  EXPECT_FALSE(window.Contains(spanning));
  EXPECT_TRUE(window.Overlaps(spanning));
  EXPECT_FALSE(inside.Contains(window));
  // Intersection of interval with multi yields the piecewise meet.
  const ConstraintRange meet = window.Intersect(spanning);
  ASSERT_TRUE(meet.is_multi_interval());
  EXPECT_EQ(meet.multi_interval().ToString(), "[8, 10]|[20, 22]");
  // Categories never relate to ordered kinds.
  const ConstraintRange cats{CategorySet(0b1)};
  EXPECT_FALSE(window.Contains(cats));
  EXPECT_FALSE(window.Overlaps(cats));
  EXPECT_TRUE(window.Intersect(cats).empty());
}

TEST(ConstraintRangeMultiTest, BoundingIntervalCoversGaps) {
  const ConstraintRange window{
      MultiInterval::FromIntervals({Interval(5, 6), Interval(50, 60)})};
  EXPECT_EQ(window.BoundingInterval(), Interval(5, 60));
}

}  // namespace
}  // namespace geolic
