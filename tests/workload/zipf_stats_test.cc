// Statistical validation of the bounded Zipf(s) sampler behind the
// multi-tenant workload (workload/multi_tenant.h): the rejection-inversion
// sampler must actually produce Zipf-distributed ranks, since every
// catalog-layer claim about hit rates and resident fractions rides on the
// popularity head being the right size.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"
#include "workload/multi_tenant.h"

namespace geolic {
namespace {

std::vector<uint64_t> SampleCounts(const ZipfSampler& zipf, uint64_t draws,
                                   uint64_t seed) {
  std::vector<uint64_t> counts(zipf.n(), 0);
  Rng rng(seed);
  for (uint64_t i = 0; i < draws; ++i) {
    const uint64_t rank = zipf.Sample(&rng);
    EXPECT_LT(rank, zipf.n());
    ++counts[rank];
  }
  return counts;
}

TEST(ZipfStatsTest, HarmonicMatchesDirectSummation) {
  for (const double s : {0.8, 1.0, 1.1, 1.5}) {
    double direct = 0.0;
    for (uint64_t i = 1; i <= 100; ++i) {
      direct += std::pow(static_cast<double>(i), -s);
    }
    EXPECT_NEAR(ZipfSampler::Harmonic(100, s), direct, 1e-9) << "s=" << s;
  }
  EXPECT_NEAR(ZipfSampler::Harmonic(1, 2.0), 1.0, 1e-12);
}

TEST(ZipfStatsTest, PerRankMassMatchesClosedForm) {
  // Empirical P(rank = r) vs the exact (r+1)^{-s} / H_{n,s} for the head
  // ranks, where each expected count is large enough for a tight relative
  // tolerance.
  const double s = 1.1;
  const ZipfSampler zipf(1000, s);
  const uint64_t draws = 200000;
  const std::vector<uint64_t> counts =
      SampleCounts(zipf, draws, testing::TestSeed(20260808));
  const double h_n = ZipfSampler::Harmonic(zipf.n(), s);
  for (uint64_t r = 0; r < 20; ++r) {
    const double want =
        std::pow(static_cast<double>(r + 1), -s) / h_n;
    const double got =
        static_cast<double>(counts[r]) / static_cast<double>(draws);
    // ~5 sigma for a binomial with p = want (head ranks have p >= 2e-3, so
    // the absolute band stays narrow relative to p).
    const double sigma =
        std::sqrt(want * (1.0 - want) / static_cast<double>(draws));
    EXPECT_NEAR(got, want, 5.0 * sigma + 1e-4) << "rank " << r;
  }
}

TEST(ZipfStatsTest, TopKMassMatchesClosedForm) {
  // The popularity head: the top-k ranks' combined share must equal
  // H_{k,s} / H_{n,s}. This is exactly the quantity the catalog LRU's
  // hit-rate claims lean on.
  const double s = 1.1;
  const ZipfSampler zipf(100000, s);
  const uint64_t draws = 300000;
  const std::vector<uint64_t> counts =
      SampleCounts(zipf, draws, testing::TestSeed(20260809));
  const double h_n = ZipfSampler::Harmonic(zipf.n(), s);
  for (const uint64_t k : {10u, 100u, 1000u}) {
    uint64_t head = 0;
    for (uint64_t r = 0; r < k; ++r) {
      head += counts[r];
    }
    const double want = ZipfSampler::Harmonic(k, s) / h_n;
    const double got =
        static_cast<double>(head) / static_cast<double>(draws);
    EXPECT_NEAR(got, want, 0.01) << "k=" << k;
  }
}

TEST(ZipfStatsTest, LogLogSlopeRecoversTheExponent) {
  // Least-squares slope of log(frequency) vs log(rank) over the head must
  // recover -s: the defining rank-frequency law, checked for two distinct
  // exponents so a constant-slope bug cannot pass.
  for (const double s : {0.9, 1.3}) {
    const ZipfSampler zipf(2000, s);
    const uint64_t draws = 400000;
    const std::vector<uint64_t> counts =
        SampleCounts(zipf, draws, testing::TestSeed(20260810));
    // Head ranks only: each must have enough mass that sampling noise does
    // not dominate the regression.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    int n = 0;
    for (uint64_t r = 0; r < 50; ++r) {
      ASSERT_GT(counts[r], 50u) << "rank " << r << " too thin at s=" << s;
      const double x = std::log(static_cast<double>(r + 1));
      const double y = std::log(static_cast<double>(counts[r]));
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
      ++n;
    }
    const double slope =
        (n * sxy - sx * sy) / (n * sxx - sx * sx);
    EXPECT_NEAR(slope, -s, 0.05) << "s=" << s;
  }
}

TEST(ZipfStatsTest, DeterministicGivenTheRngStream) {
  const ZipfSampler zipf(5000, 1.1);
  Rng a(12345);
  Rng b(12345);
  Rng c(54321);
  bool diverged = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t from_a = zipf.Sample(&a);
    ASSERT_EQ(from_a, zipf.Sample(&b)) << "draw " << i;
    diverged = diverged || (from_a != zipf.Sample(&c));
  }
  EXPECT_TRUE(diverged) << "distinct seeds produced identical streams";
}

TEST(ZipfStatsTest, DegenerateSingleRank) {
  const ZipfSampler zipf(1, 1.1);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(&rng), 0u);
  }
}

TEST(ZipfStatsTest, TenantBaselinesAreDeterministicPerTenant) {
  // The catalog layer's lazy compile + crash recovery both assume
  // MakeTenant is a pure function of (config, tenant_id).
  MultiTenantConfig config;
  config.num_tenants = 64;
  config.base.dimensions = 2;
  const MultiTenantWorkload one(config);
  const MultiTenantWorkload two(config);
  for (const uint64_t tenant : {0ull, 13ull, 63ull}) {
    Result<Workload> a = one.MakeTenant(tenant);
    Result<Workload> b = two.MakeTenant(tenant);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->licenses->size(), b->licenses->size());
    for (size_t i = 0; i < static_cast<size_t>(a->licenses->size()); ++i) {
      const License& la = a->licenses->licenses()[i];
      const License& lb = b->licenses->licenses()[i];
      EXPECT_EQ(la.id(), lb.id());
      EXPECT_EQ(la.aggregate_count(), lb.aggregate_count());
    }
  }
  // Distinct tenants must not share a geometry wholesale.
  Result<Workload> t0 = one.MakeTenant(0);
  Result<Workload> t1 = one.MakeTenant(1);
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  const bool distinct =
      t0->licenses->size() != t1->licenses->size() ||
      t0->licenses->licenses()[0].aggregate_count() !=
          t1->licenses->licenses()[0].aggregate_count();
  EXPECT_TRUE(distinct);
}

}  // namespace
}  // namespace geolic
