#include "workload/workload.h"

#include <gtest/gtest.h>

#include "core/grouping.h"
#include "core/instance_validator.h"

#include "test_util.h"

namespace geolic {
namespace {

TEST(WorkloadConfigTest, DefaultsAreValid) {
  EXPECT_TRUE(WorkloadConfig().Validate().ok());
}

TEST(WorkloadConfigTest, RejectsBadParameters) {
  {
    WorkloadConfig config;
    config.num_licenses = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    WorkloadConfig config;
    config.num_licenses = kMaxLicensesLarge + 1;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    WorkloadConfig config;
    config.dimensions = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    WorkloadConfig config;
    config.min_extent = 0.0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    WorkloadConfig config;
    config.min_extent = 0.9;
    config.max_extent = 0.5;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    WorkloadConfig config;
    config.aggregate_min = 100;
    config.aggregate_max = 50;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    WorkloadConfig config;
    config.usage_count_min = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    WorkloadConfig config;
    config.num_records = -1;
    EXPECT_FALSE(config.Validate().ok());
  }
}

TEST(WorkloadGeneratorTest, GeneratesRequestedShape) {
  WorkloadConfig config;
  config.num_licenses = 12;
  config.num_records = 500;
  config.seed = 7;
  WorkloadGenerator generator(config);
  const Result<Workload> workload = generator.Generate();
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->licenses->size(), 12);
  EXPECT_EQ(workload->log.size(), 500u);
  EXPECT_EQ(workload->schema->dimensions(), 4);
}

TEST(WorkloadGeneratorTest, DeterministicForSameSeed) {
  WorkloadConfig config;
  config.num_licenses = 8;
  config.num_records = 200;
  config.seed = 99;
  const Result<Workload> a = WorkloadGenerator(config).Generate();
  const Result<Workload> b = WorkloadGenerator(config).Generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->log.records(), b->log.records());
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(a->licenses->at(i).rect() == b->licenses->at(i).rect());
    EXPECT_EQ(a->licenses->at(i).aggregate_count(),
              b->licenses->at(i).aggregate_count());
  }
}

TEST(WorkloadGeneratorTest, DifferentSeedsDiffer) {
  WorkloadConfig config;
  config.num_licenses = 8;
  config.num_records = 50;
  config.seed = 1;
  const Result<Workload> a = WorkloadGenerator(config).Generate();
  config.seed = 2;
  const Result<Workload> b = WorkloadGenerator(config).Generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->log.records() == b->log.records());
}

TEST(WorkloadGeneratorTest, AggregatesWithinPaperRange) {
  WorkloadConfig config;
  config.num_licenses = 30;
  config.num_records = 0;
  WorkloadGenerator generator(config);
  const Result<Workload> workload = generator.GenerateLicensesOnly();
  ASSERT_TRUE(workload.ok());
  for (int i = 0; i < 30; ++i) {
    const int64_t aggregate = workload->licenses->at(i).aggregate_count();
    EXPECT_GE(aggregate, config.aggregate_min);
    EXPECT_LE(aggregate, config.aggregate_max);
  }
}

TEST(WorkloadGeneratorTest, UsageCountsWithinPaperRange) {
  WorkloadConfig config;
  config.num_licenses = 10;
  config.num_records = 300;
  WorkloadGenerator generator(config);
  const Result<Workload> workload = generator.Generate();
  ASSERT_TRUE(workload.ok());
  for (const LogRecord& record : workload->log.records()) {
    EXPECT_GE(record.count, config.usage_count_min);
    EXPECT_LE(record.count, config.usage_count_max);
    EXPECT_NE(record.set, testing::Mask(0));
  }
}

TEST(WorkloadGeneratorTest, LogSetsMatchGeometry) {
  // Every log record's set must equal the set of licenses geometrically
  // containing a rectangle — re-derivable via the instance validator on
  // the drawn usage rect is not possible post hoc, but each set must at
  // least be consistent: all members pairwise overlapping (they share the
  // usage rectangle).
  WorkloadConfig config;
  config.num_licenses = 15;
  config.num_records = 400;
  WorkloadGenerator generator(config);
  const Result<Workload> workload = generator.Generate();
  ASSERT_TRUE(workload.ok());
  for (const LogRecord& record : workload->log.records()) {
    const std::vector<int> members = (record.set).ToIndexes();
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        EXPECT_TRUE(workload->licenses->at(members[i])
                        .OverlapsWith(workload->licenses->at(members[j])));
      }
    }
  }
}

TEST(WorkloadGeneratorTest, ClustersBoundGroupCount) {
  // Licenses never overlap across cluster slabs, so the number of overlap
  // groups is at least the number of distinct clusters hit and at most N.
  WorkloadConfig config;
  config.num_licenses = 25;
  config.num_clusters = 4;
  config.num_records = 0;
  config.seed = 5;
  const Result<Workload> workload =
      WorkloadGenerator(config).GenerateLicensesOnly();
  ASSERT_TRUE(workload.ok());
  const LicenseGrouping grouping =
      LicenseGrouping::FromLicenses(*workload->licenses);
  EXPECT_GE(grouping.group_count(), 1);
  EXPECT_LE(grouping.group_count(), 25);
  // With default extents, 25 licenses in 4 clusters should coalesce into a
  // handful of groups (the paper's 1-5 band).
  EXPECT_LE(grouping.group_count(), 12);
}

TEST(WorkloadGeneratorTest, DrawUsageLicenseStaysInsideParent) {
  WorkloadConfig config;
  config.num_licenses = 5;
  config.num_records = 0;
  WorkloadGenerator generator(config);
  const Result<Workload> workload = generator.GenerateLicensesOnly();
  ASSERT_TRUE(workload.ok());
  Rng rng(123);
  for (int i = 0; i < 5; ++i) {
    for (int draw = 0; draw < 20; ++draw) {
      const License usage =
          generator.DrawUsageLicense(*workload, i, &rng, draw);
      EXPECT_TRUE(workload->licenses->at(i).InstanceContains(usage));
      EXPECT_EQ(usage.type(), LicenseType::kUsage);
    }
  }
}

TEST(PaperSweepConfigTest, InterpolatesRecordCounts) {
  EXPECT_EQ(PaperSweepConfig(1).num_records, 600);
  EXPECT_EQ(PaperSweepConfig(35).num_records, 22000);
  const int mid = PaperSweepConfig(18).num_records;
  EXPECT_GT(mid, 600);
  EXPECT_LT(mid, 22000);
  EXPECT_EQ(PaperSweepConfig(10).num_licenses, 10);
}

TEST(PaperSweepConfigTest, SweepConfigsAreValid) {
  for (int n = 1; n <= 35; ++n) {
    EXPECT_TRUE(PaperSweepConfig(n).Validate().ok()) << "n=" << n;
  }
}

}  // namespace
}  // namespace geolic
