#include "workload/stats.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/workload.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;

TEST(SampleSummaryTest, AccumulatesMinMeanMax) {
  SampleSummary summary;
  EXPECT_EQ(summary.samples, 0u);
  summary.Add(10);
  summary.Add(20);
  summary.Add(30);
  EXPECT_EQ(summary.min, 10);
  EXPECT_EQ(summary.max, 30);
  EXPECT_DOUBLE_EQ(summary.mean, 20.0);
  EXPECT_EQ(summary.samples, 3u);
}

TEST(SampleSummaryTest, SingleSample) {
  SampleSummary summary;
  summary.Add(-7);
  EXPECT_EQ(summary.min, -7);
  EXPECT_EQ(summary.max, -7);
  EXPECT_DOUBLE_EQ(summary.mean, -7.0);
  EXPECT_NE(summary.ToString().find("n=1"), std::string::npos);
}

TEST(LogStatsTest, ComputesHistogramAndDistincts) {
  LogStore log;
  ASSERT_TRUE(log.Append(LogRecord{"a", testing::Mask(0b001), 10}).ok());
  ASSERT_TRUE(log.Append(LogRecord{"b", testing::Mask(0b011), 20}).ok());
  ASSERT_TRUE(log.Append(LogRecord{"c", testing::Mask(0b011), 30}).ok());
  ASSERT_TRUE(log.Append(LogRecord{"d", testing::Mask(0b111), 40}).ok());
  const LogStats stats = LogStats::Compute(log);
  EXPECT_EQ(stats.records, 4u);
  EXPECT_EQ(stats.distinct_sets, 3u);
  EXPECT_EQ(stats.set_size.min, 1);
  EXPECT_EQ(stats.set_size.max, 3);
  EXPECT_EQ(stats.count.min, 10);
  EXPECT_EQ(stats.count.max, 40);
  ASSERT_EQ(stats.set_size_histogram.size(), 4u);
  EXPECT_EQ(stats.set_size_histogram[1], 1u);
  EXPECT_EQ(stats.set_size_histogram[2], 2u);
  EXPECT_EQ(stats.set_size_histogram[3], 1u);
  EXPECT_NE(stats.ToString().find("4 records"), std::string::npos);
}

TEST(LogStatsTest, EmptyLog) {
  const LogStats stats = LogStats::Compute(LogStore());
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.distinct_sets, 0u);
  EXPECT_EQ(stats.set_size.samples, 0u);
}

TEST(LicensePortfolioStatsTest, PaperExampleNumbers) {
  const ConstraintSchema schema = IntervalSchema(2);
  LicenseCatalog set(&schema);
  // The figure-2 shape: (L1,L2,L4) and (L3,L5).
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "L1", {{0, 20}, {0, 20}},
                                         2000))
                  .ok());
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "L2", {{10, 30}, {5, 25}},
                                         1000))
                  .ok());
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "L3",
                                         {{100, 130}, {0, 20}}, 3000))
                  .ok());
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "L4", {{15, 40}, {10, 35}},
                                         4000))
                  .ok());
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "L5",
                                         {{120, 150}, {10, 30}}, 2000))
                  .ok());
  const LicensePortfolioStats stats = LicensePortfolioStats::Compute(set);
  EXPECT_EQ(stats.licenses, 5);
  EXPECT_EQ(stats.groups, 2);
  EXPECT_EQ(stats.group_sizes, (std::vector<int>{3, 2}));
  EXPECT_EQ(stats.exhaustive_equations, 31u);
  EXPECT_EQ(stats.grouped_equations, 10u);
  EXPECT_NEAR(stats.theoretical_gain, 3.1, 1e-9);
  EXPECT_EQ(stats.overlap_edges, 4);  // L1-L2, L1-L4, L2-L4, L3-L5.
  EXPECT_NE(stats.ToString().find("5 licenses"), std::string::npos);
}

TEST(LicensePortfolioStatsTest, EmptyPortfolio) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  const LicensePortfolioStats stats = LicensePortfolioStats::Compute(set);
  EXPECT_EQ(stats.licenses, 0);
  EXPECT_EQ(stats.groups, 0);
  EXPECT_EQ(stats.exhaustive_equations, 0u);
}

TEST(LicensePortfolioStatsTest, GeneratedWorkloadConsistency) {
  WorkloadConfig config = PaperSweepConfig(20, 808);
  config.num_records = 0;
  const Result<Workload> workload =
      WorkloadGenerator(config).GenerateLicensesOnly();
  ASSERT_TRUE(workload.ok());
  const LicensePortfolioStats stats =
      LicensePortfolioStats::Compute(*workload->licenses);
  EXPECT_EQ(stats.licenses, 20);
  int total = 0;
  for (int size : stats.group_sizes) {
    total += size;
  }
  EXPECT_EQ(total, 20);
  EXPECT_GE(stats.theoretical_gain, 1.0);
  EXPECT_LE(stats.grouped_equations, stats.exhaustive_equations);
}

}  // namespace
}  // namespace geolic
