#include "graph/adjacency_matrix.h"

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(AdjacencyMatrixTest, StartsEmpty) {
  AdjacencyMatrix graph(4);
  EXPECT_EQ(graph.num_vertices(), 4);
  EXPECT_EQ(graph.EdgeCount(), 0);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_FALSE(graph.HasEdge(i, j));
    }
  }
}

TEST(AdjacencyMatrixTest, AddEdgeIsSymmetric) {
  AdjacencyMatrix graph(3);
  graph.AddEdge(0, 2);
  EXPECT_TRUE(graph.HasEdge(0, 2));
  EXPECT_TRUE(graph.HasEdge(2, 0));
  EXPECT_FALSE(graph.HasEdge(0, 1));
  EXPECT_EQ(graph.EdgeCount(), 1);
}

TEST(AdjacencyMatrixTest, SelfLoopsIgnored) {
  AdjacencyMatrix graph(3);
  graph.AddEdge(1, 1);
  EXPECT_FALSE(graph.HasEdge(1, 1));
  EXPECT_EQ(graph.EdgeCount(), 0);
}

TEST(AdjacencyMatrixTest, DuplicateEdgesCollapse) {
  AdjacencyMatrix graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 0);
  graph.AddEdge(0, 1);
  EXPECT_EQ(graph.EdgeCount(), 1);
}

TEST(AdjacencyMatrixTest, Degree) {
  AdjacencyMatrix graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 2);
  graph.AddEdge(0, 3);
  graph.AddEdge(1, 2);
  EXPECT_EQ(graph.Degree(0), 3);
  EXPECT_EQ(graph.Degree(1), 2);
  EXPECT_EQ(graph.Degree(3), 1);
  EXPECT_EQ(graph.EdgeCount(), 4);
}

TEST(AdjacencyMatrixTest, ZeroVertexGraph) {
  AdjacencyMatrix graph(0);
  EXPECT_EQ(graph.num_vertices(), 0);
  EXPECT_EQ(graph.EdgeCount(), 0);
  EXPECT_EQ(graph.ToString(), "");
}

TEST(AdjacencyMatrixTest, ToStringMatchesPaperFigure3) {
  // Figure 3's adjacency matrix for the five example licenses:
  // edges L1-L2, L1-L4, L3-L5 (0-based: 0-1, 0-3, 2-4).
  AdjacencyMatrix graph(5);
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 3);
  graph.AddEdge(2, 4);
  EXPECT_EQ(graph.ToString(),
            "0 1 0 1 0\n"
            "1 0 0 0 0\n"
            "0 0 0 0 1\n"
            "1 0 0 0 0\n"
            "0 0 1 0 0\n");
}

}  // namespace
}  // namespace geolic
