#include "graph/connected_components.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace geolic {
namespace {

TEST(ConnectedComponentsTest, EmptyGraph) {
  AdjacencyMatrix graph(0);
  const ComponentSet components = FindComponentsDfs(graph);
  EXPECT_EQ(components.count(), 0);
}

TEST(ConnectedComponentsTest, IsolatedVerticesEachOwnComponent) {
  AdjacencyMatrix graph(4);
  const ComponentSet components = FindComponentsDfs(graph);
  EXPECT_EQ(components.count(), 4);
  for (int v = 0; v < 4; ++v) {
    EXPECT_EQ(components.component_of[static_cast<size_t>(v)], v);
    EXPECT_EQ(components.components[static_cast<size_t>(v)],
              LicenseSet::Singleton(v));
    EXPECT_EQ(components.SizeOf(v), 1);
  }
}

TEST(ConnectedComponentsTest, FullyConnectedIsOneComponent) {
  AdjacencyMatrix graph(5);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      graph.AddEdge(i, j);
    }
  }
  const ComponentSet components = FindComponentsDfs(graph);
  EXPECT_EQ(components.count(), 1);
  EXPECT_EQ(components.components[0], LicenseSet::Full(5));
  EXPECT_EQ(components.SizeOf(0), 5);
}

TEST(ConnectedComponentsTest, PaperFigure3Groups) {
  // Edges L1-L2, L1-L4, L3-L5 → groups {L1, L2, L4} and {L3, L5}, exactly
  // the Group rows (1,1,0,1,0) and (0,0,1,0,1) of Section 3.3.
  AdjacencyMatrix graph(5);
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 3);
  graph.AddEdge(2, 4);
  const ComponentSet components = FindComponentsDfs(graph);
  ASSERT_EQ(components.count(), 2);
  EXPECT_EQ(components.components[0], LicenseSet::FromWord(0b01011));  // {L1, L2, L4}
  EXPECT_EQ(components.components[1], LicenseSet::FromWord(0b10100));  // {L3, L5}
  EXPECT_EQ(components.SizeOf(0), 3);
  EXPECT_EQ(components.SizeOf(1), 2);
  EXPECT_EQ(components.component_of, (std::vector<int>{0, 0, 1, 0, 1}));
}

TEST(ConnectedComponentsTest, ChainIsOneComponent) {
  AdjacencyMatrix graph(6);
  for (int i = 0; i + 1 < 6; ++i) {
    graph.AddEdge(i, i + 1);
  }
  EXPECT_EQ(FindComponentsDfs(graph).count(), 1);
}

TEST(ConnectedComponentsTest, IndirectConnectionViaLowerIndex) {
  // 2-0 and 2-1: vertices 0 and 1 connect only through 2. A literal
  // reading of Algorithm 3's "for j=i+1" scan would wrongly split this
  // component; the corrected full neighbour scan must find one component.
  AdjacencyMatrix graph(3);
  graph.AddEdge(2, 0);
  graph.AddEdge(2, 1);
  const ComponentSet components = FindComponentsDfs(graph);
  EXPECT_EQ(components.count(), 1);
  EXPECT_EQ(components.components[0], LicenseSet::FromWord(0b111));
}

TEST(ConnectedComponentsTest, ComponentsOrderedBySmallestVertex) {
  AdjacencyMatrix graph(6);
  graph.AddEdge(3, 5);
  graph.AddEdge(1, 2);
  const ComponentSet components = FindComponentsDfs(graph);
  ASSERT_EQ(components.count(), 4);
  EXPECT_EQ(components.components[0], LicenseSet::Singleton(0));
  EXPECT_EQ(components.components[1], LicenseSet::FromWord(0b000110));  // {1, 2}
  EXPECT_EQ(components.components[2], LicenseSet::FromWord(0b101000));  // {3, 5}
  EXPECT_EQ(components.components[3], LicenseSet::Singleton(4));
}

// Property: the paper-faithful recursive DFS, the iterative DFS, and
// union-find agree on random graphs of every density.
class ComponentsAgreementTest
    : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(ComponentsAgreementTest, AllThreeImplementationsAgree) {
  const auto [n, density] = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 7919 +
          static_cast<uint64_t>(density * 1000));
  for (int trial = 0; trial < 50; ++trial) {
    AdjacencyMatrix graph(n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(density)) {
          graph.AddEdge(i, j);
        }
      }
    }
    const ComponentSet dfs = FindComponentsDfs(graph);
    const ComponentSet iterative = FindComponentsIterative(graph);
    const ComponentSet union_find = FindComponentsUnionFind(graph);
    EXPECT_EQ(dfs.components, iterative.components);
    EXPECT_EQ(dfs.components, union_find.components);
    EXPECT_EQ(dfs.component_of, iterative.component_of);
    EXPECT_EQ(dfs.component_of, union_find.component_of);

    // Structural sanity: components partition the vertex set.
    LicenseSet all;
    for (const LicenseSet& component : dfs.components) {
      EXPECT_TRUE((all & component).Empty()) << "components overlap";
      all |= component;
    }
    EXPECT_EQ(all, LicenseSet::Full(n));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Densities, ComponentsAgreementTest,
    ::testing::Values(std::pair<int, double>{1, 0.0},
                      std::pair<int, double>{8, 0.05},
                      std::pair<int, double>{16, 0.1},
                      std::pair<int, double>{24, 0.3},
                      std::pair<int, double>{32, 0.7},
                      std::pair<int, double>{40, 0.02}));

TEST(UnionFindTest, Basics) {
  UnionFind uf(5);
  EXPECT_EQ(uf.SetCount(), 5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.SetCount(), 4);
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_NE(uf.Find(0), uf.Find(2));
  EXPECT_TRUE(uf.Union(3, 4));
  EXPECT_TRUE(uf.Union(0, 4));
  EXPECT_EQ(uf.SetCount(), 2);
  EXPECT_EQ(uf.Find(1), uf.Find(3));
}

TEST(UnionFindTest, PathCompressionKeepsAnswersStable) {
  UnionFind uf(100);
  for (int i = 0; i + 1 < 100; ++i) {
    uf.Union(i, i + 1);
  }
  EXPECT_EQ(uf.SetCount(), 1);
  const int root = uf.Find(0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(uf.Find(i), root);
  }
}

}  // namespace
}  // namespace geolic
