#include "graph/max_flow.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace geolic {
namespace {

TEST(MaxFlowTest, SingleEdge) {
  MaxFlow flow(2);
  const int edge = flow.AddEdge(0, 1, 7);
  const Result<int64_t> total = flow.Compute(0, 1);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 7);
  EXPECT_EQ(flow.flow_on(edge), 7);
}

TEST(MaxFlowTest, NoPathIsZero) {
  MaxFlow flow(3);
  flow.AddEdge(0, 1, 5);
  const Result<int64_t> total = flow.Compute(0, 2);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, 0);
}

TEST(MaxFlowTest, BottleneckLimits) {
  // 0 →10→ 1 →3→ 2 →10→ 3.
  MaxFlow flow(4);
  flow.AddEdge(0, 1, 10);
  const int bottleneck = flow.AddEdge(1, 2, 3);
  flow.AddEdge(2, 3, 10);
  EXPECT_EQ(*flow.Compute(0, 3), 3);
  EXPECT_EQ(flow.flow_on(bottleneck), 3);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  MaxFlow flow(4);
  flow.AddEdge(0, 1, 4);
  flow.AddEdge(1, 3, 4);
  flow.AddEdge(0, 2, 6);
  flow.AddEdge(2, 3, 5);
  EXPECT_EQ(*flow.Compute(0, 3), 9);
}

TEST(MaxFlowTest, ClassicDinicExample) {
  // Requires routing through the cross edge for optimality.
  MaxFlow flow(6);
  flow.AddEdge(0, 1, 10);
  flow.AddEdge(0, 2, 10);
  flow.AddEdge(1, 2, 2);
  flow.AddEdge(1, 3, 4);
  flow.AddEdge(1, 4, 8);
  flow.AddEdge(2, 4, 9);
  flow.AddEdge(3, 5, 10);
  flow.AddEdge(4, 3, 6);
  flow.AddEdge(4, 5, 10);
  EXPECT_EQ(*flow.Compute(0, 5), 19);
}

TEST(MaxFlowTest, RejectsMisuse) {
  MaxFlow flow(2);
  flow.AddEdge(0, 1, 1);
  EXPECT_FALSE(flow.Compute(0, 0).ok());
  EXPECT_FALSE(flow.Compute(0, 5).ok());
  ASSERT_TRUE(flow.Compute(0, 1).ok());
  EXPECT_EQ(flow.Compute(0, 1).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MaxFlowTest, FlowConservationOnRandomGraphs) {
  Rng rng(66);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(4, 20));
    MaxFlow flow(n);
    struct EdgeInfo {
      int id;
      int from;
      int to;
    };
    std::vector<EdgeInfo> edges;
    for (int e = 0; e < 3 * n; ++e) {
      const int from = static_cast<int>(rng.UniformInt(0, n - 1));
      const int to = static_cast<int>(rng.UniformInt(0, n - 1));
      if (from == to) {
        continue;
      }
      edges.push_back(
          EdgeInfo{flow.AddEdge(from, to, rng.UniformInt(0, 40)), from, to});
    }
    const Result<int64_t> total = flow.Compute(0, n - 1);
    ASSERT_TRUE(total.ok());
    EXPECT_GE(*total, 0);
    // Conservation: net flow at every internal node is zero; net out of
    // the source equals net into the sink equals |f|.
    std::vector<int64_t> net(static_cast<size_t>(n), 0);
    for (const EdgeInfo& edge : edges) {
      const int64_t f = flow.flow_on(edge.id);
      EXPECT_GE(f, 0);
      net[static_cast<size_t>(edge.from)] += f;
      net[static_cast<size_t>(edge.to)] -= f;
    }
    EXPECT_EQ(net[0], *total);
    EXPECT_EQ(net[static_cast<size_t>(n - 1)], -*total);
    for (int v = 1; v + 1 < n; ++v) {
      EXPECT_EQ(net[static_cast<size_t>(v)], 0) << "node " << v;
    }
  }
}

}  // namespace
}  // namespace geolic
