// Property test for paper Theorem 2 at the decision level: grouped and
// ungrouped online validation, plus a flat-tree equation oracle, must agree
// on every TryIssue — not just accept/reject, but the exact limiting
// equation on rejection. 500 seeded workloads; any failure logs its seed
// and is reproducible with GEOLIC_TEST_SEED.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "core/online_validator.h"
#include "licensing/license.h"
#include "licensing/license_catalog.h"
#include "test_util.h"
#include "util/license_set.h"
#include "util/random.h"
#include "validation/flat_tree.h"
#include "validation/validation_tree.h"

namespace geolic {
namespace {

using geolic::testing::TestSeed;

constexpr int64_t kDomain = 24;

struct Workload {
  std::unique_ptr<ConstraintSchema> schema;
  std::unique_ptr<LicenseCatalog> licenses;
  std::vector<License> requests;
};

Workload Generate(uint64_t seed) {
  Rng rng(seed);
  Workload w;
  const int dims = static_cast<int>(rng.UniformInt(1, 2));
  w.schema = std::make_unique<ConstraintSchema>();
  for (int d = 0; d < dims; ++d) {
    GEOLIC_CHECK(
        w.schema->AddIntervalDimension("C" + std::to_string(d + 1)).ok());
  }
  w.licenses = std::make_unique<LicenseCatalog>(w.schema.get());
  const int license_count = static_cast<int>(rng.UniformInt(3, 8));
  for (int i = 0; i < license_count; ++i) {
    LicenseBuilder builder(w.schema.get());
    builder.SetId("L" + std::to_string(i + 1))
        .SetContentKey("K")
        .SetType(LicenseType::kRedistribution)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(rng.UniformInt(2, 10));
    for (int d = 0; d < dims; ++d) {
      const int64_t lo = rng.UniformInt(0, kDomain - 6);
      builder.SetInterval("C" + std::to_string(d + 1), lo,
                          lo + rng.UniformInt(3, 10));
    }
    const Result<License> license = builder.Build();
    GEOLIC_CHECK(license.ok());
    GEOLIC_CHECK(w.licenses->Add(*license).ok());
  }
  const int request_count = static_cast<int>(rng.UniformInt(15, 30));
  for (int r = 0; r < request_count; ++r) {
    LicenseBuilder builder(w.schema.get());
    builder.SetId("U" + std::to_string(r + 1))
        .SetContentKey("K")
        .SetType(LicenseType::kUsage)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(rng.UniformInt(1, 3));
    if (rng.Bernoulli(0.2)) {
      for (int d = 0; d < dims; ++d) {
        const int64_t lo = rng.UniformInt(0, kDomain - 1);
        builder.SetInterval("C" + std::to_string(d + 1), lo,
                            lo + rng.UniformInt(0, 4));
      }
    } else {
      const int target = static_cast<int>(
          rng.UniformIndex(static_cast<size_t>(w.licenses->size())));
      const License& inside = w.licenses->at(target);
      for (int d = 0; d < dims; ++d) {
        const Interval& range = inside.rect().dim(d).interval();
        const int64_t lo = rng.UniformInt(range.lo(), range.hi());
        builder.SetInterval("C" + std::to_string(d + 1), lo,
                            rng.UniformInt(lo, range.hi()));
      }
    }
    const Result<License> license = builder.Build();
    GEOLIC_CHECK(license.ok());
    w.requests.push_back(*license);
  }
  return w;
}

// Third, independently-coded implementation of the admission decision: S by
// linear containment scan, equations over ALL supersets of S (no grouping)
// in the same ascending-extension order, with every C⟨T⟩ answered by a
// FlatValidationTree compiled from the accepted history. Exercises the
// arena compiler and its pruned scans as a decision procedure.
class FlatTreeOracle {
 public:
  explicit FlatTreeOracle(const LicenseCatalog* licenses) : licenses_(licenses) {}

  OnlineDecision TryIssue(const License& issued) {
    OnlineDecision decision;
    for (int i = 0; i < licenses_->size(); ++i) {
      if (licenses_->at(i).InstanceContains(issued)) {
        decision.satisfying_set |= LicenseSet::Singleton(i);
      }
    }
    if (decision.satisfying_set.Empty()) {
      return decision;
    }
    decision.instance_valid = true;
    decision.aggregate_valid = true;
    const FlatValidationTree flat = FlatValidationTree::Compile(tree_);
    const int64_t count = issued.aggregate_count();
    const LicenseSet extension =
        licenses_->AllMask() - decision.satisfying_set;
    for (AscendingSubsetIterator it(extension); !it.Done(); it.Next()) {
      const LicenseSet t = decision.satisfying_set | it.subset();
      ++decision.equations_checked;
      const int64_t lhs = flat.SumSubsets(t) + count;
      const int64_t rhs = licenses_->AggregateSum(t);
      if (lhs > rhs) {
        decision.aggregate_valid = false;
        decision.limiting.set = t;
        decision.limiting.lhs = lhs;
        decision.limiting.rhs = rhs;
        break;
      }
    }
    if (decision.aggregate_valid) {
      GEOLIC_CHECK(tree_.Insert(decision.satisfying_set, count).ok());
    }
    return decision;
  }

 private:
  const LicenseCatalog* licenses_;
  ValidationTree tree_;
};

std::string Describe(const OnlineDecision& d) {
  std::string text = d.instance_valid ? "instance-valid " : "instance-invalid ";
  text += d.aggregate_valid ? "accepted" : "rejected";
  text += " S=" + d.satisfying_set.ToHex();
  if (d.instance_valid && !d.aggregate_valid) {
    text += " limiting T=" + d.limiting.set.ToHex() + " (" +
            std::to_string(d.limiting.lhs) + " > " +
            std::to_string(d.limiting.rhs) + ")";
  }
  return text;
}

bool SameDecision(const OnlineDecision& a, const OnlineDecision& b) {
  if (a.instance_valid != b.instance_valid ||
      a.satisfying_set != b.satisfying_set) {
    return false;
  }
  if (!a.instance_valid) {
    return true;
  }
  if (a.aggregate_valid != b.aggregate_valid) {
    return false;
  }
  if (!a.aggregate_valid &&
      (a.limiting.set != b.limiting.set || a.limiting.lhs != b.limiting.lhs ||
       a.limiting.rhs != b.limiting.rhs)) {
    return false;
  }
  return true;
}

TEST(OnlineEquivalenceProperty, GroupedUngroupedAndFlatTreeAgree) {
  const uint64_t base = TestSeed(1000);
  for (uint64_t seed = base; seed < base + 500; ++seed) {
    const Workload w = Generate(seed);

    OnlineValidatorOptions grouped_options;
    grouped_options.use_grouping = true;
    Result<OnlineValidator> grouped =
        OnlineValidator::Create(w.licenses.get(), grouped_options);
    ASSERT_TRUE(grouped.ok());

    OnlineValidatorOptions ungrouped_options;
    ungrouped_options.use_grouping = false;
    Result<OnlineValidator> ungrouped =
        OnlineValidator::Create(w.licenses.get(), ungrouped_options);
    ASSERT_TRUE(ungrouped.ok());

    FlatTreeOracle oracle(w.licenses.get());

    for (size_t r = 0; r < w.requests.size(); ++r) {
      const Result<OnlineDecision> g = grouped->TryIssue(w.requests[r]);
      const Result<OnlineDecision> u = ungrouped->TryIssue(w.requests[r]);
      ASSERT_TRUE(g.ok());
      ASSERT_TRUE(u.ok());
      const OnlineDecision o = oracle.TryIssue(w.requests[r]);

      ASSERT_TRUE(SameDecision(*g, *u))
          << "seed " << seed << " request " << r
          << ": grouped {" << Describe(*g) << "} vs ungrouped {"
          << Describe(*u) << "}"
          << "\nrepro: GEOLIC_TEST_SEED=" << seed
          << " ctest -R online_equivalence_property_test";
      ASSERT_TRUE(SameDecision(*u, o))
          << "seed " << seed << " request " << r
          << ": ungrouped {" << Describe(*u) << "} vs flat-tree oracle {"
          << Describe(o) << "}"
          << "\nrepro: GEOLIC_TEST_SEED=" << seed
          << " ctest -R online_equivalence_property_test";

      // Theorem 2's point: grouping only ever shrinks the equation scan.
      if (g->instance_valid) {
        EXPECT_LE(g->equations_checked, u->equations_checked)
            << "seed " << seed << " request " << r;
      }
    }
  }
}

}  // namespace
}  // namespace geolic
