#include "core/online_validator.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace geolic {
namespace {

OnlineValidatorOptions Grouped(bool use_grouping) {
  OnlineValidatorOptions options;
  options.use_grouping = use_grouping;
  return options;
}

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

// L1 [0,20] A=100, L2 [10,30] A=50, L3 [100,120] A=30 — two groups.
LicenseCatalog SmallSet(const ConstraintSchema& schema) {
  LicenseCatalog set(&schema);
  GEOLIC_CHECK(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 100)).ok());
  GEOLIC_CHECK(
      set.Add(MakeRedistribution(schema, "LD2", {{10, 30}}, 50)).ok());
  GEOLIC_CHECK(
      set.Add(MakeRedistribution(schema, "LD3", {{100, 120}}, 30)).ok());
  return set;
}

TEST(OnlineValidatorTest, CreateRequiresLicenses) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog empty(&schema);
  EXPECT_FALSE(OnlineValidator::Create(&empty).ok());
  EXPECT_FALSE(OnlineValidator::Create(nullptr).ok());
}

TEST(OnlineValidatorTest, AcceptsValidIssue) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = SmallSet(schema);
  Result<OnlineValidator> validator = OnlineValidator::Create(&set);
  ASSERT_TRUE(validator.ok());
  const Result<OnlineDecision> decision =
      validator->TryIssue(MakeUsage(schema, "LU1", {{2, 5}}, 40));
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->accepted());
  EXPECT_TRUE(decision->instance_valid);
  EXPECT_TRUE(decision->aggregate_valid);
  EXPECT_EQ(decision->satisfying_set, testing::Mask(0b001));
  EXPECT_EQ(validator->log().size(), 1u);
  EXPECT_EQ(validator->tree().CountOf(testing::Mask(0b001)), 40);
}

TEST(OnlineValidatorTest, RejectsInstanceInvalid) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = SmallSet(schema);
  Result<OnlineValidator> validator = OnlineValidator::Create(&set);
  ASSERT_TRUE(validator.ok());
  // [25, 50] is not inside any license.
  const Result<OnlineDecision> decision =
      validator->TryIssue(MakeUsage(schema, "LU1", {{25, 50}}, 5));
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->accepted());
  EXPECT_FALSE(decision->instance_valid);
  EXPECT_EQ(validator->log().size(), 0u);  // Nothing recorded.
}

TEST(OnlineValidatorTest, RejectsAggregateOverflowAndReportsEquation) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = SmallSet(schema);
  Result<OnlineValidator> validator = OnlineValidator::Create(&set);
  ASSERT_TRUE(validator.ok());
  // L3's budget is 30: a 31-count usage inside L3 must be rejected.
  const Result<OnlineDecision> decision =
      validator->TryIssue(MakeUsage(schema, "LU1", {{105, 110}}, 31));
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->instance_valid);
  EXPECT_FALSE(decision->aggregate_valid);
  EXPECT_FALSE(decision->accepted());
  EXPECT_EQ(decision->limiting.set, testing::Mask(0b100));
  EXPECT_EQ(decision->limiting.lhs, 31);
  EXPECT_EQ(decision->limiting.rhs, 30);
  EXPECT_EQ(validator->log().size(), 0u);
}

TEST(OnlineValidatorTest, ExhaustsBudgetExactlyThenRejects) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = SmallSet(schema);
  Result<OnlineValidator> validator = OnlineValidator::Create(&set);
  ASSERT_TRUE(validator.ok());
  // Three 10-count issues exhaust L3's 30.
  for (int i = 0; i < 3; ++i) {
    const Result<OnlineDecision> decision =
        validator->TryIssue(MakeUsage(schema, "LU", {{101, 102}}, 10));
    ASSERT_TRUE(decision.ok());
    EXPECT_TRUE(decision->accepted()) << "issue " << i;
  }
  const Result<OnlineDecision> rejected =
      validator->TryIssue(MakeUsage(schema, "LU", {{101, 102}}, 1));
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected->accepted());
}

TEST(OnlineValidatorTest, Example1ScenarioBothLicensesValid) {
  // The motivating scenario of the paper's Example 1: LU1 (count 800) fits
  // {L1, L2}; LU2 (count 400) fits only {L2}. With equation-based
  // validation both are accepted because C⟨{L2}⟩ = 400 ≤ 1000 and
  // C⟨{L1,L2}⟩ = 1200 ≤ 3000 — no greedy license picking.
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 2000)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD2", {{10, 30}}, 1000)).ok());
  Result<OnlineValidator> validator = OnlineValidator::Create(&set);
  ASSERT_TRUE(validator.ok());

  const Result<OnlineDecision> first =
      validator->TryIssue(MakeUsage(schema, "LU1", {{12, 18}}, 800));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->satisfying_set, testing::Mask(0b11));
  EXPECT_TRUE(first->accepted());

  const Result<OnlineDecision> second =
      validator->TryIssue(MakeUsage(schema, "LU2", {{22, 28}}, 400));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->satisfying_set, testing::Mask(0b10));
  EXPECT_TRUE(second->accepted());
}

TEST(OnlineValidatorTest, GroupingShrinksEquationCount) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = SmallSet(schema);

  Result<OnlineValidator> grouped = OnlineValidator::Create(&set, Grouped(true));
  Result<OnlineValidator> baseline = OnlineValidator::Create(&set, Grouped(false));
  ASSERT_TRUE(grouped.ok());
  ASSERT_TRUE(baseline.ok());

  const License usage = MakeUsage(schema, "LU", {{2, 5}}, 1);
  const Result<OnlineDecision> grouped_decision = grouped->TryIssue(usage);
  const Result<OnlineDecision> baseline_decision = baseline->TryIssue(usage);
  ASSERT_TRUE(grouped_decision.ok());
  ASSERT_TRUE(baseline_decision.ok());
  EXPECT_EQ(grouped_decision->accepted(), baseline_decision->accepted());
  // S = {L1}, k = 1. Baseline checks 2^(3−1) = 4 equations; grouped only
  // the group {L1, L2}: 2^(2−1) = 2.
  EXPECT_EQ(baseline_decision->equations_checked, 4u);
  EXPECT_EQ(grouped_decision->equations_checked, 2u);
}

TEST(OnlineValidatorTest, GroupedAndBaselineAlwaysAgree) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 60)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD2", {{10, 30}}, 40)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD3", {{100, 130}}, 25)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD4", {{110, 140}}, 35)).ok());

  Result<OnlineValidator> grouped = OnlineValidator::Create(&set, Grouped(true));
  Result<OnlineValidator> baseline = OnlineValidator::Create(&set, Grouped(false));
  ASSERT_TRUE(grouped.ok());
  ASSERT_TRUE(baseline.ok());

  Rng rng(2024);
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 300; ++i) {
    const bool left_cluster = rng.Bernoulli(0.5);
    const int64_t base = left_cluster ? rng.UniformInt(0, 25)
                                      : rng.UniformInt(100, 135);
    const int64_t lo = base;
    const int64_t hi = base + rng.UniformInt(0, 5);
    const License usage =
        MakeUsage(schema, "LU", {{lo, hi}}, rng.UniformInt(1, 8));
    const Result<OnlineDecision> a = grouped->TryIssue(usage);
    const Result<OnlineDecision> b = baseline->TryIssue(usage);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->accepted(), b->accepted()) << "issue " << i;
    ASSERT_EQ(a->satisfying_set, b->satisfying_set);
    if (a->accepted()) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  // The workload is sized to exercise both outcomes.
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(grouped->log().size(), baseline->log().size());
}

TEST(OnlineValidatorTest, CreateWithHistoryPreloadsTree) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = SmallSet(schema);
  LogStore history;
  ASSERT_TRUE(history.Append(LogRecord{"LU1", testing::Mask(0b001), 90}).ok());
  Result<OnlineValidator> validator =
      OnlineValidator::CreateWithHistory(&set, Grouped(true), history);
  ASSERT_TRUE(validator.ok());
  EXPECT_EQ(validator->tree().CountOf(testing::Mask(0b001)), 90);
  EXPECT_EQ(validator->log().size(), 1u);
  // Only 10 counts left on L1.
  const Result<OnlineDecision> decision =
      validator->TryIssue(MakeUsage(schema, "LU2", {{0, 5}}, 11));
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->accepted());
}

TEST(OnlineValidatorTest, CreateWithHistoryRejectsUnknownIndexes) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = SmallSet(schema);
  LogStore history;
  ASSERT_TRUE(history.Append(LogRecord{"LU1", LicenseSet::Singleton(9), 5}).ok());
  EXPECT_FALSE(OnlineValidator::CreateWithHistory(&set, Grouped(true), history).ok());
}

TEST(OnlineValidatorTest, RejectsNonPositiveCount) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = SmallSet(schema);
  Result<OnlineValidator> validator = OnlineValidator::Create(&set);
  ASSERT_TRUE(validator.ok());
  LicenseBuilder builder(&schema);
  builder.SetId("LU")
      .SetContentKey("K")
      .SetType(LicenseType::kUsage)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(0)
      .SetInterval("C1", 0, 1);
  // Builder itself refuses a zero count, so hand-construct the license.
  const License usage("LU", "K", LicenseType::kUsage, Permission::kPlay,
                      testing::Rect({{0, 1}}), 0);
  EXPECT_FALSE(validator->TryIssue(usage).ok());
}

}  // namespace
}  // namespace geolic
