#include "core/gain.h"

#include <cmath>

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(GainTest, EquationCountFormula) {
  EXPECT_EQ(EquationCount(0), 0u);
  EXPECT_EQ(EquationCount(1), 1u);
  EXPECT_EQ(EquationCount(5), 31u);
  EXPECT_EQ(EquationCount(10), 1023u);
  EXPECT_EQ(EquationCount(63), (uint64_t{1} << 63) - 1);
  EXPECT_EQ(EquationCount(64), UINT64_MAX);
}

TEST(GainTest, GroupedEquationCountSums) {
  EXPECT_EQ(GroupedEquationCount({}), 0u);
  EXPECT_EQ(GroupedEquationCount({3, 2}), 7u + 3u);
  EXPECT_EQ(GroupedEquationCount({5}), 31u);
  EXPECT_EQ(GroupedEquationCount({1, 1, 1, 1}), 4u);
}

TEST(GainTest, PaperExampleGainIs3Point1) {
  // Section 4.2's illustration: groups (L1,L2,L4) and (L3,L5) →
  // (2^5 − 1)/((2^3 − 1) + (2^2 − 1)) = 31/10 = 3.1.
  EXPECT_NEAR(TheoreticalGain({3, 2}), 3.1, 1e-9);
}

TEST(GainTest, SingleGroupHasGainOne) {
  EXPECT_DOUBLE_EQ(TheoreticalGain({7}), 1.0);
  EXPECT_DOUBLE_EQ(TheoreticalGain({1}), 1.0);
  EXPECT_DOUBLE_EQ(TheoreticalGain({}), 1.0);
}

TEST(GainTest, FullySplitGainIsMaximal) {
  // m = N singleton groups → (2^N − 1)/N, the paper's stated maximum.
  const int n = 10;
  const std::vector<int> singletons(static_cast<size_t>(n), 1);
  EXPECT_NEAR(TheoreticalGain(singletons),
              (std::exp2(n) - 1.0) / static_cast<double>(n), 1e-9);
}

TEST(GainTest, GainAlwaysAtLeastOne) {
  // The paper: "the performance gain always remains greater than or equal
  // to 1".
  const std::vector<std::vector<int>> cases = {
      {1}, {2, 3}, {5, 5, 5}, {1, 9}, {10, 1, 1}, {4, 4, 4, 4}, {35}};
  for (const auto& sizes : cases) {
    EXPECT_GE(TheoreticalGain(sizes), 1.0);
  }
}

TEST(GainTest, MoreBalancedSplitsGainMore) {
  // For fixed N = 12 and g = 2, balanced {6, 6} beats skewed {11, 1}.
  EXPECT_GT(TheoreticalGain({6, 6}), TheoreticalGain({11, 1}));
  EXPECT_GT(TheoreticalGain({4, 4, 4}), TheoreticalGain({6, 6}));
}

TEST(GainTest, LargeNStaysFinite) {
  const double gain = TheoreticalGain({32, 32});
  EXPECT_TRUE(std::isfinite(gain));
  EXPECT_NEAR(gain, std::exp2(64) / (2.0 * std::exp2(32)), 1e12);
}

TEST(GainTest, GainConsistentWithEquationCounts) {
  for (const auto& sizes :
       {std::vector<int>{3, 2}, std::vector<int>{5, 4, 3},
        std::vector<int>{2, 2, 2, 2}}) {
    int n = 0;
    for (int s : sizes) {
      n += s;
    }
    const double expected =
        static_cast<double>(EquationCount(n)) /
        static_cast<double>(GroupedEquationCount(sizes));
    EXPECT_NEAR(TheoreticalGain(sizes), expected, 1e-9);
  }
}

}  // namespace
}  // namespace geolic
