#include "core/assignment.h"

#include <gtest/gtest.h>

#include "core/grouped_validator.h"
#include "core/online_validator.h"
#include "test_util.h"
#include "workload/workload.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;

TEST(SettlementTest, SplitsSharedSetAcrossLicenses) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 100)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD2", {{10, 30}}, 100)).ok());
  LogStore log;
  // 150 counts against {L1,L2}: cannot fit in one license, must split.
  ASSERT_TRUE(log.Append(LogRecord{"U", testing::Mask(0b11), 150}).ok());
  const Result<SettlementAssignment> settlement =
      ComputeSettlement(set, log);
  ASSERT_TRUE(settlement.ok());
  EXPECT_EQ(settlement->charged[0] + settlement->charged[1], 150);
  EXPECT_LE(settlement->charged[0], 100);
  EXPECT_LE(settlement->charged[1], 100);
  EXPECT_EQ(settlement->remaining[0], 100 - settlement->charged[0]);
  const auto& rows = settlement->allocation.at(testing::Mask(0b11));
  int64_t allocated = 0;
  for (const auto& [license, amount] : rows) {
    EXPECT_TRUE(license == 0 || license == 1);
    EXPECT_GT(amount, 0);
    allocated += amount;
  }
  EXPECT_EQ(allocated, 150);
}

TEST(SettlementTest, PaperExample1Settles) {
  // LU1 (800, {L1,L2}) and LU2 (400, {L2}) settle — the split a greedy
  // charger can miss.
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 30}}, 2000)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD2", {{10, 40}}, 1000)).ok());
  LogStore log;
  ASSERT_TRUE(log.Append(LogRecord{"LU1", testing::Mask(0b11), 800}).ok());
  ASSERT_TRUE(log.Append(LogRecord{"LU2", testing::Mask(0b10), 400}).ok());
  const Result<SettlementAssignment> settlement =
      ComputeSettlement(set, log);
  ASSERT_TRUE(settlement.ok());
  EXPECT_EQ(settlement->charged[0] + settlement->charged[1], 1200);
  EXPECT_LE(settlement->charged[1], 1000);
}

TEST(SettlementTest, InfeasibleLogFails) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 100)).ok());
  LogStore log;
  ASSERT_TRUE(log.Append(LogRecord{"U", testing::Mask(0b1), 130}).ok());
  const Result<SettlementAssignment> settlement =
      ComputeSettlement(set, log);
  ASSERT_FALSE(settlement.ok());
  EXPECT_EQ(settlement.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SettlementTest, EmptyLogSettlesToNothing) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 100)).ok());
  const Result<SettlementAssignment> settlement =
      ComputeSettlement(set, LogStore());
  ASSERT_TRUE(settlement.ok());
  EXPECT_EQ(settlement->charged[0], 0);
  EXPECT_EQ(settlement->remaining[0], 100);
  EXPECT_TRUE(settlement->allocation.empty());
}

// Property: settlement succeeds exactly when grouped validation is clean,
// and any produced assignment conserves counts and respects budgets.
TEST(SettlementPropertyTest, SettleableIffValid) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    WorkloadConfig config = PaperSweepConfig(10, seed);
    config.num_records = 400;
    config.aggregate_min = 60;
    config.aggregate_max = 700;
    Result<Workload> workload = WorkloadGenerator(config).Generate();
    ASSERT_TRUE(workload.ok());
    const Result<GroupedValidationResult> audit =
        ValidateGroupedFromLog(*workload->licenses, workload->log);
    ASSERT_TRUE(audit.ok());
    const Result<SettlementAssignment> settlement =
        ComputeSettlement(*workload->licenses, workload->log);
    ASSERT_EQ(settlement.ok(), audit->report.all_valid()) << "seed " << seed;
    if (!settlement.ok()) {
      continue;
    }
    // Conservation per set.
    const auto merged = workload->log.MergedCounts();
    int64_t total_allocated = 0;
    for (const auto& [set, rows] : settlement->allocation) {
      int64_t sum = 0;
      for (const auto& [license, amount] : rows) {
        EXPECT_TRUE((set).Contains(license));
        EXPECT_GT(amount, 0);
        sum += amount;
      }
      EXPECT_EQ(sum, merged.at(set));
      total_allocated += sum;
    }
    EXPECT_EQ(total_allocated, workload->log.TotalCount());
    // Budgets respected.
    for (int i = 0; i < workload->licenses->size(); ++i) {
      EXPECT_LE(settlement->charged[static_cast<size_t>(i)],
                workload->licenses->at(i).aggregate_count());
      EXPECT_GE(settlement->remaining[static_cast<size_t>(i)], 0);
    }
  }
}

// Property: an online-validated stream is always settleable.
TEST(SettlementPropertyTest, OnlineAcceptedStreamsAlwaysSettle) {
  WorkloadConfig config = PaperSweepConfig(12, 77);
  config.num_records = 0;
  config.aggregate_min = 100;
  config.aggregate_max = 500;
  WorkloadGenerator generator(config);
  Result<Workload> workload = generator.GenerateLicensesOnly();
  ASSERT_TRUE(workload.ok());
  Result<OnlineValidator> online =
      OnlineValidator::Create(workload->licenses.get());
  ASSERT_TRUE(online.ok());
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int parent = static_cast<int>(
        rng.UniformInt(0, workload->licenses->size() - 1));
    (void)*online->TryIssue(
        generator.DrawUsageLicense(*workload, parent, &rng, i));
  }
  EXPECT_TRUE(ComputeSettlement(*workload->licenses, online->log()).ok());
}

}  // namespace
}  // namespace geolic
