#include "core/greedy_validator.h"

#include <gtest/gtest.h>

#include "core/online_validator.h"
#include "licensing/license_parser.h"
#include "test_util.h"
#include "workload/workload.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

TEST(GreedyValidatorTest, PolicyNames) {
  EXPECT_STREQ(GreedyPolicyName(GreedyPolicy::kFirst), "first");
  EXPECT_STREQ(GreedyPolicyName(GreedyPolicy::kRandom), "random");
  EXPECT_STREQ(GreedyPolicyName(GreedyPolicy::kLargestRemaining),
               "largest-remaining");
  EXPECT_STREQ(GreedyPolicyName(GreedyPolicy::kSmallestRemaining),
               "smallest-remaining");
}

TEST(GreedyValidatorTest, CreateRequiresLicenses) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog empty(&schema);
  EXPECT_FALSE(
      GreedyOnlineValidator::Create(&empty, GreedyPolicy::kFirst).ok());
}

TEST(GreedyValidatorTest, ChargesChosenLicense) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 100)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD2", {{10, 30}}, 50)).ok());
  Result<GreedyOnlineValidator> validator =
      GreedyOnlineValidator::Create(&set, GreedyPolicy::kFirst);
  ASSERT_TRUE(validator.ok());
  const Result<GreedyDecision> decision =
      validator->TryIssue(MakeUsage(schema, "U", {{12, 18}}, 30));
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->accepted);
  EXPECT_EQ(decision->satisfying_set, testing::Mask(0b11));
  EXPECT_EQ(decision->charged_license, 0);  // kFirst picks LD1.
  EXPECT_EQ(validator->remaining()[0], 70);
  EXPECT_EQ(validator->remaining()[1], 50);
}

TEST(GreedyValidatorTest, RejectsWhenNoSingleLicenseFits) {
  // 60 remaining on each of two licenses: an 80-count issue is rejected by
  // every greedy policy even though 80 ≤ 120 combined — greedy charges ONE
  // license.
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 60)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD2", {{0, 20}}, 60)).ok());
  for (GreedyPolicy policy :
       {GreedyPolicy::kFirst, GreedyPolicy::kRandom,
        GreedyPolicy::kLargestRemaining, GreedyPolicy::kSmallestRemaining}) {
    Result<GreedyOnlineValidator> validator =
        GreedyOnlineValidator::Create(&set, policy);
    ASSERT_TRUE(validator.ok());
    const Result<GreedyDecision> decision =
        validator->TryIssue(MakeUsage(schema, "U", {{5, 6}}, 80));
    ASSERT_TRUE(decision.ok());
    EXPECT_TRUE(decision->instance_valid);
    EXPECT_FALSE(decision->accepted) << GreedyPolicyName(policy);
  }
  // The equation-based validator accepts it? No — a single issued license
  // is one log record with one count; the equations also cap C⟨{L1,L2}⟩ at
  // 120 ≥ 80, and C[{L1,L2}]=80 ≤ A — so equations accept. This is the
  // fractional-assignment subtlety: counts in one record CAN be split
  // across licenses under the aggregate semantics.
  Result<OnlineValidator> equations = OnlineValidator::Create(&set);
  ASSERT_TRUE(equations.ok());
  EXPECT_TRUE(
      equations->TryIssue(MakeUsage(schema, "U", {{5, 6}}, 80))->accepted());
}

TEST(GreedyValidatorTest, PaperExample1Trap) {
  // The exact narrative of Example 1: greedy charging L_D^2 for LU1 leaves
  // 200 and wrongly rejects LU2 (400); equation-based accepts both.
  const ConstraintSchema schema = ConstraintSchema::PaperExampleSchema();
  LicenseCatalog set(&schema);
  ASSERT_TRUE(set.Add(*ParseLicense(
                      "(K; Play; T=[10/03/09, 20/03/09]; R=[Asia, Europe]; "
                      "A=2000)",
                      schema, LicenseType::kRedistribution, "LD1"))
                  .ok());
  ASSERT_TRUE(set.Add(*ParseLicense(
                      "(K; Play; T=[15/03/09, 25/03/09]; R=[Asia]; A=1000)",
                      schema, LicenseType::kRedistribution, "LD2"))
                  .ok());
  const License lu1 = *ParseLicense(
      "(K; Play; T=[15/03/09, 19/03/09]; R=[India]; A=800)", schema,
      LicenseType::kUsage, "LU1");
  const License lu2 = *ParseLicense(
      "(K; Play; T=[21/03/09, 24/03/09]; R=[Japan]; A=400)", schema,
      LicenseType::kUsage, "LU2");

  // Find a random seed whose pick for LU1 is LD2 (the unlucky pick). With
  // kSmallestRemaining the trap is deterministic: LD2 (1000) < LD1 (2000).
  Result<GreedyOnlineValidator> greedy = GreedyOnlineValidator::Create(
      &set, GreedyPolicy::kSmallestRemaining);
  ASSERT_TRUE(greedy.ok());
  const Result<GreedyDecision> first = greedy->TryIssue(lu1);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->accepted);
  EXPECT_EQ(first->charged_license, 1);  // LD2.
  const Result<GreedyDecision> second = greedy->TryIssue(lu2);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->instance_valid);
  EXPECT_FALSE(second->accepted);  // The paper's wrongly-invalidated LU2.

  Result<OnlineValidator> equations = OnlineValidator::Create(&set);
  ASSERT_TRUE(equations.ok());
  EXPECT_TRUE(equations->TryIssue(lu1)->accepted());
  EXPECT_TRUE(equations->TryIssue(lu2)->accepted());
}

// Property: on identical issuance streams, the equation-based validator
// accepts at least as many counts as every greedy policy (it is exactly
// the feasibility test; greedy is a heuristic assignment).
class GreedyDominanceTest : public ::testing::TestWithParam<GreedyPolicy> {};

TEST_P(GreedyDominanceTest, EquationValidatorAcceptsAtLeastAsMuch) {
  const GreedyPolicy policy = GetParam();
  for (uint64_t seed : {11u, 22u, 33u}) {
    WorkloadConfig config = PaperSweepConfig(10, seed);
    config.num_records = 0;
    config.aggregate_min = 200;
    config.aggregate_max = 800;
    WorkloadGenerator generator(config);
    Result<Workload> workload = generator.GenerateLicensesOnly();
    ASSERT_TRUE(workload.ok());

    Result<OnlineValidator> equations =
        OnlineValidator::Create(workload->licenses.get());
    Result<GreedyOnlineValidator> greedy = GreedyOnlineValidator::Create(
        workload->licenses.get(), policy, seed);
    ASSERT_TRUE(equations.ok());
    ASSERT_TRUE(greedy.ok());

    Rng rng(seed * 7);
    int64_t equation_counts = 0;
    for (int i = 0; i < 1500; ++i) {
      const int parent = static_cast<int>(
          rng.UniformInt(0, workload->licenses->size() - 1));
      const License usage =
          generator.DrawUsageLicense(*workload, parent, &rng, i);
      const Result<OnlineDecision> a = equations->TryIssue(usage);
      const Result<GreedyDecision> b = greedy->TryIssue(usage);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      if (a->accepted()) {
        equation_counts += usage.aggregate_count();
      }
      // Anything greedy accepts, the equation validator accepted too (its
      // feasibility is implied by the witness assignment greedy found —
      // and both saw the same history prefix only if... histories diverge,
      // so compare totals below instead of per-issue).
    }
    EXPECT_GE(equation_counts, greedy->accepted_counts())
        << GreedyPolicyName(policy) << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, GreedyDominanceTest,
    ::testing::Values(GreedyPolicy::kFirst, GreedyPolicy::kRandom,
                      GreedyPolicy::kLargestRemaining,
                      GreedyPolicy::kSmallestRemaining));

}  // namespace
}  // namespace geolic
