#include "core/instance_validator.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

TEST(LinearInstanceValidatorTest, FindsAllContainingLicenses) {
  const ConstraintSchema schema = IntervalSchema(2);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}, {0, 20}}, 1)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD2", {{5, 25}, {5, 25}}, 1)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD3", {{50, 60}, {50, 60}}, 1))
          .ok());
  const LinearInstanceValidator validator(&set);

  // Inside LD1 and LD2.
  EXPECT_EQ(validator.SatisfyingSet(
                MakeUsage(schema, "LU1", {{6, 19}, {6, 19}}, 1)),
            testing::Mask(0b011));
  // Inside LD1 only.
  EXPECT_EQ(validator.SatisfyingSet(
                MakeUsage(schema, "LU2", {{0, 4}, {0, 4}}, 1)),
            testing::Mask(0b001));
  // Inside none (straddles LD1's edge) — the paper's invalid L_U^2 case.
  EXPECT_EQ(validator.SatisfyingSet(
                MakeUsage(schema, "LU3", {{15, 30}, {0, 4}}, 1)),
            testing::Mask(0));
  // Inside LD3 only.
  EXPECT_EQ(validator.SatisfyingSet(
                MakeUsage(schema, "LU4", {{55, 56}, {55, 56}}, 1)),
            testing::Mask(0b100));
}

TEST(RtreeInstanceValidatorTest, BuildRejectsEmptySet) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  EXPECT_FALSE(RtreeInstanceValidator::Build(&set).ok());
}

TEST(RtreeInstanceValidatorTest, MatchesLinearOnSmallSet) {
  const ConstraintSchema schema = IntervalSchema(2);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}, {0, 20}}, 1)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD2", {{5, 25}, {5, 25}}, 1)).ok());
  const LinearInstanceValidator linear(&set);
  const Result<RtreeInstanceValidator> rtree =
      RtreeInstanceValidator::Build(&set);
  ASSERT_TRUE(rtree.ok());
  const License usage = MakeUsage(schema, "LU", {{6, 10}, {6, 10}}, 1);
  EXPECT_EQ(rtree->SatisfyingSet(usage), linear.SatisfyingSet(usage));
}

// Property: the R-tree backend and the linear backend agree on random
// license sets and random usage licenses, across dimensionalities.
class InstanceBackendAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(InstanceBackendAgreementTest, BackendsAgree) {
  const int dims = GetParam();
  const ConstraintSchema schema = IntervalSchema(dims);
  Rng rng(86000 + static_cast<uint64_t>(dims));
  for (int trial = 0; trial < 10; ++trial) {
    LicenseCatalog set(&schema);
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) {
      std::vector<std::pair<int64_t, int64_t>> ranges;
      for (int d = 0; d < dims; ++d) {
        const int64_t lo = rng.UniformInt(0, 80);
        ranges.push_back({lo, lo + rng.UniformInt(0, 40)});
      }
      ASSERT_TRUE(
          set.Add(MakeRedistribution(schema, "LD" + std::to_string(i), ranges,
                                     1))
              .ok());
    }
    const LinearInstanceValidator linear(&set);
    const Result<RtreeInstanceValidator> rtree =
        RtreeInstanceValidator::Build(&set);
    ASSERT_TRUE(rtree.ok());
    for (int q = 0; q < 50; ++q) {
      std::vector<std::pair<int64_t, int64_t>> ranges;
      for (int d = 0; d < dims; ++d) {
        const int64_t lo = rng.UniformInt(0, 110);
        ranges.push_back({lo, lo + rng.UniformInt(0, 20)});
      }
      const License usage = MakeUsage(schema, "LU", ranges, 1);
      EXPECT_EQ(rtree->SatisfyingSet(usage), linear.SatisfyingSet(usage));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dimensions, InstanceBackendAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 6));

TEST(InstanceValidatorTest, CategoricalDimensionsHandledExactly) {
  // Category bounding boxes over-approximate; the R-tree backend must still
  // return exact answers after confirmation.
  ConstraintSchema schema;
  ASSERT_TRUE(schema.AddIntervalDimension("T").ok());
  ASSERT_TRUE(
      schema.AddCategoricalDimension("R", CategoryUniverse::WorldRegions())
          .ok());
  LicenseCatalog set(&schema);
  const CategoryUniverse world = CategoryUniverse::WorldRegions();

  auto make = [&](const std::string& id, int64_t lo, int64_t hi,
                  const std::vector<std::string>& regions) {
    LicenseBuilder builder(&schema);
    builder.SetId(id)
        .SetContentKey("K")
        .SetType(LicenseType::kRedistribution)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(10)
        .SetInterval("T", lo, hi)
        .SetCategories("R", regions);
    return *builder.Build();
  };
  ASSERT_TRUE(set.Add(make("LD1", 0, 10, {"Asia"})).ok());
  ASSERT_TRUE(set.Add(make("LD2", 0, 10, {"Europe"})).ok());

  LicenseBuilder usage_builder(&schema);
  usage_builder.SetId("LU")
      .SetContentKey("K")
      .SetType(LicenseType::kUsage)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(1)
      .SetInterval("T", 2, 3)
      .SetCategories("R", {"India"});
  const License usage = *usage_builder.Build();

  const LinearInstanceValidator linear(&set);
  const Result<RtreeInstanceValidator> rtree =
      RtreeInstanceValidator::Build(&set);
  ASSERT_TRUE(rtree.ok());
  EXPECT_EQ(linear.SatisfyingSet(usage), testing::Mask(0b01));  // Asia only, not Europe.
  EXPECT_EQ(rtree->SatisfyingSet(usage), testing::Mask(0b01));
}

}  // namespace
}  // namespace geolic
