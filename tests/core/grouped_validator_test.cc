#include "validation/validate.h"
#include "core/grouped_validator.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/gain.h"
#include "test_util.h"
#include "workload/workload.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

using testing::IntervalSchema;
using testing::MakeRedistribution;

// Two disjoint clusters of licenses with a shared-budget structure.
LicenseCatalog TwoClusterSet(const ConstraintSchema& schema) {
  LicenseCatalog set(&schema);
  GEOLIC_CHECK(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 100)).ok());
  GEOLIC_CHECK(
      set.Add(MakeRedistribution(schema, "LD2", {{10, 30}}, 100)).ok());
  GEOLIC_CHECK(
      set.Add(MakeRedistribution(schema, "LD3", {{100, 120}}, 100)).ok());
  return set;
}

TEST(GroupedValidatorTest, CleanLogValidates) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = TwoClusterSet(schema);
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(testing::Mask(0b011), 50).ok());
  ASSERT_TRUE(tree.Insert(testing::Mask(0b100), 70).ok());
  const Result<GroupedValidationResult> result =
      ValidateGrouped(set, std::move(tree));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->report.all_valid());
  EXPECT_EQ(result->group_count, 2);
  EXPECT_EQ(result->group_sizes, (std::vector<int>{2, 1}));
  // (2^2 − 1) + (2^1 − 1) = 4 equations instead of 7.
  EXPECT_EQ(result->report.equations_evaluated, 4u);
}

TEST(GroupedValidatorTest, ViolationReportedInOriginalIndexes) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = TwoClusterSet(schema);
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(testing::Mask(0b100), 150).ok());  // L3 over its 100 budget.
  const Result<GroupedValidationResult> result =
      ValidateGrouped(set, std::move(tree));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->report.violations.size(), 1u);
  // L3 is local index 0 of group 1; the report must say original L3.
  EXPECT_EQ(result->report.violations[0].set, testing::Mask(0b100));
  EXPECT_EQ(result->report.violations[0].lhs, 150);
  EXPECT_EQ(result->report.violations[0].rhs, 100);
}

TEST(GroupedValidatorTest, FromLogConvenience) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = TwoClusterSet(schema);
  LogStore log;
  ASSERT_TRUE(log.Append(LogRecord{"LU1", testing::Mask(0b011), 60}).ok());
  ASSERT_TRUE(log.Append(LogRecord{"LU2", testing::Mask(0b001), 50}).ok());
  const Result<GroupedValidationResult> result =
      ValidateGroupedFromLog(set, log);
  ASSERT_TRUE(result.ok());
  // C⟨{L1}⟩ = 50 ≤ 100, C⟨{L1,L2}⟩ = 110 ≤ 200, C⟨{L2}⟩ = 0.
  EXPECT_TRUE(result->report.all_valid());
}

TEST(GroupedValidatorTest, TimingFieldsPopulated) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = TwoClusterSet(schema);
  const Result<GroupedValidationResult> result =
      ValidateGrouped(set, ValidationTree());
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->division_micros, 0.0);
  EXPECT_GE(result->validation_micros, 0.0);
}

TEST(GroupedValidatorTest, ZetaEngineMatchesTraversalEngine) {
  for (uint64_t seed : {8u, 9u}) {
    WorkloadConfig config = PaperSweepConfig(14, seed);
    config.num_records = 900;
    config.aggregate_min = 50;
    config.aggregate_max = 500;
    Result<Workload> workload = WorkloadGenerator(config).Generate();
    ASSERT_TRUE(workload.ok());
    Result<ValidationTree> tree1 =
        ValidationTree::BuildFromLog(workload->log);
    Result<ValidationTree> tree2 =
        ValidationTree::BuildFromLog(workload->log);
    ASSERT_TRUE(tree1.ok());
    ASSERT_TRUE(tree2.ok());
    const Result<GroupedValidationResult> traversal =
        ValidateGrouped(*workload->licenses, *std::move(tree1));
    const Result<GroupedValidationResult> zeta =
        ValidateGroupedZeta(*workload->licenses, *std::move(tree2));
    ASSERT_TRUE(traversal.ok());
    ASSERT_TRUE(zeta.ok());
    EXPECT_EQ(zeta->group_sizes, traversal->group_sizes);
    EXPECT_EQ(zeta->report.equations_evaluated,
              traversal->report.equations_evaluated);
    ASSERT_EQ(zeta->report.violations.size(),
              traversal->report.violations.size());
    for (size_t i = 0; i < zeta->report.violations.size(); ++i) {
      EXPECT_EQ(zeta->report.violations[i].set,
                traversal->report.violations[i].set);
      EXPECT_EQ(zeta->report.violations[i].lhs,
                traversal->report.violations[i].lhs);
      EXPECT_EQ(zeta->report.violations[i].rhs,
                traversal->report.violations[i].rhs);
    }
  }
}

// The paper's core correctness claim (Theorem 2): removing the redundant
// cross-group equations never changes the verdict. Property-tested on
// generated workloads: the grouped validator and the baseline exhaustive
// validator must agree on every violation.
class EquivalencePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EquivalencePropertyTest, GroupedMatchesBaseline) {
  const int n = GetParam();
  for (uint64_t seed : {1u, 2u, 3u}) {
    WorkloadConfig config = PaperSweepConfig(n, seed);
    config.num_records = 400;
    // Squeeze aggregates so violations actually occur in some runs.
    config.aggregate_min = 50;
    config.aggregate_max = 400;
    WorkloadGenerator generator(config);
    Result<Workload> workload = generator.Generate();
    ASSERT_TRUE(workload.ok());

    const Result<ValidationTree> baseline_tree =
        ValidationTree::BuildFromLog(workload->log);
    ASSERT_TRUE(baseline_tree.ok());
    const Result<ValidationReport> baseline = RunExhaustive(
        *baseline_tree, workload->licenses->AggregateCounts());
    ASSERT_TRUE(baseline.ok());

    Result<ValidationTree> grouped_tree =
        ValidationTree::BuildFromLog(workload->log);
    ASSERT_TRUE(grouped_tree.ok());
    const Result<GroupedValidationResult> grouped =
        ValidateGrouped(*workload->licenses, *std::move(grouped_tree));
    ASSERT_TRUE(grouped.ok());

    // Theorem 2: identical violation sets (the baseline also reports
    // redundant superset equations; every *group-internal* violation must
    // match, and every baseline violation must be implied by some grouped
    // violation — i.e. contain a violated group-internal set).
    //
    // Stronger, directly checkable form: violations whose set lies inside
    // one group must be identical on both sides.
    const LicenseGrouping grouping =
        LicenseGrouping::FromLicenses(*workload->licenses);
    std::vector<EquationResult> baseline_in_group;
    for (const EquationResult& violation : baseline->violations) {
      const int group = grouping.GroupOf((violation.set).Lowest());
      if (violation.set.IsSubsetOf(grouping.GroupMask(group))) {
        baseline_in_group.push_back(violation);
      }
    }
    auto by_set = [](const EquationResult& a, const EquationResult& b) {
      return a.set < b.set;
    };
    std::vector<EquationResult> grouped_violations =
        grouped->report.violations;
    std::sort(grouped_violations.begin(), grouped_violations.end(), by_set);
    std::sort(baseline_in_group.begin(), baseline_in_group.end(), by_set);
    ASSERT_EQ(grouped_violations.size(), baseline_in_group.size())
        << "n=" << n << " seed=" << seed;
    for (size_t i = 0; i < grouped_violations.size(); ++i) {
      EXPECT_EQ(grouped_violations[i].set, baseline_in_group[i].set);
      EXPECT_EQ(grouped_violations[i].lhs, baseline_in_group[i].lhs);
      EXPECT_EQ(grouped_violations[i].rhs, baseline_in_group[i].rhs);
    }

    // Overall verdict agrees (violated iff violated).
    EXPECT_EQ(baseline->all_valid(), grouped->report.all_valid());

    // Cross-check every baseline violation is explained by a group one.
    for (const EquationResult& violation : baseline->violations) {
      bool explained = false;
      for (const EquationResult& group_violation : grouped_violations) {
        if ((group_violation.set).IsSubsetOf(violation.set)) {
          explained = true;
          break;
        }
      }
      EXPECT_TRUE(explained) << "unexplained baseline violation "
                             << (violation.set).ToString();
    }

    // Equation-count bookkeeping matches the gain formula inputs.
    EXPECT_EQ(grouped->report.equations_evaluated,
              GroupedEquationCount(grouped->group_sizes));
    EXPECT_EQ(baseline->equations_evaluated,
              EquationCount(workload->licenses->size()));
  }
}

INSTANTIATE_TEST_SUITE_P(LicenseCounts, EquivalencePropertyTest,
                         ::testing::Values(1, 2, 4, 6, 8, 10, 12, 14));

}  // namespace
}  // namespace geolic
