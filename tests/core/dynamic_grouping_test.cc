#include "core/dynamic_grouping.h"

#include <gtest/gtest.h>

#include "core/overlap_graph.h"
#include "test_util.h"
#include "util/random.h"

namespace geolic {
namespace {

using testing::RandomRect;
using testing::Rect;

TEST(DynamicGroupingTest, StartsEmpty) {
  DynamicGrouping grouping;
  EXPECT_EQ(grouping.size(), 0);
  EXPECT_EQ(grouping.group_count(), 0);
  EXPECT_EQ(grouping.merges(), 0);
}

TEST(DynamicGroupingTest, IsolatedLicensesEachOwnGroup) {
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{100, 110}})).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{200, 210}})).ok());
  EXPECT_EQ(grouping.group_count(), 3);
  EXPECT_EQ(grouping.merges(), 0);
}

TEST(DynamicGroupingTest, OverlapJoinsGroup) {
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{5, 15}})).ok());
  EXPECT_EQ(grouping.group_count(), 1);
  EXPECT_EQ(grouping.GroupMaskOf(0), testing::Mask(0b11));
  EXPECT_EQ(grouping.GroupMaskOf(1), testing::Mask(0b11));
}

TEST(DynamicGroupingTest, BridgeLicenseMergesGroups) {
  // The paper's figure 6 narrative: a new license connected to licenses in
  // both existing groups collapses them into one.
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{100, 110}})).ok());
  EXPECT_EQ(grouping.group_count(), 2);
  ASSERT_TRUE(grouping.AddLicense(Rect({{5, 105}})).ok());  // Bridges both.
  EXPECT_EQ(grouping.group_count(), 1);
  EXPECT_EQ(grouping.merges(), 2);
  EXPECT_EQ(grouping.GroupMaskOf(0), testing::Mask(0b111));
}

TEST(DynamicGroupingTest, GroupCountCanStayGrowAndShrink) {
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());     // 1 group.
  EXPECT_EQ(grouping.group_count(), 1);
  ASSERT_TRUE(grouping.AddLicense(Rect({{50, 60}})).ok());    // Grows → 2.
  EXPECT_EQ(grouping.group_count(), 2);
  ASSERT_TRUE(grouping.AddLicense(Rect({{52, 58}})).ok());    // Stays → 2.
  EXPECT_EQ(grouping.group_count(), 2);
  ASSERT_TRUE(grouping.AddLicense(Rect({{5, 55}})).ok());     // Shrinks → 1.
  EXPECT_EQ(grouping.group_count(), 1);
}

TEST(DynamicGroupingTest, RejectsDimensionMismatchAndOverflow) {
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  EXPECT_FALSE(grouping.AddLicense(Rect({{0, 10}, {0, 10}})).ok());
  for (int i = 1; i < kMaxLicensesLarge; ++i) {
    ASSERT_TRUE(
        grouping.AddLicense(Rect({{i * 100, i * 100 + 10}})).ok());
  }
  EXPECT_EQ(grouping
                .AddLicense(Rect({{kMaxLicensesLarge * 100,
                                   kMaxLicensesLarge * 100 + 10}}))
                .status()
                .code(),
            StatusCode::kCapacityExceeded);
}

TEST(DynamicGroupingTest, ExpectedDimensionsCtorValidatesFirstLicense) {
  // Regression: the dimensionality check used to compare against the
  // previous license, so the FIRST insertion was never validated. With the
  // expected-dimensions constructor even license #1 must conform.
  DynamicGrouping grouping(2);
  EXPECT_FALSE(grouping.AddLicense(Rect({{0, 10}})).ok());
  EXPECT_EQ(grouping.size(), 0);
  EXPECT_EQ(grouping.group_count(), 0);
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}, {0, 10}})).ok());
  EXPECT_EQ(grouping.size(), 1);
}

TEST(DynamicGroupingTest, DefaultCtorLocksDimensionsOnFirstLicense) {
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}, {0, 10}})).ok());
  EXPECT_FALSE(grouping.AddLicense(Rect({{0, 10}})).ok());
  EXPECT_EQ(grouping.size(), 1);
}

TEST(DynamicGroupingTest, RemoveRenumbersDensely) {
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());     // 0
  ASSERT_TRUE(grouping.AddLicense(Rect({{5, 15}})).ok());     // 1: joins 0.
  ASSERT_TRUE(grouping.AddLicense(Rect({{100, 110}})).ok());  // 2: alone.
  ASSERT_TRUE(grouping.AddLicense(Rect({{200, 210}})).ok());  // 3
  ASSERT_TRUE(grouping.AddLicense(Rect({{205, 215}})).ok());  // 4: joins 3.
  ASSERT_EQ(grouping.group_count(), 3);
  ASSERT_TRUE(grouping.RemoveLicense(1).ok());
  // Survivors renumber densely (paper Algorithm 5): old 2→1, 3→2, 4→3.
  EXPECT_EQ(grouping.size(), 4);
  EXPECT_EQ(grouping.group_count(), 3);
  EXPECT_EQ(grouping.GroupMaskOf(0), testing::Mask(0b0001));
  EXPECT_EQ(grouping.GroupMaskOf(1), testing::Mask(0b0010));
  EXPECT_EQ(grouping.GroupMaskOf(2), testing::Mask(0b1100));
  EXPECT_EQ(grouping.GroupMaskOf(3), testing::Mask(0b1100));
}

TEST(DynamicGroupingTest, RemoveSplitsBridgedGroup) {
  // Inverse of the figure 6 merge: removing the bridge splits the group.
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{8, 20}})).ok());   // The bridge.
  ASSERT_TRUE(grouping.AddLicense(Rect({{18, 30}})).ok());
  ASSERT_EQ(grouping.group_count(), 1);
  ASSERT_TRUE(grouping.RemoveLicense(1).ok());
  EXPECT_EQ(grouping.size(), 2);
  EXPECT_EQ(grouping.group_count(), 2);
  EXPECT_EQ(grouping.GroupMaskOf(0), testing::Mask(0b01));
  EXPECT_EQ(grouping.GroupMaskOf(1), testing::Mask(0b10));
}

TEST(DynamicGroupingTest, RemoveRejectsOutOfRange) {
  DynamicGrouping grouping;
  EXPECT_FALSE(grouping.RemoveLicense(0).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  EXPECT_FALSE(grouping.RemoveLicense(-1).ok());
  EXPECT_FALSE(grouping.RemoveLicense(1).ok());
  EXPECT_EQ(grouping.size(), 1);
}

TEST(DynamicGroupingTest, RemoveToEmptyAndReuse) {
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{5, 15}})).ok());
  ASSERT_TRUE(grouping.RemoveLicense(1).ok());
  ASSERT_TRUE(grouping.RemoveLicense(0).ok());
  EXPECT_EQ(grouping.size(), 0);
  EXPECT_EQ(grouping.group_count(), 0);
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  EXPECT_EQ(grouping.size(), 1);
  EXPECT_EQ(grouping.group_count(), 1);
}

TEST(DynamicGroupingTest, QueriesDoNotMutate) {
  // Regression: read-side queries used to pay (and accumulate) per-call
  // work; repeated reads must return identical answers and leave the
  // structure untouched.
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{5, 15}})).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{100, 110}})).ok());
  const ComponentSet first = grouping.Components();
  const LicenseSet mask0 = grouping.GroupMaskOf(0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(grouping.Components().components, first.components);
    ASSERT_EQ(grouping.GroupMaskOf(0), mask0);
    ASSERT_EQ(grouping.group_count(), 2);
    ASSERT_EQ(grouping.size(), 3);
  }
}

TEST(DynamicGroupingTest, AddRemoveMatchesStaticRecomputation) {
  // Property: under random interleaved insertions and removals, the
  // incremental structure always equals a from-scratch recomputation.
  Rng rng(626262);
  for (int trial = 0; trial < 10; ++trial) {
    DynamicGrouping dynamic;
    std::vector<HyperRect> rects;
    for (int step = 0; step < 60; ++step) {
      if (rects.empty() || rng.Bernoulli(0.65)) {
        const HyperRect rect = RandomRect(&rng, 3, 60);
        ASSERT_TRUE(dynamic.AddLicense(rect).ok());
        rects.push_back(rect);
      } else {
        const int victim =
            static_cast<int>(rng.UniformIndex(rects.size()));
        ASSERT_TRUE(dynamic.RemoveLicense(victim).ok());
        rects.erase(rects.begin() + victim);
      }
      const ComponentSet expected =
          FindComponentsDfs(BuildOverlapGraphFromRects(rects));
      const ComponentSet actual = dynamic.Components();
      ASSERT_EQ(actual.components, expected.components)
          << "trial " << trial << " step " << step;
      ASSERT_EQ(actual.component_of, expected.component_of);
      ASSERT_EQ(dynamic.group_count(), expected.count());
    }
  }
}

TEST(DynamicGroupingTest, ComponentsMatchesStaticRecomputation) {
  // Property: after every insertion, Components() equals what a full
  // overlap-graph + DFS recomputation would produce.
  Rng rng(515151);
  for (int trial = 0; trial < 20; ++trial) {
    DynamicGrouping dynamic;
    std::vector<HyperRect> rects;
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) {
      const HyperRect rect = RandomRect(&rng, 3, 60);
      ASSERT_TRUE(dynamic.AddLicense(rect).ok());
      rects.push_back(rect);

      const ComponentSet expected =
          FindComponentsDfs(BuildOverlapGraphFromRects(rects));
      const ComponentSet actual = dynamic.Components();
      ASSERT_EQ(actual.components, expected.components)
          << "trial " << trial << " after " << i + 1 << " licenses";
      ASSERT_EQ(actual.component_of, expected.component_of);
      ASSERT_EQ(dynamic.group_count(), expected.count());
    }
  }
}

}  // namespace
}  // namespace geolic
