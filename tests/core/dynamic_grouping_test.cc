#include "core/dynamic_grouping.h"

#include <gtest/gtest.h>

#include "core/overlap_graph.h"
#include "test_util.h"
#include "util/random.h"

namespace geolic {
namespace {

using testing::RandomRect;
using testing::Rect;

TEST(DynamicGroupingTest, StartsEmpty) {
  DynamicGrouping grouping;
  EXPECT_EQ(grouping.size(), 0);
  EXPECT_EQ(grouping.group_count(), 0);
  EXPECT_EQ(grouping.merges(), 0);
}

TEST(DynamicGroupingTest, IsolatedLicensesEachOwnGroup) {
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{100, 110}})).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{200, 210}})).ok());
  EXPECT_EQ(grouping.group_count(), 3);
  EXPECT_EQ(grouping.merges(), 0);
}

TEST(DynamicGroupingTest, OverlapJoinsGroup) {
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{5, 15}})).ok());
  EXPECT_EQ(grouping.group_count(), 1);
  EXPECT_EQ(grouping.GroupMaskOf(0), testing::Mask(0b11));
  EXPECT_EQ(grouping.GroupMaskOf(1), testing::Mask(0b11));
}

TEST(DynamicGroupingTest, BridgeLicenseMergesGroups) {
  // The paper's figure 6 narrative: a new license connected to licenses in
  // both existing groups collapses them into one.
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  ASSERT_TRUE(grouping.AddLicense(Rect({{100, 110}})).ok());
  EXPECT_EQ(grouping.group_count(), 2);
  ASSERT_TRUE(grouping.AddLicense(Rect({{5, 105}})).ok());  // Bridges both.
  EXPECT_EQ(grouping.group_count(), 1);
  EXPECT_EQ(grouping.merges(), 2);
  EXPECT_EQ(grouping.GroupMaskOf(0), testing::Mask(0b111));
}

TEST(DynamicGroupingTest, GroupCountCanStayGrowAndShrink) {
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());     // 1 group.
  EXPECT_EQ(grouping.group_count(), 1);
  ASSERT_TRUE(grouping.AddLicense(Rect({{50, 60}})).ok());    // Grows → 2.
  EXPECT_EQ(grouping.group_count(), 2);
  ASSERT_TRUE(grouping.AddLicense(Rect({{52, 58}})).ok());    // Stays → 2.
  EXPECT_EQ(grouping.group_count(), 2);
  ASSERT_TRUE(grouping.AddLicense(Rect({{5, 55}})).ok());     // Shrinks → 1.
  EXPECT_EQ(grouping.group_count(), 1);
}

TEST(DynamicGroupingTest, RejectsDimensionMismatchAndOverflow) {
  DynamicGrouping grouping;
  ASSERT_TRUE(grouping.AddLicense(Rect({{0, 10}})).ok());
  EXPECT_FALSE(grouping.AddLicense(Rect({{0, 10}, {0, 10}})).ok());
  for (int i = 1; i < kMaxLicensesLarge; ++i) {
    ASSERT_TRUE(
        grouping.AddLicense(Rect({{i * 100, i * 100 + 10}})).ok());
  }
  EXPECT_EQ(grouping
                .AddLicense(Rect({{kMaxLicensesLarge * 100,
                                   kMaxLicensesLarge * 100 + 10}}))
                .status()
                .code(),
            StatusCode::kCapacityExceeded);
}

TEST(DynamicGroupingTest, ComponentsMatchesStaticRecomputation) {
  // Property: after every insertion, Components() equals what a full
  // overlap-graph + DFS recomputation would produce.
  Rng rng(515151);
  for (int trial = 0; trial < 20; ++trial) {
    DynamicGrouping dynamic;
    std::vector<HyperRect> rects;
    const int n = static_cast<int>(rng.UniformInt(1, 40));
    for (int i = 0; i < n; ++i) {
      const HyperRect rect = RandomRect(&rng, 3, 60);
      ASSERT_TRUE(dynamic.AddLicense(rect).ok());
      rects.push_back(rect);

      const ComponentSet expected =
          FindComponentsDfs(BuildOverlapGraphFromRects(rects));
      const ComponentSet actual = dynamic.Components();
      ASSERT_EQ(actual.components, expected.components)
          << "trial " << trial << " after " << i + 1 << " licenses";
      ASSERT_EQ(actual.component_of, expected.component_of);
      ASSERT_EQ(dynamic.group_count(), expected.count());
    }
  }
}

}  // namespace
}  // namespace geolic
