#include "core/incremental_auditor.h"

#include <map>

#include <gtest/gtest.h>

#include "core/grouped_validator.h"
#include "test_util.h"
#include "workload/workload.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;

LicenseCatalog TwoGroupSet(const ConstraintSchema& schema) {
  LicenseCatalog set(&schema);
  GEOLIC_CHECK(set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 100)).ok());
  GEOLIC_CHECK(
      set.Add(MakeRedistribution(schema, "LD2", {{10, 30}}, 80)).ok());
  GEOLIC_CHECK(
      set.Add(MakeRedistribution(schema, "LD3", {{100, 120}}, 50)).ok());
  return set;
}

TEST(IncrementalAuditorTest, CreateRequiresLicenses) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog empty(&schema);
  EXPECT_FALSE(IncrementalAuditor::Create(&empty).ok());
  EXPECT_FALSE(IncrementalAuditor::Create(nullptr).ok());
}

TEST(IncrementalAuditorTest, CleanBatchReportsNoViolations) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = TwoGroupSet(schema);
  Result<IncrementalAuditor> auditor = IncrementalAuditor::Create(&set);
  ASSERT_TRUE(auditor.ok());
  const Result<ValidationReport> report = auditor->IngestBatch(
      {LogRecord{"LU1", testing::Mask(0b011), 50}, LogRecord{"LU2", testing::Mask(0b100), 30}});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->all_valid());
  // Dirty equations: supersets of {L1,L2} within group {L1,L2} → 1;
  // supersets of {L3} within {L3} → 1.
  EXPECT_EQ(report->equations_evaluated, 2u);
  EXPECT_EQ(auditor->records_ingested(), 2u);
}

TEST(IncrementalAuditorTest, DetectsViolationInBatch) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = TwoGroupSet(schema);
  Result<IncrementalAuditor> auditor = IncrementalAuditor::Create(&set);
  ASSERT_TRUE(auditor.ok());
  ASSERT_TRUE(auditor->IngestBatch({LogRecord{"LU1", testing::Mask(0b100), 40}}).ok());
  const Result<ValidationReport> report =
      auditor->IngestBatch({LogRecord{"LU2", testing::Mask(0b100), 20}});
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->violations.size(), 1u);
  EXPECT_EQ(report->violations[0].set, testing::Mask(0b100));
  EXPECT_EQ(report->violations[0].lhs, 60);
  EXPECT_EQ(report->violations[0].rhs, 50);
}

TEST(IncrementalAuditorTest, DirtySeedDeduplication) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = TwoGroupSet(schema);
  Result<IncrementalAuditor> auditor = IncrementalAuditor::Create(&set);
  ASSERT_TRUE(auditor.ok());
  // Ten records with the same set → the dirty set is still just the two
  // supersets of {L1} within group {L1,L2}.
  std::vector<LogRecord> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(LogRecord{"LU", testing::Mask(0b001), 1});
  }
  const Result<ValidationReport> report = auditor->IngestBatch(batch);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->equations_evaluated, 2u);  // {L1}, {L1,L2}.
}

TEST(IncrementalAuditorTest, RejectsMalformedRecords) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog set = TwoGroupSet(schema);
  Result<IncrementalAuditor> auditor = IncrementalAuditor::Create(&set);
  ASSERT_TRUE(auditor.ok());
  EXPECT_FALSE(auditor->IngestBatch({LogRecord{"LU", testing::Mask(0), 5}}).ok());
  EXPECT_FALSE(auditor->IngestBatch({LogRecord{"LU", testing::Mask(0b1), 0}}).ok());
  EXPECT_FALSE(
      auditor->IngestBatch({LogRecord{"LU", LicenseSet::Singleton(40), 5}}).ok());
}

// Property: over any batch split of a generated log, the cumulative
// incremental violations equal a from-scratch grouped audit, and the
// last-reported LHS per set equals the final audit LHS.
class IncrementalEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalEquivalenceTest, CumulativeMatchesFullAudit) {
  const int batch_size = GetParam();
  WorkloadConfig config = PaperSweepConfig(10, 123);
  config.num_records = 700;
  config.aggregate_min = 50;
  config.aggregate_max = 500;  // Tight → violations.
  Result<Workload> workload = WorkloadGenerator(config).Generate();
  ASSERT_TRUE(workload.ok());

  Result<IncrementalAuditor> auditor =
      IncrementalAuditor::Create(workload->licenses.get());
  ASSERT_TRUE(auditor.ok());

  std::map<LicenseSet, EquationResult> last_reported;
  const auto& records = workload->log.records();
  for (size_t start = 0; start < records.size();
       start += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(records.size(), start + static_cast<size_t>(batch_size));
    const std::vector<LogRecord> batch(records.begin() + static_cast<long>(
                                           start),
                                       records.begin() + static_cast<long>(
                                           end));
    const Result<ValidationReport> report = auditor->IngestBatch(batch);
    ASSERT_TRUE(report.ok());
    for (const EquationResult& violation : report->violations) {
      last_reported[violation.set] = violation;
    }
  }
  EXPECT_EQ(auditor->records_ingested(), records.size());

  const Result<GroupedValidationResult> full =
      ValidateGroupedFromLog(*workload->licenses, workload->log);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(last_reported.size(), full->report.violations.size());
  for (const EquationResult& violation : full->report.violations) {
    const auto it = last_reported.find(violation.set);
    ASSERT_NE(it, last_reported.end())
        << "missing " << (violation.set).ToString();
    EXPECT_EQ(it->second.lhs, violation.lhs);
    EXPECT_EQ(it->second.rhs, violation.rhs);
  }
  // The incremental path evaluated far fewer equations in total than
  // (number of batches) × Σ(2^N_k − 1) would have.
  EXPECT_GT(auditor->equations_evaluated_total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, IncrementalEquivalenceTest,
                         ::testing::Values(1, 7, 50, 700));

}  // namespace
}  // namespace geolic
