#include "core/grouping.h"

#include <gtest/gtest.h>

#include "core/overlap_graph.h"
#include "test_util.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::Rect;

// License set shaped like the paper's figure 2 in one interval dimension
// per axis: L1, L2, L4 mutually linked through overlaps, L3-L5 linked,
// no cross links.
LicenseCatalog Figure2Set(const ConstraintSchema& schema) {
  LicenseCatalog set(&schema);
  GEOLIC_CHECK(set.Add(MakeRedistribution(schema, "LD1", {{0, 20}, {0, 20}},
                                          2000))
                   .ok());
  GEOLIC_CHECK(set.Add(MakeRedistribution(schema, "LD2", {{10, 30}, {5, 25}},
                                          1000))
                   .ok());
  GEOLIC_CHECK(set.Add(MakeRedistribution(schema, "LD3",
                                          {{100, 130}, {0, 20}}, 3000))
                   .ok());
  GEOLIC_CHECK(set.Add(MakeRedistribution(schema, "LD4", {{15, 40}, {10, 35}},
                                          4000))
                   .ok());
  GEOLIC_CHECK(set.Add(MakeRedistribution(schema, "LD5",
                                          {{120, 150}, {10, 30}}, 2000))
                   .ok());
  return set;
}

TEST(OverlapGraphTest, BuildsEdgesFromGeometry) {
  const ConstraintSchema schema = IntervalSchema(2);
  const LicenseCatalog set = Figure2Set(schema);
  const AdjacencyMatrix graph = BuildOverlapGraph(set);
  EXPECT_TRUE(graph.HasEdge(0, 1));   // L1-L2.
  EXPECT_TRUE(graph.HasEdge(0, 3));   // L1-L4.
  EXPECT_TRUE(graph.HasEdge(1, 3));   // L2-L4.
  EXPECT_TRUE(graph.HasEdge(2, 4));   // L3-L5.
  EXPECT_FALSE(graph.HasEdge(0, 2));
  EXPECT_FALSE(graph.HasEdge(1, 4));
  EXPECT_FALSE(graph.HasEdge(3, 4));
}

TEST(OverlapGraphTest, FromRectsMatchesFromLicenses) {
  const ConstraintSchema schema = IntervalSchema(2);
  const LicenseCatalog set = Figure2Set(schema);
  std::vector<HyperRect> rects;
  for (int i = 0; i < set.size(); ++i) {
    rects.push_back(set.at(i).rect());
  }
  const AdjacencyMatrix a = BuildOverlapGraph(set);
  const AdjacencyMatrix b = BuildOverlapGraphFromRects(rects);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(a.HasEdge(i, j), b.HasEdge(i, j));
    }
  }
}

TEST(LicenseGroupingTest, GroupsFigure2IntoTwo) {
  const ConstraintSchema schema = IntervalSchema(2);
  const LicenseCatalog set = Figure2Set(schema);
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(set);
  ASSERT_EQ(grouping.group_count(), 2);
  EXPECT_EQ(grouping.num_licenses(), 5);
  EXPECT_EQ(grouping.GroupMask(0), testing::Mask(0b01011));  // {L1, L2, L4}.
  EXPECT_EQ(grouping.GroupMask(1), testing::Mask(0b10100));  // {L3, L5}.
  EXPECT_EQ(grouping.GroupSize(0), 3);
  EXPECT_EQ(grouping.GroupSize(1), 2);
  EXPECT_EQ(grouping.GroupOf(0), 0);
  EXPECT_EQ(grouping.GroupOf(2), 1);
  EXPECT_EQ(grouping.GroupOf(4), 1);
}

TEST(LicenseGroupingTest, PositionsMatchAlgorithm5) {
  const ConstraintSchema schema = IntervalSchema(2);
  const LicenseGrouping grouping =
      LicenseGrouping::FromLicenses(Figure2Set(schema));
  // Algorithm 5's example: position_2 = (0, 0, 1, 0, 2) — L3 → 1, L5 → 2
  // (1-based), i.e. local positions 0 and 1 here.
  EXPECT_EQ(grouping.PositionOf(2), 0);
  EXPECT_EQ(grouping.PositionOf(4), 1);
  // Group 1: L1→0, L2→1, L4→2.
  EXPECT_EQ(grouping.PositionOf(0), 0);
  EXPECT_EQ(grouping.PositionOf(1), 1);
  EXPECT_EQ(grouping.PositionOf(3), 2);
  // Round trips.
  EXPECT_EQ(grouping.OriginalIndexOf(0, 2), 3);
  EXPECT_EQ(grouping.OriginalIndexOf(1, 1), 4);
}

TEST(LicenseGroupingTest, MaskTranslation) {
  const ConstraintSchema schema = IntervalSchema(2);
  const LicenseGrouping grouping =
      LicenseGrouping::FromLicenses(Figure2Set(schema));
  // Local {pos0, pos2} of group 0 = original {L1, L4}.
  EXPECT_EQ(grouping.LocalToOriginalMask(0, testing::Mask(0b101)), testing::Mask(0b01001));
  EXPECT_EQ(grouping.LocalToOriginalMask(1, testing::Mask(0b11)), testing::Mask(0b10100));
  // Inverse.
  EXPECT_EQ(*grouping.OriginalToLocalMask(0, testing::Mask(0b01001)), testing::Mask(0b101));
  EXPECT_EQ(*grouping.OriginalToLocalMask(1, testing::Mask(0b10100)), testing::Mask(0b11));
  // Original mask crossing groups is rejected.
  EXPECT_FALSE(grouping.OriginalToLocalMask(0, testing::Mask(0b00101)).ok());
  EXPECT_FALSE(grouping.OriginalToLocalMask(5, testing::Mask(0b1)).ok());
}

TEST(LicenseGroupingTest, GroupAggregatesFollowsLocalOrder) {
  const ConstraintSchema schema = IntervalSchema(2);
  const LicenseCatalog set = Figure2Set(schema);
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(set);
  const std::vector<int64_t> aggregates = set.AggregateCounts();
  // Group 0 = {L1, L2, L4} → A_1 = (2000, 1000, 4000).
  EXPECT_EQ(*grouping.GroupAggregates(0, aggregates),
            (std::vector<int64_t>{2000, 1000, 4000}));
  // Group 1 = {L3, L5} → A_2 = (3000, 2000), the paper's Algorithm 5 walk.
  EXPECT_EQ(*grouping.GroupAggregates(1, aggregates),
            (std::vector<int64_t>{3000, 2000}));
  EXPECT_FALSE(grouping.GroupAggregates(7, aggregates).ok());
  EXPECT_FALSE(grouping.GroupAggregates(0, {1, 2}).ok());
}

TEST(LicenseGroupingTest, SingleLicense) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "LD1", {{0, 10}}, 10)).ok());
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(set);
  EXPECT_EQ(grouping.group_count(), 1);
  EXPECT_EQ(grouping.GroupSize(0), 1);
  EXPECT_EQ(grouping.PositionOf(0), 0);
}

TEST(LicenseGroupingTest, AllDisjointLicensesEachOwnGroup) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(set.Add(MakeRedistribution(schema, "LD" + std::to_string(i),
                                           {{i * 100, i * 100 + 50}}, 10))
                    .ok());
  }
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(set);
  EXPECT_EQ(grouping.group_count(), 6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(grouping.GroupSize(i), 1);
    EXPECT_EQ(grouping.PositionOf(i), 0);
  }
}

TEST(LicenseGroupingTest, FromRects) {
  const std::vector<HyperRect> rects = {
      Rect({{0, 10}}), Rect({{5, 15}}), Rect({{100, 110}})};
  const LicenseGrouping grouping = LicenseGrouping::FromRects(rects);
  EXPECT_EQ(grouping.group_count(), 2);
  EXPECT_EQ(grouping.GroupMask(0), testing::Mask(0b011));
  EXPECT_EQ(grouping.GroupMask(1), testing::Mask(0b100));
}

}  // namespace
}  // namespace geolic
