#include "core/capacity.h"

#include <gtest/gtest.h>

#include "core/online_validator.h"
#include "test_util.h"
#include "workload/workload.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

TEST(CapacityTest, FreshSetQuotesFullBudget) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 100)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD2", {{10, 30}}, 50)).ok());
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(set);
  ValidationTree tree;
  const Result<CapacityQuote> quote =
      RemainingCapacity(set, grouping, tree, testing::Mask(0b01));
  ASSERT_TRUE(quote.ok());
  // Binding equation for {L1}: A=100 (the pair equation has slack 150).
  EXPECT_EQ(quote->remaining, 100);
  EXPECT_EQ(quote->binding_set, testing::Mask(0b01));
}

TEST(CapacityTest, SharedBudgetBinds) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 100)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD2", {{10, 30}}, 50)).ok());
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(set);
  ValidationTree tree;
  // 120 already issued against {L1,L2}: pair equation slack = 150−120=30,
  // {L1} equation slack stays 100 (the 120 isn't attributable to L1 only).
  ASSERT_TRUE(tree.Insert(testing::Mask(0b11), 120).ok());
  const Result<CapacityQuote> quote =
      RemainingCapacity(set, grouping, tree, testing::Mask(0b01));
  ASSERT_TRUE(quote.ok());
  EXPECT_EQ(quote->remaining, 30);
  EXPECT_EQ(quote->binding_set, testing::Mask(0b11));
  EXPECT_EQ(quote->binding_slack, 30);
}

TEST(CapacityTest, ViolatedEquationQuotesZero) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 100)).ok());
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(set);
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(testing::Mask(0b1), 130).ok());
  const Result<CapacityQuote> quote =
      RemainingCapacity(set, grouping, tree, testing::Mask(0b1));
  ASSERT_TRUE(quote.ok());
  EXPECT_EQ(quote->remaining, 0);
  EXPECT_EQ(quote->binding_slack, -30);
}

TEST(CapacityTest, RejectsBadSets) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD1", {{0, 20}}, 100)).ok());
  ASSERT_TRUE(
      set.Add(MakeRedistribution(schema, "LD2", {{100, 120}}, 50)).ok());
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(set);
  ValidationTree tree;
  EXPECT_FALSE(RemainingCapacity(set, grouping, tree, testing::Mask(0)).ok());
  EXPECT_FALSE(
      RemainingCapacity(set, grouping, tree, LicenseSet::Singleton(9)).ok());
  // {L1, L2} spans the two (disjoint) groups.
  EXPECT_FALSE(RemainingCapacity(set, grouping, tree, testing::Mask(0b11)).ok());
}

// Property: the quote is exactly the acceptance threshold of the online
// validator — a usage license with count == remaining is accepted, one
// with remaining + 1 is rejected.
TEST(CapacityPropertyTest, QuoteMatchesOnlineAcceptanceBoundary) {
  for (uint64_t seed : {3u, 4u, 5u}) {
    WorkloadConfig config = PaperSweepConfig(10, seed);
    config.num_records = 0;
    config.aggregate_min = 100;
    config.aggregate_max = 400;
    WorkloadGenerator generator(config);
    Result<Workload> workload = generator.GenerateLicensesOnly();
    ASSERT_TRUE(workload.ok());
    Result<OnlineValidator> online =
        OnlineValidator::Create(workload->licenses.get());
    ASSERT_TRUE(online.ok());

    // Spend some budget via accepted issues.
    Rng rng(seed);
    for (int i = 0; i < 300; ++i) {
      const int parent = static_cast<int>(
          rng.UniformInt(0, workload->licenses->size() - 1));
      (void)*online->TryIssue(
          generator.DrawUsageLicense(*workload, parent, &rng, i));
    }

    // For random usage rects, the capacity quote equals the acceptance
    // boundary.
    const LinearInstanceValidator instance(workload->licenses.get());
    for (int trial = 0; trial < 40; ++trial) {
      const int parent = static_cast<int>(
          rng.UniformInt(0, workload->licenses->size() - 1));
      const License probe =
          generator.DrawUsageLicense(*workload, parent, &rng, 10000 + trial);
      const LicenseSet set = instance.SatisfyingSet(probe);
      ASSERT_FALSE(set.Empty());
      const Result<CapacityQuote> quote = RemainingCapacity(
          *workload->licenses, online->grouping(), online->tree(), set);
      ASSERT_TRUE(quote.ok());
      if (quote->remaining == 0) {
        continue;  // Nothing issuable; rejection is covered below anyway.
      }
      // Exactly `remaining` fits…
      License at_boundary(probe.id(), probe.content_key(), probe.type(),
                          probe.permission(), probe.rect(),
                          quote->remaining);
      // …probe without committing: use a scratch validator seeded with the
      // same history.
      Result<OnlineValidator> scratch = OnlineValidator::CreateWithHistory(
          workload->licenses.get(), OnlineValidatorOptions(), online->log());
      ASSERT_TRUE(scratch.ok());
      EXPECT_TRUE(scratch->TryIssue(at_boundary)->accepted());
      License past_boundary(probe.id(), probe.content_key(), probe.type(),
                            probe.permission(), probe.rect(),
                            quote->remaining + 1);
      Result<OnlineValidator> scratch2 = OnlineValidator::CreateWithHistory(
          workload->licenses.get(), OnlineValidatorOptions(), online->log());
      ASSERT_TRUE(scratch2.ok());
      EXPECT_FALSE(scratch2->TryIssue(past_boundary)->accepted());
    }
  }
}

TEST(MinimalViolationsTest, FiltersSupersetViolations) {
  const std::vector<EquationResult> violations = {
      {testing::Mask(0b001), 50, 40}, {testing::Mask(0b011), 90, 80}, {testing::Mask(0b100), 20, 10}, {testing::Mask(0b110), 60, 50}};
  const std::vector<EquationResult> minimal =
      MinimalViolations(violations);
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0].set, testing::Mask(0b001));  // {L1,L2} dropped (⊇ {L1}).
  EXPECT_EQ(minimal[1].set, testing::Mask(0b100));  // {L2,L3} dropped (⊇ {L3}).
}

TEST(MinimalViolationsTest, IncomparableSetsAllKept) {
  const std::vector<EquationResult> violations = {
      {testing::Mask(0b011), 90, 80}, {testing::Mask(0b110), 60, 50}};
  EXPECT_EQ(MinimalViolations(violations).size(), 2u);
  EXPECT_TRUE(MinimalViolations({}).empty());
}

}  // namespace
}  // namespace geolic
