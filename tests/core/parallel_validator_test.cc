#include "validation/validate.h"
#include "core/parallel_validator.h"

#include <gtest/gtest.h>

#include "workload/workload.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

TEST(ParallelValidatorTest, EmptyInputs) {
  ValidationTree tree;
  const Result<ValidationReport> report =
      ValidateExhaustiveParallel(tree, {}, 4);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->all_valid());
}

TEST(ParallelValidatorTest, RejectsBadInputs) {
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(LicenseSet::Singleton(3), 1).ok());
  EXPECT_FALSE(ValidateExhaustiveParallel(tree, {10, 10}, 4).ok());
  EXPECT_FALSE(
      ValidateExhaustiveParallel(tree, std::vector<int64_t>(65, 1), 4).ok());
}

// Property: the parallel exhaustive validator produces a byte-identical
// report to the sequential one, for every thread count.
class ParallelEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquivalenceTest, MatchesSequential) {
  const int threads = GetParam();
  for (int n : {1, 2, 5, 9, 13}) {
    WorkloadConfig config = PaperSweepConfig(n, 37);
    config.num_records = 600;
    config.aggregate_min = 50;
    config.aggregate_max = 600;  // Violations likely.
    Result<Workload> workload = WorkloadGenerator(config).Generate();
    ASSERT_TRUE(workload.ok());
    const Result<ValidationTree> tree =
        ValidationTree::BuildFromLog(workload->log);
    ASSERT_TRUE(tree.ok());
    const std::vector<int64_t> aggregates =
        workload->licenses->AggregateCounts();

    const Result<ValidationReport> sequential =
        RunExhaustive(*tree, aggregates);
    const Result<ValidationReport> parallel =
        ValidateExhaustiveParallel(*tree, aggregates, threads);
    ASSERT_TRUE(sequential.ok());
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->equations_evaluated,
              sequential->equations_evaluated);
    EXPECT_EQ(parallel->nodes_visited, sequential->nodes_visited);
    ASSERT_EQ(parallel->violations.size(), sequential->violations.size());
    for (size_t i = 0; i < parallel->violations.size(); ++i) {
      EXPECT_EQ(parallel->violations[i].set, sequential->violations[i].set);
      EXPECT_EQ(parallel->violations[i].lhs, sequential->violations[i].lhs);
      EXPECT_EQ(parallel->violations[i].rhs, sequential->violations[i].rhs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelEquivalenceTest,
                         ::testing::Values(1, 2, 3, 8));

TEST(ParallelGroupedTest, MatchesSequentialGrouped) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    WorkloadConfig config = PaperSweepConfig(12, seed);
    config.num_records = 900;
    config.aggregate_min = 50;
    config.aggregate_max = 600;
    Result<Workload> workload = WorkloadGenerator(config).Generate();
    ASSERT_TRUE(workload.ok());

    Result<ValidationTree> tree1 =
        ValidationTree::BuildFromLog(workload->log);
    Result<ValidationTree> tree2 =
        ValidationTree::BuildFromLog(workload->log);
    ASSERT_TRUE(tree1.ok());
    ASSERT_TRUE(tree2.ok());

    const Result<GroupedValidationResult> sequential =
        ValidateGrouped(*workload->licenses, *std::move(tree1));
    const Result<GroupedValidationResult> parallel = ValidateGroupedParallel(
        *workload->licenses, *std::move(tree2), 4);
    ASSERT_TRUE(sequential.ok());
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->group_count, sequential->group_count);
    EXPECT_EQ(parallel->group_sizes, sequential->group_sizes);
    EXPECT_EQ(parallel->report.equations_evaluated,
              sequential->report.equations_evaluated);
    ASSERT_EQ(parallel->report.violations.size(),
              sequential->report.violations.size());
    for (size_t i = 0; i < parallel->report.violations.size(); ++i) {
      EXPECT_EQ(parallel->report.violations[i].set,
                sequential->report.violations[i].set);
      EXPECT_EQ(parallel->report.violations[i].lhs,
                sequential->report.violations[i].lhs);
    }
  }
}

}  // namespace
}  // namespace geolic
