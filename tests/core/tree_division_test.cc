#include "core/tree_division.h"

#include <gtest/gtest.h>

#include "validation/exhaustive_validator.h"
#include "validation/validate.h"
#include "util/random.h"

#include "test_util.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

// Components {L1, L2, L4} and {L3, L5} (the paper's figure 2 groups).
LicenseGrouping PaperGrouping() {
  ComponentSet components;
  components.components = {testing::Mask(0b01011), testing::Mask(0b10100)};
  components.component_of = {0, 0, 1, 0, 1};
  return LicenseGrouping::FromComponents(std::move(components));
}

// The paper's figure 1 validation tree.
ValidationTree PaperTree() {
  ValidationTree tree;
  GEOLIC_CHECK(tree.Insert(testing::Mask(0b00011), 840).ok());
  GEOLIC_CHECK(tree.Insert(testing::Mask(0b00010), 400).ok());
  GEOLIC_CHECK(tree.Insert(testing::Mask(0b01011), 30).ok());
  GEOLIC_CHECK(tree.Insert(testing::Mask(0b10100), 800).ok());
  GEOLIC_CHECK(tree.Insert(testing::Mask(0b10000), 20).ok());
  return tree;
}

TEST(TreeDivisionTest, DividesPaperTreeIntoFigure4) {
  const LicenseGrouping grouping = PaperGrouping();
  const Result<std::vector<ValidationTree>> parts =
      DivideValidationTree(PaperTree(), grouping);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 2u);

  // First tree: branches L1→L2(840)→L4(30) and L2(400); still original
  // indexes (figure 4, before modification).
  const ValidationTree& first = (*parts)[0];
  EXPECT_EQ(first.CountOf(testing::Mask(0b00011)), 840);
  EXPECT_EQ(first.CountOf(testing::Mask(0b00010)), 400);
  EXPECT_EQ(first.CountOf(testing::Mask(0b01011)), 30);
  EXPECT_EQ(first.NodeCount(), 4u);
  EXPECT_TRUE(first.CheckInvariants().ok());

  // Second tree: L3→L5(800) and L5(20).
  const ValidationTree& second = (*parts)[1];
  EXPECT_EQ(second.CountOf(testing::Mask(0b10100)), 800);
  EXPECT_EQ(second.CountOf(testing::Mask(0b10000)), 20);
  EXPECT_EQ(second.NodeCount(), 3u);
  EXPECT_TRUE(second.CheckInvariants().ok());
}

TEST(TreeDivisionTest, NoNodesCreatedOrLost) {
  // The paper's figure 10 claim: division creates no nodes beyond the g
  // roots, so total node count is preserved.
  ValidationTree original = PaperTree();
  const size_t original_nodes = original.NodeCount();
  const int64_t original_total = original.TotalCount();
  const Result<std::vector<ValidationTree>> parts =
      DivideValidationTree(std::move(original), PaperGrouping());
  ASSERT_TRUE(parts.ok());
  size_t total_nodes = 0;
  int64_t total_count = 0;
  for (const ValidationTree& part : *parts) {
    total_nodes += part.NodeCount();
    total_count += part.TotalCount();
  }
  EXPECT_EQ(total_nodes, original_nodes);
  EXPECT_EQ(total_count, original_total);
}

TEST(TreeDivisionTest, ReindexProducesFigure5) {
  const LicenseGrouping grouping = PaperGrouping();
  Result<std::vector<ValidationTree>> parts =
      DivideValidationTree(PaperTree(), grouping);
  ASSERT_TRUE(parts.ok());
  ASSERT_TRUE(ReindexTree(grouping, 1, &(*parts)[1]).ok());
  // Figure 5: indexes 3 and 5 become 1 and 2 (0-based 0 and 1 here).
  const ValidationTree& second = (*parts)[1];
  EXPECT_EQ(second.CountOf(testing::Mask(0b01)), 0);    // L3 → local L1, prefix node.
  EXPECT_EQ(second.CountOf(testing::Mask(0b11)), 800);  // {L3,L5} → local {L1,L2}.
  EXPECT_EQ(second.CountOf(testing::Mask(0b10)), 20);   // {L5} → local {L2}.
  EXPECT_TRUE(second.CheckInvariants().ok());
}

TEST(TreeDivisionTest, DivideAndReindexProducesValidatableParts) {
  const LicenseGrouping grouping = PaperGrouping();
  const std::vector<int64_t> aggregates = {2000, 1000, 3000, 4000, 2000};
  const Result<DividedTrees> divided =
      DivideAndReindex(PaperTree(), grouping, aggregates);
  ASSERT_TRUE(divided.ok());
  ASSERT_EQ(divided->trees.size(), 2u);
  EXPECT_EQ(divided->aggregates[0], (std::vector<int64_t>{2000, 1000, 4000}));
  EXPECT_EQ(divided->aggregates[1], (std::vector<int64_t>{3000, 2000}));

  // Each (tree, A_k) pair plugs into Algorithm 2.
  const Result<ValidationReport> first =
      RunExhaustive(divided->trees[0], divided->aggregates[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->equations_evaluated, 7u);  // 2^3 - 1.
  EXPECT_TRUE(first->all_valid());
  const Result<ValidationReport> second =
      RunExhaustive(divided->trees[1], divided->aggregates[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->equations_evaluated, 3u);  // 2^2 - 1.
  EXPECT_TRUE(second->all_valid());
}

TEST(TreeDivisionTest, RejectsBranchSpanningGroups) {
  // A log set {L1, L3} crosses the two groups — impossible for honest logs
  // (Theorem 1) and rejected by division.
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(testing::Mask(0b00101), 10).ok());
  const Result<std::vector<ValidationTree>> parts =
      DivideValidationTree(std::move(tree), PaperGrouping());
  ASSERT_FALSE(parts.ok());
  EXPECT_EQ(parts.status().code(), StatusCode::kInternal);
}

TEST(TreeDivisionTest, RejectsUnknownLicenseIndex) {
  ValidationTree tree;
  ASSERT_TRUE(tree.Insert(LicenseSet::Singleton(9), 10).ok());
  const Result<std::vector<ValidationTree>> parts =
      DivideValidationTree(std::move(tree), PaperGrouping());
  EXPECT_FALSE(parts.ok());
}

TEST(TreeDivisionTest, EmptyTreeDividesIntoEmptyParts) {
  const Result<std::vector<ValidationTree>> parts =
      DivideValidationTree(ValidationTree(), PaperGrouping());
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 2u);
  EXPECT_EQ((*parts)[0].NodeCount(), 0u);
  EXPECT_EQ((*parts)[1].NodeCount(), 0u);
}

TEST(TreeDivisionTest, ReindexRejectsBadGroupIndex) {
  ValidationTree tree;
  EXPECT_FALSE(ReindexTree(PaperGrouping(), 9, &tree).ok());
  EXPECT_FALSE(ReindexTree(PaperGrouping(), -1, &tree).ok());
}

// Property: on random logs consistent with a random grouping, division +
// reindex preserves every per-group equation LHS.
TEST(TreeDivisionPropertyTest, LhsPreservedUnderDivision) {
  Rng rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    // Random partition of 12 licenses into 1..4 groups.
    const int n = 12;
    const int g = static_cast<int>(rng.UniformInt(1, 4));
    ComponentSet components;
    components.component_of.resize(n);
    components.components.assign(static_cast<size_t>(g), LicenseSet());
    // Ensure group k is entered at its smallest vertex in ascending order:
    // assign randomly then renumber by smallest member.
    std::vector<int> assignment(n);
    for (int v = 0; v < n; ++v) {
      assignment[static_cast<size_t>(v)] =
          static_cast<int>(rng.UniformInt(0, g - 1));
    }
    std::vector<int> renumber(static_cast<size_t>(g), -1);
    int next = 0;
    for (int v = 0; v < n; ++v) {
      int& target = renumber[static_cast<size_t>(
          assignment[static_cast<size_t>(v)])];
      if (target == -1) {
        target = next++;
      }
    }
    components.components.assign(static_cast<size_t>(next), LicenseSet());
    for (int v = 0; v < n; ++v) {
      const int k = renumber[static_cast<size_t>(
          assignment[static_cast<size_t>(v)])];
      components.component_of[static_cast<size_t>(v)] = k;
      components.components[static_cast<size_t>(k)] |= LicenseSet::Singleton(v);
    }
    const LicenseGrouping grouping =
        LicenseGrouping::FromComponents(components);

    // Random log: every record's set stays within one group.
    ValidationTree tree;
    LogStore store;
    for (int r = 0; r < 200; ++r) {
      const int k = static_cast<int>(
          rng.UniformInt(0, grouping.group_count() - 1));
      const LicenseSet group_mask = grouping.GroupMask(k);
      LicenseSet set = LicenseSet::FromWord(rng.Next()) & group_mask;
      if (set.Empty()) {
        set = LicenseSet::Singleton((group_mask).Lowest());
      }
      const int64_t count = rng.UniformInt(1, 30);
      ASSERT_TRUE(tree.Insert(set, count).ok());
      ASSERT_TRUE(store.Append(LogRecord{"", set, count}).ok());
    }

    std::vector<int64_t> aggregates(static_cast<size_t>(n), 1000);
    const Result<DividedTrees> divided =
        DivideAndReindex(std::move(tree), grouping, aggregates);
    ASSERT_TRUE(divided.ok());

    const auto merged = store.MergedCounts();
    for (int k = 0; k < grouping.group_count(); ++k) {
      const ValidationTree& part =
          divided->trees[static_cast<size_t>(k)];
      ASSERT_TRUE(part.CheckInvariants().ok());
      // For every subset of the group's local mask, the divided tree's LHS
      // equals the brute-force LHS over original-index merged counts.
      const int nk = grouping.GroupSize(k);
      for (uint64_t local_word = 1;
           local_word <= ((uint64_t{1} << nk) - 1); ++local_word) {
        const LicenseSet local = LicenseSet::FromWord(local_word);
        const LicenseSet original =
            grouping.LocalToOriginalMask(k, local);
        EXPECT_EQ(part.SumSubsets(local),
                  LhsFromMergedCounts(merged, original));
      }
    }
  }
}

}  // namespace
}  // namespace geolic
