// Fuzz-style robustness: all external-input parsers (license text, log
// text/binary, tree checkpoints, license blobs, authority checkpoints)
// must reject random and mutated inputs with a clean Status — never crash,
// hang, or return inconsistent objects.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "drm/validation_authority.h"
#include "licensing/license_parser.h"
#include "licensing/license_serialization.h"
#include "test_util.h"
#include "validation/log_store.h"
#include "validation/tree_serialization.h"
#include "util/random.h"

namespace geolic {
namespace {

std::string TempPath(const std::string& suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "geolic_" + info->test_suite_name() + "_" +
         info->name() + suffix;
}

std::string RandomBytes(Rng* rng, size_t size) {
  std::string bytes(size, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(rng->UniformInt(0, 255));
  }
  return bytes;
}

// Random printable garbage with license-ish punctuation.
std::string RandomLicenseText(Rng* rng) {
  static constexpr char kAlphabet[] =
      "(;)=[]{},-0123456789 KPlayTRAsia\tEurope";
  std::string text;
  const size_t size = static_cast<size_t>(rng->UniformInt(0, 120));
  for (size_t i = 0; i < size; ++i) {
    text += kAlphabet[rng->UniformIndex(sizeof(kAlphabet) - 1)];
  }
  return text;
}

TEST(FuzzRobustnessTest, LicenseParserSurvivesGarbage) {
  const ConstraintSchema schema = ConstraintSchema::PaperExampleSchema();
  Rng rng(testing::TestSeed(1));
  for (int i = 0; i < 5000; ++i) {
    const std::string text = RandomLicenseText(&rng);
    const Result<License> license =
        ParseLicense(text, schema, LicenseType::kUsage, "F");
    if (license.ok()) {
      // Anything that parses must serialize back losslessly.
      const Result<License> reparsed = ParseLicense(
          license->ToString(schema), schema, LicenseType::kUsage, "F");
      EXPECT_TRUE(reparsed.ok()) << text;
    }
  }
}

TEST(FuzzRobustnessTest, LicenseParserSurvivesMutatedValidInput) {
  const ConstraintSchema schema = ConstraintSchema::PaperExampleSchema();
  const std::string valid =
      "(K; Play; T=[2009-03-10, 2009-03-20]; R={Asia, Europe}; A=2000)";
  Rng rng(testing::TestSeed(2));
  for (int i = 0; i < 5000; ++i) {
    std::string mutated = valid;
    const int mutations = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.UniformIndex(mutated.size());
      mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    }
    (void)ParseLicense(mutated, schema, LicenseType::kUsage, "F");
  }
}

TEST(FuzzRobustnessTest, LogTextLoaderSurvivesGarbage) {
  Rng rng(testing::TestSeed(3));
  const std::string path = TempPath(".log");
  for (int i = 0; i < 300; ++i) {
    {
      std::ofstream out(path, std::ios::binary);
      out << RandomBytes(&rng, static_cast<size_t>(rng.UniformInt(0, 400)));
    }
    (void)LogStore::LoadText(path);
  }
  std::remove(path.c_str());
}

TEST(FuzzRobustnessTest, LogBinaryLoaderSurvivesMutations) {
  LogStore store;
  Rng rng(testing::TestSeed(4));
  for (int i = 0; i < 50; ++i) {
    GEOLIC_CHECK(store
                     .Append(LogRecord{"LU" + std::to_string(i),
                                       LicenseSet::FromWord(rng.Next() | 1) & LicenseSet::Full(30),
                                       rng.UniformInt(1, 100)})
                     .ok());
  }
  const std::string path = TempPath(".bin");
  ASSERT_TRUE(store.SaveBinary(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  for (int i = 0; i < 500; ++i) {
    std::string mutated = bytes;
    const int mutations = static_cast<int>(rng.UniformInt(1, 8));
    for (int m = 0; m < mutations; ++m) {
      mutated[rng.UniformIndex(mutated.size())] =
          static_cast<char>(rng.UniformInt(0, 255));
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    const Result<LogStore> loaded = LogStore::LoadBinary(path);
    if (loaded.ok()) {
      // If it loads, every record must satisfy the store invariants.
      for (const LogRecord& record : loaded->records()) {
        EXPECT_NE(record.set, testing::Mask(0));
        EXPECT_GT(record.count, 0);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(FuzzRobustnessTest, TreeCheckpointLoaderSurvivesMutations) {
  ValidationTree tree;
  Rng rng(testing::TestSeed(5));
  for (int i = 0; i < 100; ++i) {
    GEOLIC_CHECK(
        tree.Insert(LicenseSet::FromWord(rng.Next() | 1) & LicenseSet::Full(25), rng.UniformInt(1, 50))
            .ok());
  }
  std::stringstream buffer;
  ASSERT_TRUE(SerializeTree(tree, &buffer).ok());
  const std::string bytes = buffer.str();

  for (int i = 0; i < 500; ++i) {
    std::string mutated = bytes;
    const int mutations = static_cast<int>(rng.UniformInt(1, 6));
    for (int m = 0; m < mutations; ++m) {
      mutated[rng.UniformIndex(mutated.size())] =
          static_cast<char>(rng.UniformInt(0, 255));
    }
    std::stringstream stream(mutated);
    const Result<ValidationTree> loaded = DeserializeTree(&stream);
    if (loaded.ok()) {
      // Any accepted tree must be structurally sound.
      EXPECT_TRUE(loaded->CheckInvariants().ok());
    }
  }
}

TEST(FuzzRobustnessTest, LicenseBlobReaderSurvivesRandomBytes) {
  Rng rng(testing::TestSeed(6));
  for (int i = 0; i < 2000; ++i) {
    std::stringstream stream(
        RandomBytes(&rng, static_cast<size_t>(rng.UniformInt(0, 200))));
    (void)ReadLicenseBinary(&stream);
  }
}

TEST(FuzzRobustnessTest, AuthorityRestoreSurvivesRandomBytes) {
  const ConstraintSchema schema = testing::IntervalSchema(1);
  Rng rng(testing::TestSeed(7));
  const std::string path = TempPath(".ckpt");
  for (int i = 0; i < 200; ++i) {
    {
      std::ofstream out(path, std::ios::binary);
      out << RandomBytes(&rng, static_cast<size_t>(rng.UniformInt(0, 300)));
    }
    ValidationAuthority authority(&schema);
    EXPECT_FALSE(authority.RestoreFull(path).ok());
    EXPECT_FALSE(authority.RestoreLogs(path).ok());
    EXPECT_EQ(authority.domain_count(), 0);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace geolic
