// Cross-module integration tests: full pipelines from license text through
// online issuance, persistence, and offline auditing, checking that every
// layer agrees with every other.
#include <cstdio>

#include <gtest/gtest.h>

#include "core/grouped_validator.h"
#include "core/incremental_auditor.h"
#include "core/online_validator.h"
#include "core/parallel_validator.h"
#include "drm/validation_authority.h"
#include "licensing/license_parser.h"
#include "test_util.h"
#include "validation/tree_serialization.h"
#include "validation/validate.h"
#include "workload/workload.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

Result<ValidationReport> RunZeta(const ValidationTree& tree,
                                 const std::vector<int64_t>& aggregates,
                                 int max_dense_n = 26) {
  ValidateOptions options;
  options.mode = ValidationMode::kZeta;
  options.max_dense_n = max_dense_n;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

std::string TempPath(const std::string& suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "geolic_" + info->test_suite_name() + "_" +
         info->name() + suffix;
}

// Invariant: a log produced exclusively by online validation must pass
// every offline validator with zero violations — the online validator only
// admits issues that keep all equations satisfied.
TEST(IntegrationTest, OnlineAcceptedLogAlwaysAuditsClean) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    WorkloadConfig config = PaperSweepConfig(12, seed);
    config.num_records = 0;
    config.aggregate_min = 100;
    config.aggregate_max = 600;
    WorkloadGenerator generator(config);
    Result<Workload> workload = generator.GenerateLicensesOnly();
    ASSERT_TRUE(workload.ok());

    Result<OnlineValidator> online =
        OnlineValidator::Create(workload->licenses.get());
    ASSERT_TRUE(online.ok());
    Rng rng(seed * 31337);
    int accepted = 0;
    for (int i = 0; i < 2000; ++i) {
      const int parent = static_cast<int>(
          rng.UniformInt(0, workload->licenses->size() - 1));
      const License usage =
          generator.DrawUsageLicense(*workload, parent, &rng, i);
      const Result<OnlineDecision> decision = online->TryIssue(usage);
      ASSERT_TRUE(decision.ok());
      if (decision->accepted()) {
        ++accepted;
      }
    }
    ASSERT_GT(accepted, 0);

    // Offline: exhaustive, zeta, grouped, parallel — all clean.
    const Result<ValidationTree> tree =
        ValidationTree::BuildFromLog(online->log());
    ASSERT_TRUE(tree.ok());
    const std::vector<int64_t> aggregates =
        workload->licenses->AggregateCounts();
    EXPECT_TRUE(RunExhaustive(*tree, aggregates)->all_valid());
    EXPECT_TRUE(RunZeta(*tree, aggregates)->all_valid());
    EXPECT_TRUE(
        ValidateExhaustiveParallel(*tree, aggregates, 4)->all_valid());
    const Result<GroupedValidationResult> grouped =
        ValidateGroupedFromLog(*workload->licenses, online->log());
    ASSERT_TRUE(grouped.ok());
    EXPECT_TRUE(grouped->report.all_valid());
  }
}

// Invariant: persistence round trips do not change any validator verdict.
TEST(IntegrationTest, VerdictsSurvivePersistenceRoundTrips) {
  WorkloadConfig config = PaperSweepConfig(10, 99);
  config.num_records = 800;
  config.aggregate_min = 50;
  config.aggregate_max = 400;  // Violations likely.
  Result<Workload> workload = WorkloadGenerator(config).Generate();
  ASSERT_TRUE(workload.ok());
  const std::vector<int64_t> aggregates =
      workload->licenses->AggregateCounts();

  // Direct verdicts.
  Result<ValidationTree> tree = ValidationTree::BuildFromLog(workload->log);
  ASSERT_TRUE(tree.ok());
  const Result<ValidationReport> direct =
      RunExhaustive(*tree, aggregates);
  ASSERT_TRUE(direct.ok());

  // Log → binary file → reload → rebuild tree.
  const std::string log_path = TempPath(".bin");
  ASSERT_TRUE(workload->log.SaveBinary(log_path).ok());
  const Result<LogStore> reloaded_log = LogStore::LoadBinary(log_path);
  ASSERT_TRUE(reloaded_log.ok());
  const Result<ValidationTree> from_log =
      ValidationTree::BuildFromLog(*reloaded_log);
  ASSERT_TRUE(from_log.ok());

  // Tree → checkpoint → reload.
  const std::string tree_path = TempPath(".tree");
  ASSERT_TRUE(SaveTree(*tree, tree_path).ok());
  const Result<ValidationTree> from_checkpoint = LoadTree(tree_path);
  ASSERT_TRUE(from_checkpoint.ok());

  // Compacted log → tree.
  const Result<ValidationTree> from_compacted =
      ValidationTree::BuildFromLog(workload->log.Compacted());
  ASSERT_TRUE(from_compacted.ok());

  for (const ValidationTree* variant :
       {&*from_log, &*from_checkpoint, &*from_compacted}) {
    const Result<ValidationReport> report =
        RunExhaustive(*variant, aggregates);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->violations.size(), direct->violations.size());
    for (size_t i = 0; i < report->violations.size(); ++i) {
      EXPECT_EQ(report->violations[i].set, direct->violations[i].set);
      EXPECT_EQ(report->violations[i].lhs, direct->violations[i].lhs);
    }
  }
  std::remove(log_path.c_str());
  std::remove(tree_path.c_str());
}

// Invariant: the paper-text round trip (serialize → parse) preserves every
// validation-relevant property of a license set.
TEST(IntegrationTest, TextRoundTripPreservesValidation) {
  const ConstraintSchema schema = ConstraintSchema::PaperExampleSchema();
  LicenseCatalog original(&schema);
  const char* texts[] = {
      "(K; Play; T=[2009-03-10, 2009-03-20]; R={Asia, Europe}; A=2000)",
      "(K; Play; T=[2009-03-15, 2009-03-25]; R={Asia}; A=1000)",
      "(K; Play; T=[2009-03-15, 2009-03-30]; R={America}; A=3000)",
  };
  for (int i = 0; i < 3; ++i) {
    Result<License> license = ParseLicense(
        texts[i], schema, LicenseType::kRedistribution,
        "LD" + std::to_string(i + 1));
    ASSERT_TRUE(license.ok());
    ASSERT_TRUE(original.Add(*std::move(license)).ok());
  }

  LicenseCatalog reparsed(&schema);
  for (int i = 0; i < 3; ++i) {
    Result<License> license = ParseLicense(
        original.at(i).ToString(schema), schema,
        LicenseType::kRedistribution, original.at(i).id());
    ASSERT_TRUE(license.ok());
    ASSERT_TRUE(reparsed.Add(*std::move(license)).ok());
  }
  const LicenseGrouping grouping_a = LicenseGrouping::FromLicenses(original);
  const LicenseGrouping grouping_b = LicenseGrouping::FromLicenses(reparsed);
  EXPECT_EQ(grouping_a.components().components,
            grouping_b.components().components);
  EXPECT_EQ(original.AggregateCounts(), reparsed.AggregateCounts());
}

// Invariant: incremental auditing over an authority-style stream matches a
// final full audit even when licenses trickle in between batches is NOT
// supported (grouping fixed at creation) — but over a fixed license set,
// batch-by-batch ingestion matches the one-shot grouped validator.
TEST(IntegrationTest, IncrementalAndGroupedAgreeOnGeneratedStream) {
  WorkloadConfig config = PaperSweepConfig(14, 7);
  config.num_records = 1200;
  config.aggregate_min = 80;
  config.aggregate_max = 900;
  Result<Workload> workload = WorkloadGenerator(config).Generate();
  ASSERT_TRUE(workload.ok());

  Result<IncrementalAuditor> auditor =
      IncrementalAuditor::Create(workload->licenses.get());
  ASSERT_TRUE(auditor.ok());
  std::map<LicenseSet, EquationResult> last;
  const auto& records = workload->log.records();
  for (size_t i = 0; i < records.size(); i += 113) {
    const size_t end = std::min(records.size(), i + 113);
    const std::vector<LogRecord> batch(
        records.begin() + static_cast<long>(i),
        records.begin() + static_cast<long>(end));
    const Result<ValidationReport> report = auditor->IngestBatch(batch);
    ASSERT_TRUE(report.ok());
    for (const EquationResult& violation : report->violations) {
      last[violation.set] = violation;
    }
  }
  const Result<GroupedValidationResult> full =
      ValidateGroupedFromLog(*workload->licenses, workload->log);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(last.size(), full->report.violations.size());
}

// Invariant: an authority full checkpoint reproduces identical audits.
TEST(IntegrationTest, AuthorityCheckpointPreservesAudits) {
  const ConstraintSchema schema = testing::IntervalSchema(2);
  ValidationAuthority authority(&schema);
  Rng rng(4242);
  for (int c = 0; c < 4; ++c) {
    const std::string content = "content-" + std::to_string(c);
    for (int i = 0; i < 6; ++i) {
      LicenseBuilder builder(&schema);
      const int64_t lo1 = rng.UniformInt(0, 500);
      const int64_t lo2 = rng.UniformInt(0, 500);
      builder.SetId(content + "-LD" + std::to_string(i))
          .SetContentKey(content)
          .SetType(LicenseType::kRedistribution)
          .SetPermission(Permission::kPlay)
          .SetAggregateCount(rng.UniformInt(100, 400))
          .SetInterval("C1", lo1, lo1 + rng.UniformInt(50, 300))
          .SetInterval("C2", lo2, lo2 + rng.UniformInt(50, 300));
      ASSERT_TRUE(authority.RegisterRedistribution(*builder.Build()).ok());
    }
  }
  // Issue a stream; some accepted, some rejected.
  for (int i = 0; i < 400; ++i) {
    const std::string content =
        "content-" + std::to_string(rng.UniformInt(0, 3));
    LicenseBuilder builder(&schema);
    const int64_t lo1 = rng.UniformInt(0, 700);
    const int64_t lo2 = rng.UniformInt(0, 700);
    builder.SetId("U" + std::to_string(i))
        .SetContentKey(content)
        .SetType(LicenseType::kUsage)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(rng.UniformInt(1, 30))
        .SetInterval("C1", lo1, lo1 + rng.UniformInt(0, 50))
        .SetInterval("C2", lo2, lo2 + rng.UniformInt(0, 50));
    const Result<OnlineDecision> decision =
        authority.ValidateIssue(*builder.Build());
    ASSERT_TRUE(decision.ok());
  }

  const std::string path = TempPath(".full");
  ASSERT_TRUE(authority.CheckpointFull(path).ok());
  ValidationAuthority restored(&schema);
  ASSERT_TRUE(restored.RestoreFull(path).ok());

  const Result<std::vector<ValidationAuthority::ContentAudit>> a =
      authority.AuditAll();
  const Result<std::vector<ValidationAuthority::ContentAudit>> b =
      restored.AuditAll();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].key, (*b)[i].key);
    EXPECT_EQ((*a)[i].result.report.violations.size(),
              (*b)[i].result.report.violations.size());
    EXPECT_EQ((*a)[i].result.report.equations_evaluated,
              (*b)[i].result.report.equations_evaluated);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace geolic
