// End-to-end at N = 256: durable issuance through the sharded service,
// crash, journal recovery — every decision and every recovered count
// checked bit-identically against the brute-force sim ReferenceModel.
//
// The catalog is 32 disjoint clusters of 8 overlapping licenses, so the
// satisfying set of any request lies in exactly one cluster. That keeps
// the reference brute force feasible (2^8 equations per decision instead
// of 2^256) without weakening it: by the paper's Theorem 2, equations
// outside the request's overlap group decide identically, and that very
// equivalence is what the optimized grouped path is being tried against.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/journal.h"
#include "service/issuance_service.h"
#include "sim/reference_model.h"
#include "test_util.h"
#include "util/random.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

constexpr int kClusters = 32;
constexpr int kPerCluster = 8;
constexpr int kN = kClusters * kPerCluster;  // 256.
constexpr int64_t kSlab = 1000;              // Disjoint interval per cluster.
constexpr int64_t kBudget = 40;

int64_t ClusterLo(int cluster, int j) { return cluster * kSlab + j * 10; }
int64_t ClusterHi(int cluster, int j) { return cluster * kSlab + j * 10 + 30; }

// The full 256-license catalog; global index of cluster c's license j is
// c * kPerCluster + j (asserted at build time).
LicenseCatalog BuildWideCatalog(const ConstraintSchema& schema) {
  LicenseCatalog licenses(&schema);
  for (int c = 0; c < kClusters; ++c) {
    for (int j = 0; j < kPerCluster; ++j) {
      const std::string id = "LD" + std::to_string(c) + "_" + std::to_string(j);
      const Result<int> index = licenses.Add(MakeRedistribution(
          schema, id, {{ClusterLo(c, j), ClusterHi(c, j)}}, kBudget));
      EXPECT_TRUE(index.ok());
      EXPECT_EQ(*index, c * kPerCluster + j);
    }
  }
  return licenses;
}

// Reference mirror: one brute-force model per cluster over a local
// 8-license catalog with the same geometry and budgets.
struct ClusterReference {
  std::unique_ptr<LicenseCatalog> licenses;
  std::unique_ptr<ReferenceModel> model;
};

std::vector<ClusterReference> BuildReferences(const ConstraintSchema& schema) {
  std::vector<ClusterReference> references;
  for (int c = 0; c < kClusters; ++c) {
    ClusterReference reference;
    reference.licenses = std::make_unique<LicenseCatalog>(&schema);
    for (int j = 0; j < kPerCluster; ++j) {
      const std::string id =
          "LD" + std::to_string(c) + "_" + std::to_string(j);
      EXPECT_TRUE(reference.licenses
                      ->Add(MakeRedistribution(
                          schema, id,
                          {{ClusterLo(c, j), ClusterHi(c, j)}}, kBudget))
                      .ok());
    }
    reference.model = std::make_unique<ReferenceModel>(reference.licenses.get());
    references.push_back(std::move(reference));
  }
  return references;
}

LicenseSet LocalToGlobal(const LicenseSet& local, int cluster) {
  std::vector<int> indexes;
  for (const int index : local.Indexes()) {
    indexes.push_back(cluster * kPerCluster + index);
  }
  return LicenseSet::FromIndexes(indexes);
}

TEST(WideE2ETest, N256IssuanceAndRecoveryMatchReferenceModel) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = BuildWideCatalog(schema);
  std::vector<ClusterReference> references = BuildReferences(schema);
  const std::string journal_path = ::testing::TempDir() + "wide_e2e.gjl";

  // Expected global per-set counts, mirrored from reference decisions.
  std::map<LicenseSet, int64_t> expected_counts;
  int accepted_total = 0;
  int rejected_total = 0;

  {
    Result<std::unique_ptr<IssuanceService>> service =
        IssuanceService::Create(&licenses);
    ASSERT_TRUE(service.ok());
    Result<std::unique_ptr<JournalWriter>> journal =
        JournalWriter::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());

    Rng rng(256256);
    for (int i = 0; i < 800; ++i) {
      const int cluster = static_cast<int>(rng.UniformInt(0, kClusters - 1));
      // Random subinterval inside the cluster's slab; narrow enough to sit
      // inside several of the overlapping licenses, wide enough that some
      // requests straddle edges and instance-fail.
      const int64_t lo = cluster * kSlab + rng.UniformInt(0, 90);
      const int64_t hi = lo + rng.UniformInt(1, 25);
      const int64_t count = rng.UniformInt(1, 3);
      const License usage =
          MakeUsage(schema, "LU" + std::to_string(i), {{lo, hi}}, count);

      const Result<OnlineDecision> decision = (*service)->TryIssue(usage);
      ASSERT_TRUE(decision.ok());
      const ReferenceModel::Decision reference =
          references[static_cast<size_t>(cluster)].model->TryIssue(usage);

      // Bit-identical decisions: verdict and satisfying set.
      ASSERT_EQ(decision->accepted(), reference.accepted()) << "i=" << i;
      ASSERT_EQ(decision->satisfying_set,
                LocalToGlobal(reference.satisfying_set, cluster))
          << "i=" << i;

      if (reference.accepted()) {
        references[static_cast<size_t>(cluster)].model->Apply(
            reference.satisfying_set, count);
        expected_counts[decision->satisfying_set] += count;
        ++accepted_total;
      } else {
        ++rejected_total;
      }
    }
    ASSERT_TRUE((*service)->SyncJournal().ok());
  }  // "Crash": service dies; only the journal survives.

  // The workload must actually exercise both verdicts to mean anything.
  ASSERT_GT(accepted_total, 100);
  ASSERT_GT(rejected_total, 20);

  // The safety property holds on the model side (2^8 equations/cluster).
  for (const ClusterReference& reference : references) {
    ASSERT_TRUE(reference.model->CheckInvariant().ok());
  }

  // Recovery: rebuilt state must carry the exact per-set counts.
  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered = IssuanceService::Recover(
      &licenses, {}, /*checkpoint_path=*/"", journal_path, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(stats.journal_records_replayed,
            static_cast<size_t>(accepted_total));

  const Result<LogStore> log = (*recovered)->CollectLog();
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->size(), static_cast<size_t>(accepted_total));
  const auto merged = log->MergedCounts();
  ASSERT_EQ(merged.size(), expected_counts.size());
  for (const auto& [set, count] : expected_counts) {
    const auto it = merged.find(set);
    ASSERT_NE(it, merged.end()) << set.ToHex();
    EXPECT_EQ(it->second, count) << set.ToHex();
  }

  // And the recovered tree answers every cluster equation exactly as the
  // brute-force model does.
  const Result<ValidationTree> tree = (*recovered)->CollectTree();
  ASSERT_TRUE(tree.ok());
  for (int c = 0; c < kClusters; ++c) {
    const ReferenceModel& model = *references[static_cast<size_t>(c)].model;
    for (SubsetIterator it(LicenseSet::Full(kPerCluster)); !it.Done();
         it.Next()) {
      const LicenseSet global = LocalToGlobal(it.subset(), c);
      ASSERT_EQ(tree->SumSubsets(global), model.SumSubsets(it.subset()))
          << "cluster=" << c << " T=" << it.subset().ToHex();
    }
  }
}

}  // namespace
}  // namespace geolic
