#include "service/issuance_service.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/online_validator.h"
#include "test_util.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

// Three overlap groups: {L1, L2}, {L3, L4}, {L5}.
LicenseCatalog ThreeGroupSet(const ConstraintSchema& schema, int64_t budget) {
  LicenseCatalog licenses(&schema);
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L1", {{0, 20}}, budget)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L2", {{10, 30}}, budget)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L3", {{100, 120}}, budget))
          .ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L4", {{110, 130}}, budget))
          .ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L5", {{200, 220}}, budget))
          .ok());
  return licenses;
}

// One usage request per group, cycling with `i`; every fourth request lies
// outside all licenses (instance-invalid).
License RequestAt(const ConstraintSchema& schema, int i) {
  const std::string id = "U" + std::to_string(i);
  switch (i % 4) {
    case 0:
      return MakeUsage(schema, id, {{12, 18}}, 1);  // Group {L1, L2}.
    case 1:
      return MakeUsage(schema, id, {{111, 119}}, 1);  // Group {L3, L4}.
    case 2:
      return MakeUsage(schema, id, {{205, 215}}, 1);  // Group {L5}.
    default:
      return MakeUsage(schema, id, {{500, 510}}, 1);  // No license.
  }
}

TEST(IssuanceServiceTest, MatchesOnlineValidatorSerially) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 5);

  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  Result<OnlineValidator> validator = OnlineValidator::Create(&licenses);
  ASSERT_TRUE(validator.ok());

  // Past the budget of 5 per group so both reject the tail identically.
  for (int i = 0; i < 40; ++i) {
    const License request = RequestAt(schema, i);
    const Result<OnlineDecision> got = (*service)->TryIssue(request);
    const Result<OnlineDecision> want = validator->TryIssue(request);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(got->instance_valid, want->instance_valid) << i;
    EXPECT_EQ(got->aggregate_valid, want->aggregate_valid) << i;
    EXPECT_EQ(got->satisfying_set, want->satisfying_set) << i;
    EXPECT_EQ(got->equations_checked, want->equations_checked) << i;
    if (!want->aggregate_valid && want->instance_valid) {
      EXPECT_EQ(got->limiting.set, want->limiting.set) << i;
      EXPECT_EQ(got->limiting.lhs, want->limiting.lhs) << i;
    }
  }

  // Same accepted state: the merged tree equals the serial validator's
  // (tree shape is canonical, independent of insertion order).
  const Result<ValidationTree> tree = (*service)->CollectTree();
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->ToString(), validator->tree().ToString());
  EXPECT_EQ((*service)->CollectLog().MergedCounts(),
            validator->log().MergedCounts());

  // The offline-audit snapshot: a flat compile of the same merged tree.
  const Result<FlatValidationTree> flat = (*service)->CollectFlatTree();
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->NodeCount(), tree->NodeCount());
  EXPECT_EQ(flat->TotalCount(), tree->TotalCount());
  const uint64_t full = licenses.AllMask().AsWord();
  for (uint64_t word = 1; word <= full; ++word) {
    const LicenseSet set = LicenseSet::FromWord(word);
    EXPECT_EQ(flat->SumSubsets(set), tree->SumSubsets(set)) << set;
  }
}

TEST(IssuanceServiceTest, ConcurrentStressMatchesSerialReplay) {
  const ConstraintSchema schema = IntervalSchema(1);
  // Tight budgets. Requests hit satisfying set {L1,L2} / {L3,L4} / {L5}, so
  // the binding equation's budget is 50 / 50 / 25; each group sees
  // 8×20 = 160 unit requests and saturates under any interleaving.
  const LicenseCatalog licenses = ThreeGroupSet(schema, 25);

  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  ASSERT_EQ((*service)->shard_count(), 3);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 80;  // 20 requests per group + 20 invalid.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&schema, &service, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Result<OnlineDecision> decision =
            (*service)->TryIssue(RequestAt(schema, t * kPerThread + i));
        ASSERT_TRUE(decision.ok());
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  // Every group saturated its budget exactly — no lost or duplicated
  // admissions under contention.
  const LogStore log = (*service)->CollectLog();
  EXPECT_EQ(log.TotalCount(), 50 + 50 + 25);
  const IssuanceMetrics::Snapshot metrics = (*service)->metrics().Snap();
  EXPECT_EQ(metrics.accepted, 125u);
  EXPECT_EQ(metrics.rejected_instance, 160u);
  EXPECT_EQ(metrics.rejected_aggregate, 640u - 160u - 125u);
  EXPECT_EQ(metrics.total_requests(), 640u);
  EXPECT_EQ(metrics.latency.total_count, 640u);

  // The final tree/log equal a single-threaded replay of the accepted log.
  Result<OnlineValidator> rebuilt = OnlineValidator::CreateWithHistory(
      &licenses, OnlineValidatorOptions(), log);
  ASSERT_TRUE(rebuilt.ok());
  const Result<ValidationTree> tree = (*service)->CollectTree();
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->ToString(), rebuilt->tree().ToString());
  EXPECT_EQ(log.MergedCounts(), rebuilt->log().MergedCounts());
}

TEST(IssuanceServiceTest, BatchMatchesSequentialIssue) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 7);

  Result<std::unique_ptr<IssuanceService>> batched =
      IssuanceService::Create(&licenses);
  Result<std::unique_ptr<IssuanceService>> sequential =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(batched.ok());
  ASSERT_TRUE(sequential.ok());

  std::vector<License> batch;
  for (int i = 0; i < 50; ++i) {
    batch.push_back(RequestAt(schema, i));
  }
  const Result<std::vector<OnlineDecision>> got =
      (*batched)->TryIssueBatch(batch);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), batch.size());

  for (size_t i = 0; i < batch.size(); ++i) {
    const Result<OnlineDecision> want = (*sequential)->TryIssue(batch[i]);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ((*got)[i].instance_valid, want->instance_valid) << i;
    EXPECT_EQ((*got)[i].aggregate_valid, want->aggregate_valid) << i;
    EXPECT_EQ((*got)[i].satisfying_set, want->satisfying_set) << i;
    EXPECT_EQ((*got)[i].equations_checked, want->equations_checked) << i;
  }
  const Result<ValidationTree> got_tree = (*batched)->CollectTree();
  const Result<ValidationTree> want_tree = (*sequential)->CollectTree();
  ASSERT_TRUE(got_tree.ok());
  ASSERT_TRUE(want_tree.ok());
  EXPECT_EQ(got_tree->ToString(), want_tree->ToString());

  const IssuanceMetrics::Snapshot metrics = (*batched)->metrics().Snap();
  EXPECT_EQ(metrics.batches, 1u);
  EXPECT_EQ(metrics.batched_requests, 50u);
}

TEST(IssuanceServiceTest, ShardHintCapsLockShards) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 4);

  OnlineValidatorOptions options;
  options.shard_hint = 2;
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses, options);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->shard_count(), 2);  // 3 groups striped over 2 locks.

  // Striping shares locks, not equations: decisions stay per-group. Six
  // requests per group; only {L5} (budget 4) rejects any.
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, i)).ok());
  }
  EXPECT_EQ((*service)->CollectLog().TotalCount(), 6 + 6 + 4);
}

TEST(IssuanceServiceTest, UngroupedDegradesToSingleShard) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 4);

  OnlineValidatorOptions options;
  options.use_grouping = false;
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses, options);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->shard_count(), 1);

  // Same accepted set as grouped (grouping changes cost, not outcomes).
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, i)).ok());
  }
  EXPECT_EQ((*service)->CollectLog().TotalCount(), 6 + 6 + 4);
}

TEST(IssuanceServiceTest, CreateWithHistoryContinuesBudgets) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 3);

  LogStore history;
  LogRecord spent;
  spent.issued_license_id = "H1";
  spent.set = testing::Mask(0b11);  // {L1, L2}.
  spent.count = 5;
  ASSERT_TRUE(history.Append(spent).ok());

  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::CreateWithHistory(&licenses, {}, history);
  ASSERT_TRUE(service.ok());

  // Pair budget 3 + 3 = 6, history spent 5: one unit left in {L1, L2}.
  const Result<OnlineDecision> first =
      (*service)->TryIssue(MakeUsage(schema, "U1", {{12, 18}}, 1));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->accepted());
  const Result<OnlineDecision> second =
      (*service)->TryIssue(MakeUsage(schema, "U2", {{12, 18}}, 1));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->accepted());

  // History that references indexes outside the set is rejected.
  LogStore bad;
  LogRecord unknown;
  unknown.issued_license_id = "H2";
  unknown.set = LicenseSet::Singleton(60);
  unknown.count = 1;
  ASSERT_TRUE(bad.Append(unknown).ok());
  EXPECT_FALSE(IssuanceService::CreateWithHistory(&licenses, {}, bad).ok());
}

TEST(IssuanceServiceTest, ExternalMetricsSinkIsUsed) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 10);

  IssuanceMetrics sink;
  OnlineValidatorOptions options;
  options.metrics = &sink;
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses, options);
  ASSERT_TRUE(service.ok());

  ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, 0)).ok());   // Accept.
  ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, 3)).ok());   // Invalid.
  const IssuanceMetrics::Snapshot snapshot = sink.Snap();
  EXPECT_EQ(snapshot.accepted, 1u);
  EXPECT_EQ(snapshot.rejected_instance, 1u);
  EXPECT_EQ(&(*service)->metrics(), &sink);
}

TEST(IssuanceServiceTest, RejectsEmptyLicenseCatalog) {
  const ConstraintSchema schema = IntervalSchema(1);
  EXPECT_FALSE(IssuanceService::Create(nullptr).ok());
  LicenseCatalog empty(&schema);
  EXPECT_FALSE(IssuanceService::Create(&empty).ok());
}

}  // namespace
}  // namespace geolic
