#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "service/issuance_service.h"
#include "test_util.h"
#include "util/request_arena.h"

// Proves the steady-state admission path is zero-malloc: after a warmup
// that touches every lazily-allocated structure (arena blocks, LicenseSet
// span pool, first-seen tree nodes, reserved log capacity), repeating the
// same request mix through TryIssue and the span TryIssueBatch overload
// performs no heap allocation at all.
//
// The counting hook replaces global operator new/delete, so it sees every
// allocation in the process (including the test harness's own); the test
// only compares the counter across the steady-state window, on the single
// test thread. Pool-recycled LicenseSet spans never reach operator new,
// which is exactly the property under test — with the pool compiled out
// (GEOLIC_LICENSE_SET_NO_POOL, the sanitizer builds) the guarantee does
// not hold and the steady-state assertions are skipped.
//
// The replacements must stay out of the inliner: if GCC inlines a delete
// body (sees the free) without the paired new body, -Wmismatched-new-delete
// misfires on perfectly matched replacement pairs.
#if defined(__GNUC__) || defined(__clang__)
#define GEOLIC_TEST_NOINLINE __attribute__((noinline))
#else
#define GEOLIC_TEST_NOINLINE
#endif

namespace {
std::atomic<uint64_t> g_news{0};
}  // namespace

GEOLIC_TEST_NOINLINE void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

GEOLIC_TEST_NOINLINE void* operator new[](std::size_t size) {
  return ::operator new(size);
}

GEOLIC_TEST_NOINLINE void* operator new(std::size_t size,
                                        const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

GEOLIC_TEST_NOINLINE void* operator new[](std::size_t size,
                                          const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

GEOLIC_TEST_NOINLINE void operator delete(void* p) noexcept { std::free(p); }
GEOLIC_TEST_NOINLINE void operator delete[](void* p) noexcept {
  std::free(p);
}
GEOLIC_TEST_NOINLINE void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
GEOLIC_TEST_NOINLINE void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}
GEOLIC_TEST_NOINLINE void operator delete(void* p,
                                          const std::nothrow_t&) noexcept {
  std::free(p);
}
GEOLIC_TEST_NOINLINE void operator delete[](void* p,
                                            const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

TEST(AllocFreeTest, SteadyStateTryIssuePerformsNoHeapAllocation) {
#ifdef GEOLIC_LICENSE_SET_NO_POOL
  GTEST_SKIP() << "LicenseSet span pool compiled out (sanitizer build)";
#else
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog licenses(&schema);
  ASSERT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L1", {{0, 20}}, 1 << 20)).ok());
  ASSERT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L2", {{10, 30}}, 1 << 20))
          .ok());
  ASSERT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L3", {{100, 120}}, 1 << 20))
          .ok());

  Result<std::unique_ptr<IssuanceService>> created =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(created.ok());
  IssuanceService& service = **created;

  constexpr int kWarmup = 64;
  constexpr int kSteady = 512;
  // The busiest shard logs 4 records per iteration (two requests, each
  // admitted via TryIssue and again via the batch).
  service.ReserveLogCapacity(4 * (kWarmup + kSteady));

  // Request mix built up front (License construction allocates); the same
  // three satisfying-set shapes repeat, so warmup inserts every tree node
  // steady state will touch. The out-of-range request exercises the
  // instance-reject path.
  std::vector<License> requests;
  requests.push_back(MakeUsage(schema, "U-a", {{12, 18}}, 1));   // {L1, L2}
  requests.push_back(MakeUsage(schema, "U-b", {{2, 8}}, 1));     // {L1}
  requests.push_back(MakeUsage(schema, "U-c", {{105, 115}}, 1)); // {L3}
  requests.push_back(MakeUsage(schema, "U-d", {{500, 510}}, 1)); // none
  std::vector<License> batch = requests;
  std::vector<OnlineDecision> decisions(batch.size());

  for (int i = 0; i < kWarmup; ++i) {
    for (const License& request : requests) {
      ASSERT_TRUE(service.TryIssue(request).ok());
    }
    ASSERT_TRUE(
        service
            .TryIssueBatch(std::span<const License>(batch),
                           std::span<OnlineDecision>(decisions))
            .ok());
  }

  const uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < kSteady; ++i) {
    for (const License& request : requests) {
      const Result<OnlineDecision> decision = service.TryIssue(request);
      ASSERT_TRUE(decision.ok());
    }
    ASSERT_TRUE(
        service
            .TryIssueBatch(std::span<const License>(batch),
                           std::span<OnlineDecision>(decisions))
            .ok());
  }
  const uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in the steady-state window";
#endif
}

TEST(AllocFreeTest, RequestArenaReusesBlocksAfterReset) {
  RequestArena arena(256);
  void* first = arena.Allocate(64, 8);
  ASSERT_NE(first, nullptr);
  arena.Reset();
  // Same block, same offset: the arena retains and reuses its blocks.
  EXPECT_EQ(arena.Allocate(64, 8), first);

  const uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const ArenaScope scope(&arena);
    (void)arena.AllocateArray<uint64_t>(16);
  }
  EXPECT_EQ(g_news.load(std::memory_order_relaxed) - before, 0u);
}

}  // namespace
}  // namespace geolic
