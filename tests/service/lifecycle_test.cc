// Live license lifecycle on a running IssuanceService: acquire/revoke/
// expire reconfigurations, epoch bumps, shard merge/split, cascade
// revocation, journaled reconfiguration recovery, and the epoch-tagged
// checkpoint format.

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "persist/faulty_file.h"
#include "persist/journal.h"
#include "persist/sync_file.h"
#include "service/issuance_service.h"
#include "test_util.h"
#include "util/date.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

// Three overlap groups: {L1, L2}, {L3, L4}, {L5}.
LicenseCatalog ThreeGroupSet(const ConstraintSchema& schema, int64_t budget) {
  LicenseCatalog licenses(&schema);
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L1", {{0, 20}}, budget)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L2", {{10, 30}}, budget)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L3", {{100, 120}}, budget))
          .ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L4", {{110, 130}}, budget))
          .ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L5", {{200, 220}}, budget))
          .ok());
  return licenses;
}

TEST(LifecycleTest, AcquireAppendsBumpsEpochAndAdmits) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 5);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->catalog_epoch(), 0u);
  ASSERT_EQ((*service)->shard_count(), 3);

  const Result<int> index = (*service)->AcquireLicense(
      MakeRedistribution(schema, "L6", {{300, 320}}, 5));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 5);  // Appended: existing indexes unchanged.
  EXPECT_EQ((*service)->catalog_epoch(), 1u);
  EXPECT_EQ((*service)->licenses().size(), 6);
  EXPECT_EQ((*service)->shard_count(), 4);  // New isolated group.

  // The acquired license admits immediately.
  const Result<OnlineDecision> got =
      (*service)->TryIssue(MakeUsage(schema, "U1", {{305, 315}}, 1));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->accepted());
  EXPECT_EQ(got->satisfying_set, testing::Mask(0b100000));
  EXPECT_EQ(got->catalog_epoch, 1u);
}

TEST(LifecycleTest, AcquireBridgeMergesShardsWithoutLosingRecords) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->TryIssue(MakeUsage(schema, "U1", {{12, 18}}, 2)).ok());
  ASSERT_TRUE(
      (*service)->TryIssue(MakeUsage(schema, "U2", {{111, 119}}, 3)).ok());

  // {15, 115} overlaps L1..L4: figure 6's merge, live — groups {L1,L2} and
  // {L3,L4} collapse into one shard.
  const Result<int> index = (*service)->AcquireLicense(
      MakeRedistribution(schema, "B", {{15, 115}}, 100));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 5);
  EXPECT_EQ((*service)->grouping().group_count(), 2);
  EXPECT_EQ((*service)->shard_count(), 2);

  // Both pre-merge records survived the shard merge, untouched (an acquire
  // never renumbers).
  const auto merged = (*service)->CollectLog().MergedCounts();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.at(testing::Mask(0b00011)), 2);
  EXPECT_EQ(merged.at(testing::Mask(0b01100)), 3);
}

TEST(LifecycleTest, AcquireRejectsDuplicateIdAndBadShape) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 5);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());

  EXPECT_FALSE((*service)
                   ->AcquireLicense(
                       MakeRedistribution(schema, "L1", {{300, 320}}, 5))
                   .ok());
  const ConstraintSchema two_dims = IntervalSchema(2);
  EXPECT_FALSE(
      (*service)
          ->AcquireLicense(MakeRedistribution(two_dims, "L9",
                                              {{300, 320}, {0, 10}}, 5))
          .ok());
  // Failed acquisitions change nothing.
  EXPECT_EQ((*service)->catalog_epoch(), 0u);
  EXPECT_EQ((*service)->licenses().size(), 5);
}

TEST(LifecycleTest, RevokeCascadesAndRenumbersDensely) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->TryIssue(MakeUsage(schema, "U1", {{12, 18}}, 1)).ok());
  ASSERT_TRUE(
      (*service)->TryIssue(MakeUsage(schema, "U2", {{111, 119}}, 1)).ok());
  ASSERT_TRUE(
      (*service)->TryIssue(MakeUsage(schema, "U3", {{205, 215}}, 1)).ok());

  ASSERT_TRUE((*service)->RevokeLicense(0).ok());  // L1.
  EXPECT_EQ((*service)->catalog_epoch(), 1u);
  EXPECT_EQ((*service)->licenses().size(), 4);
  EXPECT_EQ(*(*service)->licenses().IndexOfId("L2"), 0);
  EXPECT_EQ(*(*service)->licenses().IndexOfId("L5"), 3);

  // U1's record contained the revoked license: cascade-dropped. The other
  // two renumber densely ({L3,L4}: 2,3 → 1,2; {L5}: 4 → 3).
  const auto merged = (*service)->CollectLog().MergedCounts();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.at(testing::Mask(0b0110)), 1);
  EXPECT_EQ(merged.at(testing::Mask(0b1000)), 1);
  EXPECT_EQ((*service)->CollectTree()->TotalCount(), 2);

  // Admission keeps working in the renumbered space: {12,18} now only
  // lies inside L2 (new index 0).
  const Result<OnlineDecision> got =
      (*service)->TryIssue(MakeUsage(schema, "U4", {{12, 18}}, 1));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->accepted());
  EXPECT_EQ(got->satisfying_set, testing::Mask(0b0001));
  EXPECT_EQ(got->catalog_epoch, 1u);
}

TEST(LifecycleTest, RevokeGuards) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog one(&schema);
  ASSERT_TRUE(one.Add(MakeRedistribution(schema, "L1", {{0, 20}}, 5)).ok());
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&one);
  ASSERT_TRUE(service.ok());

  EXPECT_FALSE((*service)->RevokeLicense(-1).ok());
  EXPECT_FALSE((*service)->RevokeLicense(1).ok());
  EXPECT_FALSE((*service)->RevokeLicense(0).ok());  // Last license.
  EXPECT_FALSE((*service)->RevokeLicenseById("nope").ok());
  EXPECT_EQ((*service)->catalog_epoch(), 0u);
}

TEST(LifecycleTest, RevokeByIdMatchesIndexForm) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->RevokeLicenseById("L3").ok());
  EXPECT_EQ((*service)->catalog_epoch(), 1u);
  EXPECT_EQ((*service)->licenses().size(), 4);
  EXPECT_FALSE((*service)->licenses().IndexOfId("L3").ok());
}

TEST(LifecycleTest, ExpireDimensionBelowRemovesByIntervalEnd) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());

  // Nothing ends below 0: a no-op, no epoch change.
  Result<int> removed = (*service)->ExpireDimensionBelow(0, 0);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 0);
  EXPECT_EQ((*service)->catalog_epoch(), 0u);

  // Only L1 ({0,20}) ends strictly below 25.
  removed = (*service)->ExpireDimensionBelow(0, 25);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1);
  EXPECT_EQ((*service)->catalog_epoch(), 1u);
  EXPECT_EQ((*service)->licenses().size(), 4);
  EXPECT_FALSE((*service)->licenses().IndexOfId("L1").ok());

  // Expiring everything is refused (the catalog may never become empty).
  EXPECT_FALSE((*service)->ExpireDimensionBelow(0, 1000).ok());
  EXPECT_EQ((*service)->catalog_epoch(), 1u);
  // And an unordered/bad dimension is an error, not a removal.
  EXPECT_FALSE((*service)->ExpireDimensionBelow(7, 25).ok());
}

TEST(LifecycleTest, ExpireBeforeFindsTheDateDimension) {
  ConstraintSchema schema;
  ASSERT_TRUE(schema.AddIntervalDimension("C1").ok());
  ASSERT_TRUE(
      schema.AddIntervalDimension("valid", IntervalFormat::kDate).ok());
  const Date jan1 = *Date::FromCivil(2026, 1, 1);
  const auto make = [&](const std::string& id, int64_t last_valid_day) {
    LicenseBuilder builder(&schema);
    builder.SetId(id)
        .SetContentKey("K")
        .SetType(LicenseType::kRedistribution)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(10);
    builder.SetInterval("C1", 0, 100);
    builder.SetInterval("valid", 0, last_valid_day);
    const Result<License> license = builder.Build();
    EXPECT_TRUE(license.ok());
    return *license;
  };
  LicenseCatalog licenses(&schema);
  ASSERT_TRUE(licenses.Add(make("old", jan1.day_number() - 10)).ok());
  ASSERT_TRUE(licenses.Add(make("fresh", jan1.day_number() + 90)).ok());
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());

  const Result<int> removed = (*service)->ExpireBefore(jan1);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1);
  EXPECT_EQ((*service)->licenses().size(), 1);
  EXPECT_EQ((*service)->licenses().at(0).id(), "fresh");

  // A schema without any date dimension cannot expire by date.
  const ConstraintSchema plain = IntervalSchema(1);
  const LicenseCatalog no_dates = ThreeGroupSet(plain, 5);
  Result<std::unique_ptr<IssuanceService>> undated =
      IssuanceService::Create(&no_dates);
  ASSERT_TRUE(undated.ok());
  EXPECT_FALSE((*undated)->ExpireBefore(jan1).ok());
}

TEST(LifecycleTest, JournaledLifecycleRecoversToLiveState) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());

  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  Result<std::unique_ptr<JournalWriter>> journal =
      JournalWriter::Create(std::move(file));
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());

  ASSERT_TRUE((*service)->TryIssue(MakeUsage(schema, "U1", {{12, 18}}, 1)).ok());
  ASSERT_TRUE(
      (*service)->TryIssue(MakeUsage(schema, "U2", {{111, 119}}, 2)).ok());
  ASSERT_TRUE((*service)
                  ->AcquireLicense(
                      MakeRedistribution(schema, "L6", {{300, 320}}, 9))
                  .ok());
  ASSERT_TRUE(
      (*service)->TryIssue(MakeUsage(schema, "U3", {{305, 315}}, 1)).ok());
  ASSERT_TRUE((*service)->RevokeLicenseById("L3").ok());
  ASSERT_TRUE((*service)->ExpireDimensionBelow(0, 25).ok());  // Drops L1.
  ASSERT_TRUE(
      (*service)->TryIssue(MakeUsage(schema, "U4", {{205, 215}}, 1)).ok());
  ASSERT_EQ((*service)->catalog_epoch(), 3u);

  const std::string journal_path =
      ::testing::TempDir() + "lifecycle_recover.gjl";
  {
    std::ofstream out(journal_path, std::ios::binary | std::ios::trunc);
    out.write(disk->contents().data(),
              static_cast<std::streamsize>(disk->contents().size()));
  }
  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, /*checkpoint_path=*/"",
                               journal_path, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(stats.reconfig_records_replayed, 3u);
  EXPECT_EQ(stats.recovered_catalog_epoch, 3u);
  // The recovered service is a fresh baseline: its own epoch restarts.
  EXPECT_EQ((*recovered)->catalog_epoch(), 0u);
  // Catalog and validation state equal the live service's, record for
  // record, in the final epoch's dense index space.
  ASSERT_EQ((*recovered)->licenses().size(), (*service)->licenses().size());
  for (int i = 0; i < (*service)->licenses().size(); ++i) {
    EXPECT_EQ((*recovered)->licenses().at(i).id(),
              (*service)->licenses().at(i).id());
  }
  EXPECT_EQ((*recovered)->CollectTree()->ToString(),
            (*service)->CollectTree()->ToString());
  EXPECT_EQ((*recovered)->CollectLog().MergedCounts(),
            (*service)->CollectLog().MergedCounts());
}

TEST(LifecycleTest, CheckpointAfterReconfigCoversAndTagsTheEpoch) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  const std::string checkpoint_path =
      ::testing::TempDir() + "lifecycle_epoch_ckpt.gck";
  const std::string journal_path =
      ::testing::TempDir() + "lifecycle_epoch_ckpt.gjl";

  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  Result<std::unique_ptr<JournalWriter>> journal =
      JournalWriter::Open(journal_path);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());

  ASSERT_TRUE((*service)->TryIssue(MakeUsage(schema, "U1", {{12, 18}}, 1)).ok());
  ASSERT_TRUE((*service)->RevokeLicenseById("L5").ok());
  ASSERT_TRUE((*service)
                  ->AcquireLicense(
                      MakeRedistribution(schema, "L6", {{300, 320}}, 9))
                  .ok());
  ASSERT_TRUE((*service)->WriteCheckpoint(checkpoint_path).ok());
  ASSERT_TRUE(
      (*service)->TryIssue(MakeUsage(schema, "U2", {{305, 315}}, 1)).ok());
  ASSERT_TRUE((*service)->SyncJournal().ok());

  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, checkpoint_path, journal_path,
                               &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(stats.reconfig_records_replayed, 2u);
  EXPECT_EQ(stats.recovered_catalog_epoch, 2u);
  EXPECT_EQ((*recovered)->CollectTree()->ToString(),
            (*service)->CollectTree()->ToString());
  EXPECT_EQ((*recovered)->CollectLog().MergedCounts(),
            (*service)->CollectLog().MergedCounts());
}

TEST(LifecycleTest, CheckpointPredatingReconfigsStillRecovers) {
  // The checkpoint covers only epoch-0 admissions; every reconfiguration
  // lives in the journal tail and must replay on top of it.
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  const std::string checkpoint_path =
      ::testing::TempDir() + "lifecycle_predate_ckpt.gck";
  const std::string journal_path =
      ::testing::TempDir() + "lifecycle_predate_ckpt.gjl";

  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  Result<std::unique_ptr<JournalWriter>> journal =
      JournalWriter::Open(journal_path);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());

  ASSERT_TRUE((*service)->TryIssue(MakeUsage(schema, "U1", {{12, 18}}, 1)).ok());
  ASSERT_TRUE(
      (*service)->TryIssue(MakeUsage(schema, "U2", {{111, 119}}, 1)).ok());
  ASSERT_TRUE((*service)->WriteCheckpoint(checkpoint_path).ok());  // Epoch 0.
  ASSERT_TRUE((*service)->RevokeLicense(0).ok());
  ASSERT_TRUE((*service)->ExpireDimensionBelow(0, 35).ok());  // Drops L2.
  ASSERT_TRUE(
      (*service)->TryIssue(MakeUsage(schema, "U3", {{205, 215}}, 1)).ok());
  ASSERT_TRUE((*service)->SyncJournal().ok());
  ASSERT_EQ((*service)->catalog_epoch(), 2u);

  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, checkpoint_path, journal_path,
                               &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(stats.reconfig_records_replayed, 2u);
  EXPECT_EQ((*recovered)->CollectTree()->ToString(),
            (*service)->CollectTree()->ToString());
  EXPECT_EQ((*recovered)->CollectLog().MergedCounts(),
            (*service)->CollectLog().MergedCounts());
}

TEST(LifecycleTest, CheckpointEpochDisagreementFailsLoudly) {
  // A checkpoint tagged epoch 1 whose journal prefix contains no
  // reconfiguration frame is inconsistent — recovery must refuse rather
  // than load records into the wrong index space.
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  const std::string checkpoint_path =
      ::testing::TempDir() + "lifecycle_mismatch_ckpt.gck";
  const std::string journal_path =
      ::testing::TempDir() + "lifecycle_mismatch_ckpt.gjl";

  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  Result<std::unique_ptr<JournalWriter>> journal =
      JournalWriter::Create(std::move(file));
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());

  ASSERT_TRUE((*service)->TryIssue(MakeUsage(schema, "U1", {{12, 18}}, 1)).ok());
  const std::string journal_before_reconfig = disk->contents();
  ASSERT_TRUE((*service)->RevokeLicenseById("L5").ok());
  ASSERT_TRUE((*service)->WriteCheckpoint(checkpoint_path).ok());  // Epoch 1.

  // Crash variant where only the PRE-reconfiguration journal survived.
  {
    std::ofstream out(journal_path, std::ios::binary | std::ios::trunc);
    out.write(journal_before_reconfig.data(),
              static_cast<std::streamsize>(journal_before_reconfig.size()));
  }
  const Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, checkpoint_path, journal_path);
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.status().message().find("epoch"), std::string::npos)
      << recovered.status().message();
}

TEST(LifecycleTest, AttachJournalRequiresEpochZero) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  // An unjournaled reconfiguration is legal, but afterwards a journal can
  // no longer be attached: it would miss the reconfiguration record that
  // recovery needs to rebuild the index space.
  ASSERT_TRUE((*service)->RevokeLicenseById("L5").ok());
  Result<std::unique_ptr<JournalWriter>> journal =
      JournalWriter::Create(std::make_unique<InMemorySyncFile>());
  ASSERT_TRUE(journal.ok());
  EXPECT_FALSE((*service)->AttachJournal(std::move(*journal)).ok());
}

TEST(LifecycleTest, TornReconfigFrameAbortsAndRecoversPreReconfigState) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());

  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  auto faulty = std::make_unique<FaultyFile>(std::move(file));
  FaultyFile* faults = faulty.get();
  Result<std::unique_ptr<JournalWriter>> journal =
      JournalWriter::Create(std::move(faulty));
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());

  ASSERT_TRUE((*service)->TryIssue(MakeUsage(schema, "U1", {{12, 18}}, 1)).ok());
  ASSERT_TRUE(
      (*service)->TryIssue(MakeUsage(schema, "U2", {{111, 119}}, 1)).ok());
  const std::string tree_before = (*service)->CollectTree()->ToString();

  // The revoke's journal frame tears mid-write: WAL contract — the
  // reconfiguration reports failure and NOTHING changed in memory.
  faults->TearNextAppend(9);
  EXPECT_FALSE((*service)->RevokeLicense(0).ok());
  EXPECT_EQ((*service)->catalog_epoch(), 0u);
  EXPECT_EQ((*service)->licenses().size(), 5);
  EXPECT_EQ((*service)->CollectTree()->ToString(), tree_before);

  // And recovery from the torn platter lands on the pre-reconfig state.
  const std::string journal_path =
      ::testing::TempDir() + "lifecycle_torn_reconfig.gjl";
  {
    std::ofstream out(journal_path, std::ios::binary | std::ios::trunc);
    out.write(disk->contents().data(),
              static_cast<std::streamsize>(disk->contents().size()));
  }
  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, "", journal_path, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(stats.journal_torn_tail);
  EXPECT_EQ(stats.reconfig_records_replayed, 0u);
  EXPECT_EQ((*recovered)->CollectTree()->ToString(), tree_before);
}

TEST(LifecycleTest, ReconfigStormRacesConcurrentIssuance) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 1000000);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  IssuanceService* s = service->get();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 300;
  std::atomic<int> failures{0};
  std::vector<std::thread> issuers;
  issuers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    issuers.emplace_back([&schema, s, &failures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string id =
            "U" + std::to_string(t) + "_" + std::to_string(i);
        const License request =
            i % 3 == 0 ? MakeUsage(schema, id, {{12, 18}}, 1)
            : i % 3 == 1 ? MakeUsage(schema, id, {{111, 119}}, 1)
                         : MakeUsage(schema, id, {{205, 215}}, 1);
        const Result<OnlineDecision> got = s->TryIssue(request);
        if (!got.ok() || !got->instance_valid) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // The storm: repeated acquire+revoke of a bridge license that merges the
  // {L1,L2} and {L3,L4} shards on the way in and splits them on the way
  // out, while issuance keeps running.
  for (int round = 0; round < 20; ++round) {
    const std::string id = "X" + std::to_string(round);
    const Result<int> acquired = s->AcquireLicense(
        MakeRedistribution(schema, id, {{15, 115}}, 1000000));
    ASSERT_TRUE(acquired.ok()) << acquired.status().message();
    ASSERT_TRUE(s->RevokeLicenseById(id).ok());
  }
  for (std::thread& thread : issuers) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(s->catalog_epoch(), 40u);
  EXPECT_EQ(s->licenses().size(), 5);
  EXPECT_EQ(s->shard_count(), 3);

  // Requests admitted under the transient bridge epochs were recorded with
  // the bridge in scope; after its revocation their sets cascade or remap
  // back into the stable three-group space. The merged tree must replay
  // serially: every record routes inside one overlap group.
  const Result<ValidationTree> tree = s->CollectTree();
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->TotalCount(), s->CollectLog().TotalCount());
}

}  // namespace
}  // namespace geolic
