// Edge cases of IssuanceService::Recover the crash simulations rarely hit
// head-on: a journal holding zero frames, a checkpoint that covers zero
// frames, and a journal whose first frame predates the checkpoint cut. In
// every case the recovered state must equal a serial replay of the same
// accepted requests on a fresh service, and RecoveryStats must account for
// exactly where each record came from.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/journal.h"
#include "service/issuance_service.h"
#include "test_util.h"

namespace geolic {
namespace {

using geolic::testing::IntervalSchema;
using geolic::testing::MakeRedistribution;
using geolic::testing::MakeUsage;

LicenseCatalog TwoGroupSet(const ConstraintSchema& schema) {
  LicenseCatalog licenses(&schema);
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L1", {{0, 20}}, 100)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L2", {{10, 30}}, 100)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L3", {{100, 120}}, 100)).ok());
  return licenses;
}

License RequestAt(const ConstraintSchema& schema, int i) {
  const std::string id = "U" + std::to_string(i);
  return i % 2 == 0 ? MakeUsage(schema, id, {{12, 18}}, 1)
                    : MakeUsage(schema, id, {{105, 115}}, 1);
}

// The ground truth every recovery is held to: the same requests issued
// one at a time on a fresh, journal-less service.
std::unique_ptr<IssuanceService> SerialReplay(const ConstraintSchema& schema,
                                              const LicenseCatalog& licenses,
                                              int requests) {
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  EXPECT_TRUE(service.ok());
  for (int i = 0; i < requests; ++i) {
    const Result<OnlineDecision> decision =
        (*service)->TryIssue(RequestAt(schema, i));
    EXPECT_TRUE(decision.ok());
    EXPECT_TRUE(decision->accepted()) << "request " << i;
  }
  return std::move(*service);
}

void ExpectSameState(IssuanceService* recovered, IssuanceService* serial) {
  EXPECT_EQ(recovered->CollectLog().MergedCounts(),
            serial->CollectLog().MergedCounts());
  EXPECT_EQ(recovered->CollectTree()->ToString(),
            serial->CollectTree()->ToString());
}

TEST(RecoveryEdgeTest, EmptyJournalNoCheckpointYieldsEmptyWorkingService) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = TwoGroupSet(schema);
  const std::string journal_path = ::testing::TempDir() + "edge_empty.gjl";
  {
    // A journal that was created (magic written) and then never used —
    // the crash-right-after-rotation shape.
    Result<std::unique_ptr<JournalWriter>> journal =
        JournalWriter::Open(journal_path);
    ASSERT_TRUE(journal.ok());
  }

  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, /*checkpoint_path=*/"",
                               journal_path, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(stats.checkpoint_records, 0u);
  EXPECT_EQ(stats.journal_records_replayed, 0u);
  EXPECT_EQ(stats.journal_records_skipped, 0u);
  EXPECT_FALSE(stats.journal_torn_tail);
  EXPECT_TRUE((*recovered)->CollectLog().empty());

  // The recovered service is a fully working empty service.
  const Result<OnlineDecision> decision =
      (*recovered)->TryIssue(RequestAt(schema, 0));
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->accepted());
}

TEST(RecoveryEdgeTest, EmptyJournalAfterCheckpointRecoversCheckpointExactly) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = TwoGroupSet(schema);
  const std::string checkpoint_path =
      ::testing::TempDir() + "edge_ckpt_then_empty.gck";
  const std::string rotated_path =
      ::testing::TempDir() + "edge_rotated_empty.gjl";
  constexpr int kRequests = 10;
  {
    Result<std::unique_ptr<IssuanceService>> service =
        IssuanceService::Create(&licenses);
    ASSERT_TRUE(service.ok());
    Result<std::unique_ptr<JournalWriter>> journal = JournalWriter::Open(
        ::testing::TempDir() + "edge_ckpt_then_empty_old.gjl");
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());
    for (int i = 0; i < kRequests; ++i) {
      ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, i)).ok());
    }
    ASSERT_TRUE((*service)->WriteCheckpoint(checkpoint_path).ok());
    // Journal rotation after the checkpoint: the new journal gets its
    // magic, then the process dies before any admission.
    Result<std::unique_ptr<JournalWriter>> rotated =
        JournalWriter::Open(rotated_path);
    ASSERT_TRUE(rotated.ok());
  }

  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, checkpoint_path, rotated_path,
                               &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(stats.checkpoint_records, static_cast<size_t>(kRequests));
  EXPECT_EQ(stats.journal_records_replayed, 0u);
  EXPECT_EQ(stats.journal_records_skipped, 0u);
  EXPECT_FALSE(stats.journal_torn_tail);

  const std::unique_ptr<IssuanceService> serial =
      SerialReplay(schema, licenses, kRequests);
  ExpectSameState(recovered->get(), serial.get());
}

TEST(RecoveryEdgeTest, CheckpointCoveringZeroFramesReplaysWholeJournal) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = TwoGroupSet(schema);
  const std::string checkpoint_path =
      ::testing::TempDir() + "edge_zero_cover.gck";
  const std::string journal_path =
      ::testing::TempDir() + "edge_zero_cover.gjl";
  constexpr int kRequests = 12;
  {
    Result<std::unique_ptr<IssuanceService>> service =
        IssuanceService::Create(&licenses);
    ASSERT_TRUE(service.ok());
    Result<std::unique_ptr<JournalWriter>> journal =
        JournalWriter::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());
    // Checkpoint BEFORE any admission: it covers journal sequence 0 and
    // holds zero records. Every journal frame postdates the cut.
    ASSERT_TRUE((*service)->WriteCheckpoint(checkpoint_path).ok());
    for (int i = 0; i < kRequests; ++i) {
      ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, i)).ok());
    }
  }

  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, checkpoint_path, journal_path,
                               &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(stats.checkpoint_records, 0u);
  EXPECT_EQ(stats.journal_records_replayed, static_cast<size_t>(kRequests));
  EXPECT_EQ(stats.journal_records_skipped, 0u);
  EXPECT_FALSE(stats.journal_torn_tail);

  const std::unique_ptr<IssuanceService> serial =
      SerialReplay(schema, licenses, kRequests);
  ExpectSameState(recovered->get(), serial.get());
}

TEST(RecoveryEdgeTest, JournalFramesPredatingCheckpointCutAreSkippedNotDoubled) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = TwoGroupSet(schema);
  const std::string checkpoint_path =
      ::testing::TempDir() + "edge_predate.gck";
  const std::string journal_path = ::testing::TempDir() + "edge_predate.gjl";
  constexpr int kBeforeCheckpoint = 8;
  constexpr int kAfterCheckpoint = 7;
  constexpr int kRequests = kBeforeCheckpoint + kAfterCheckpoint;
  {
    Result<std::unique_ptr<IssuanceService>> service =
        IssuanceService::Create(&licenses);
    ASSERT_TRUE(service.ok());
    Result<std::unique_ptr<JournalWriter>> journal =
        JournalWriter::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());
    for (int i = 0; i < kBeforeCheckpoint; ++i) {
      ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, i)).ok());
    }
    ASSERT_TRUE((*service)->WriteCheckpoint(checkpoint_path).ok());
    for (int i = kBeforeCheckpoint; i < kRequests; ++i) {
      ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, i)).ok());
    }
  }

  // The journal still starts at frame 1, well before the checkpoint's cut
  // at sequence 8: recovery must skip the covered prefix (no double
  // counting) and replay only the tail.
  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, checkpoint_path, journal_path,
                               &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(stats.checkpoint_records,
            static_cast<size_t>(kBeforeCheckpoint));
  EXPECT_EQ(stats.journal_records_skipped,
            static_cast<size_t>(kBeforeCheckpoint));
  EXPECT_EQ(stats.journal_records_replayed,
            static_cast<size_t>(kAfterCheckpoint));
  EXPECT_FALSE(stats.journal_torn_tail);

  const std::unique_ptr<IssuanceService> serial =
      SerialReplay(schema, licenses, kRequests);
  ExpectSameState(recovered->get(), serial.get());
}

}  // namespace
}  // namespace geolic
