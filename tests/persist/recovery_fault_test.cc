#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog_service.h"
#include "catalog/tenant_source.h"
#include "persist/faulty_file.h"
#include "persist/journal.h"
#include "persist/sync_file.h"
#include "service/issuance_service.h"
#include "test_util.h"
#include "util/random.h"
#include "workload/multi_tenant.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

// Three overlap groups: {L1, L2}, {L3, L4}, {L5} — the issuance-service
// test's standard geometry, here with generous budgets so recovery
// scenarios control acceptance themselves.
LicenseCatalog ThreeGroupSet(const ConstraintSchema& schema, int64_t budget) {
  LicenseCatalog licenses(&schema);
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L1", {{0, 20}}, budget)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L2", {{10, 30}}, budget)).ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L3", {{100, 120}}, budget))
          .ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L4", {{110, 130}}, budget))
          .ok());
  EXPECT_TRUE(
      licenses.Add(MakeRedistribution(schema, "L5", {{200, 220}}, budget))
          .ok());
  return licenses;
}

License RequestAt(const ConstraintSchema& schema, int i) {
  const std::string id = "U" + std::to_string(i);
  switch (i % 3) {
    case 0:
      return MakeUsage(schema, id, {{12, 18}}, 1);  // Group {L1, L2}.
    case 1:
      return MakeUsage(schema, id, {{111, 119}}, 1);  // Group {L3, L4}.
    default:
      return MakeUsage(schema, id, {{205, 215}}, 1);  // Group {L5}.
  }
}

LogRecord Record(const std::string& id, uint64_t mask, int64_t count) {
  const LicenseSet set = LicenseSet::FromWord(mask);
  LogRecord record;
  record.issued_license_id = id;
  record.set = set;
  record.count = count;
  return record;
}

// Journal bytes holding `n` unit records, plus the per-frame boundaries
// (byte offset after each frame) so tests can cut at clean frame edges.
std::string JournalBytes(int n, std::vector<size_t>* boundaries = nullptr) {
  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(file));
  EXPECT_TRUE(writer.ok());
  if (boundaries != nullptr) {
    boundaries->push_back(disk->contents().size());
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE((*writer)
                    ->Append(static_cast<uint64_t>(i + 1),
                             Record("LU" + std::to_string(i + 1),
                                    static_cast<uint64_t>(i % 3 + 1), 1))
                    .ok());
    if (boundaries != nullptr) {
      boundaries->push_back(disk->contents().size());
    }
  }
  return disk->contents();
}

// Journal bytes mixing admissions with every reconfiguration frame kind
// (acquire, revoke, expire), plus the per-frame boundaries.
std::string LifecycleJournalBytes(const ConstraintSchema& schema,
                                  std::vector<size_t>* boundaries = nullptr) {
  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(file));
  EXPECT_TRUE(writer.ok());
  const auto mark = [&] {
    if (boundaries != nullptr) {
      boundaries->push_back(disk->contents().size());
    }
  };
  mark();
  EXPECT_TRUE((*writer)->Append(1, Record("LU1", 0x1, 1)).ok());
  mark();
  EXPECT_TRUE((*writer)
                  ->AppendAcquire(
                      2, MakeRedistribution(schema, "L6", {{300, 320}}, 9))
                  .ok());
  mark();
  EXPECT_TRUE((*writer)->Append(3, Record("LU2", 0x2, 1)).ok());
  mark();
  EXPECT_TRUE((*writer)->AppendRevoke(4, 1, "L2").ok());
  mark();
  EXPECT_TRUE((*writer)->AppendExpire(5, 0, 25, {0, 2}).ok());
  mark();
  EXPECT_TRUE((*writer)->Append(6, Record("LU3", 0x4, 1)).ok());
  mark();
  return disk->contents();
}

// --- Torn writes -----------------------------------------------------------

TEST(RecoveryFaultTest, TornWriteDropsOnlyTheTornFrame) {
  // Persist 3 full frames, then tear the 4th at every possible byte count.
  auto probe = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* probe_disk = probe.get();
  Result<std::unique_ptr<JournalWriter>> probe_writer =
      JournalWriter::Create(std::move(probe));
  ASSERT_TRUE(probe_writer.ok());
  size_t size_after_three = 0;
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    if (seq == 4) {
      size_after_three = probe_disk->contents().size();
    }
    ASSERT_TRUE((*probe_writer)->Append(seq, Record("LU", 0x1, 1)).ok());
  }
  const size_t frame4_size = probe_disk->contents().size() - size_after_three;

  for (size_t keep = 0; keep < frame4_size; ++keep) {
    auto file = std::make_unique<InMemorySyncFile>();
    InMemorySyncFile* disk = file.get();
    auto faulty = std::make_unique<FaultyFile>(std::move(file));
    FaultyFile* faults = faulty.get();
    Result<std::unique_ptr<JournalWriter>> writer =
        JournalWriter::Create(std::move(faulty));
    ASSERT_TRUE(writer.ok());
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE((*writer)->Append(seq, Record("LU", 0x1, 1)).ok());
    }
    faults->TearNextAppend(keep);
    // The torn append fails — the admission it backed was never accepted.
    EXPECT_FALSE((*writer)->Append(4, Record("LU", 0x1, 1)).ok());
    // And is poisoned for good: the disk is gone.
    EXPECT_FALSE((*writer)->Append(5, Record("LU", 0x1, 1)).ok());

    const Result<JournalReplay> replay =
        JournalReader::Parse(disk->contents());
    ASSERT_TRUE(replay.ok()) << "keep=" << keep << ": "
                             << replay.status().message();
    EXPECT_EQ(replay->entries.size(), 3u) << "keep=" << keep;
    EXPECT_EQ(replay->torn_tail, keep != 0) << "keep=" << keep;
  }
}

TEST(RecoveryFaultTest, TruncatedTailAlwaysRecoversAPrefix) {
  // Cut the journal at EVERY byte length. Each cut either replays cleanly
  // (a prefix of the entries, torn tail iff the cut is mid-frame) or —
  // never — reports entries that were not written. Cuts inside the magic
  // fail loudly instead.
  std::vector<size_t> boundaries;
  const std::string full = JournalBytes(6, &boundaries);
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    const Result<JournalReplay> replay =
        JournalReader::Parse(full.substr(0, cut));
    if (cut < sizeof(kJournalMagic)) {
      EXPECT_FALSE(replay.ok()) << "cut=" << cut;
      continue;
    }
    ASSERT_TRUE(replay.ok()) << "cut=" << cut << ": "
                             << replay.status().message();
    // Entries must be exactly the frames wholly inside the cut.
    size_t whole_frames = 0;
    while (whole_frames + 1 < boundaries.size() &&
           boundaries[whole_frames + 1] <= cut) {
      ++whole_frames;
    }
    EXPECT_EQ(replay->entries.size(), whole_frames) << "cut=" << cut;
    for (size_t i = 0; i < replay->entries.size(); ++i) {
      EXPECT_EQ(replay->entries[i].seq, i + 1) << "cut=" << cut;
    }
    EXPECT_EQ(replay->torn_tail, cut != boundaries[whole_frames])
        << "cut=" << cut;
    if (replay->torn_tail) {
      EXPECT_EQ(replay->torn_tail_offset, boundaries[whole_frames])
          << "cut=" << cut;
    }
  }
}

TEST(RecoveryFaultTest, TornFinalReconfigFrameDropsOnlyThatFrame) {
  // For each reconfiguration kind: two durable admissions, then the
  // reconfig frame tears at every possible byte count. The torn frame is
  // always dropped cleanly; the admissions always survive.
  const ConstraintSchema schema = IntervalSchema(1);
  const License acquired = MakeRedistribution(schema, "L6", {{300, 320}}, 9);
  const std::vector<int> expired = {0, 2};
  for (int kind = 0; kind < 3; ++kind) {
    // Probe the reconfig frame's on-disk size.
    size_t frame_size = 0;
    {
      auto probe = std::make_unique<InMemorySyncFile>();
      InMemorySyncFile* probe_disk = probe.get();
      Result<std::unique_ptr<JournalWriter>> writer =
          JournalWriter::Create(std::move(probe));
      ASSERT_TRUE(writer.ok());
      ASSERT_TRUE((*writer)->Append(1, Record("LU1", 0x1, 1)).ok());
      ASSERT_TRUE((*writer)->Append(2, Record("LU2", 0x2, 1)).ok());
      const size_t before = probe_disk->contents().size();
      switch (kind) {
        case 0:
          ASSERT_TRUE((*writer)->AppendAcquire(3, acquired).ok());
          break;
        case 1:
          ASSERT_TRUE((*writer)->AppendRevoke(3, 1, "L2").ok());
          break;
        default:
          ASSERT_TRUE((*writer)->AppendExpire(3, 0, 25, expired).ok());
          break;
      }
      frame_size = probe_disk->contents().size() - before;
    }
    ASSERT_GT(frame_size, 0u);

    for (size_t keep = 0; keep < frame_size; ++keep) {
      auto file = std::make_unique<InMemorySyncFile>();
      InMemorySyncFile* disk = file.get();
      auto faulty = std::make_unique<FaultyFile>(std::move(file));
      FaultyFile* faults = faulty.get();
      Result<std::unique_ptr<JournalWriter>> writer =
          JournalWriter::Create(std::move(faulty));
      ASSERT_TRUE(writer.ok());
      ASSERT_TRUE((*writer)->Append(1, Record("LU1", 0x1, 1)).ok());
      ASSERT_TRUE((*writer)->Append(2, Record("LU2", 0x2, 1)).ok());
      faults->TearNextAppend(keep);
      Status torn = Status::Ok();
      switch (kind) {
        case 0:
          torn = (*writer)->AppendAcquire(3, acquired);
          break;
        case 1:
          torn = (*writer)->AppendRevoke(3, 1, "L2");
          break;
        default:
          torn = (*writer)->AppendExpire(3, 0, 25, expired);
          break;
      }
      EXPECT_FALSE(torn.ok()) << "kind=" << kind << " keep=" << keep;

      const Result<JournalReplay> replay =
          JournalReader::Parse(disk->contents());
      ASSERT_TRUE(replay.ok()) << "kind=" << kind << " keep=" << keep << ": "
                               << replay.status().message();
      EXPECT_EQ(replay->entries.size(), 2u)
          << "kind=" << kind << " keep=" << keep;
      EXPECT_EQ(replay->torn_tail, keep != 0)
          << "kind=" << kind << " keep=" << keep;
    }
  }
}

TEST(RecoveryFaultTest, TruncatedLifecycleTailAlwaysRecoversAPrefix) {
  // The mixed-kind analogue of TruncatedTailAlwaysRecoversAPrefix: cutting
  // a journal with reconfiguration frames at every byte yields a clean
  // prefix (torn iff mid-frame), never a different history.
  const ConstraintSchema schema = IntervalSchema(1);
  std::vector<size_t> boundaries;
  const std::string full = LifecycleJournalBytes(schema, &boundaries);
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    const Result<JournalReplay> replay =
        JournalReader::Parse(full.substr(0, cut));
    if (cut < sizeof(kJournalMagic)) {
      EXPECT_FALSE(replay.ok()) << "cut=" << cut;
      continue;
    }
    ASSERT_TRUE(replay.ok()) << "cut=" << cut << ": "
                             << replay.status().message();
    size_t whole_frames = 0;
    while (whole_frames + 1 < boundaries.size() &&
           boundaries[whole_frames + 1] <= cut) {
      ++whole_frames;
    }
    EXPECT_EQ(replay->entries.size(), whole_frames) << "cut=" << cut;
    for (size_t i = 0; i < replay->entries.size(); ++i) {
      EXPECT_EQ(replay->entries[i].seq, i + 1) << "cut=" << cut;
    }
    EXPECT_EQ(replay->torn_tail, cut != boundaries[whole_frames])
        << "cut=" << cut;
  }
}

// --- Bit flips -------------------------------------------------------------

TEST(RecoveryFaultTest, EveryBitFlipFailsLoudlyWithAnOffset) {
  const std::string full = JournalBytes(4);
  for (size_t i = 0; i < full.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      const Result<JournalReplay> replay = JournalReader::Parse(mutated);
      // A flip is never silently absorbed: the parse fails, and when it is
      // past the magic the error names the bad frame's byte offset.
      ASSERT_FALSE(replay.ok())
          << "byte " << i << " bit " << bit << " slipped through";
      if (i >= sizeof(kJournalMagic)) {
        EXPECT_NE(replay.status().message().find("offset"), std::string::npos)
            << replay.status().message();
      }
    }
  }
}

TEST(RecoveryFaultTest, EveryBitFlipOnReconfigFramesFailsLoudly) {
  // The corruption matrix over a journal carrying the v3 reconfiguration
  // kinds: no flip anywhere — admission, acquire (with its embedded
  // serialized license), revoke or expire frame — may parse cleanly.
  const ConstraintSchema schema = IntervalSchema(1);
  const std::string full = LifecycleJournalBytes(schema);
  // Sanity: the clean bytes round-trip with the expected kind sequence.
  const Result<JournalReplay> clean = JournalReader::Parse(full);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->entries.size(), 6u);
  EXPECT_EQ(clean->entries[1].kind, JournalEntryKind::kAcquire);
  ASSERT_TRUE(clean->entries[1].acquired.has_value());
  EXPECT_EQ(clean->entries[1].acquired->id(), "L6");
  EXPECT_EQ(clean->entries[3].kind, JournalEntryKind::kRevoke);
  EXPECT_EQ(clean->entries[3].revoked_index, 1);
  EXPECT_EQ(clean->entries[3].revoked_id, "L2");
  EXPECT_EQ(clean->entries[4].kind, JournalEntryKind::kExpire);
  EXPECT_EQ(clean->entries[4].expire_dim, 0);
  EXPECT_EQ(clean->entries[4].expire_cutoff, 25);
  EXPECT_EQ(clean->entries[4].expired_indexes, (std::vector<int>{0, 2}));

  for (size_t i = 0; i < full.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      const Result<JournalReplay> replay = JournalReader::Parse(mutated);
      ASSERT_FALSE(replay.ok())
          << "byte " << i << " bit " << bit << " slipped through";
      if (i >= sizeof(kJournalMagic)) {
        EXPECT_NE(replay.status().message().find("offset"), std::string::npos)
            << replay.status().message();
      }
    }
  }
}

TEST(RecoveryFaultTest, DuplicateFrameInsertionFailsLoudly) {
  std::vector<size_t> boundaries;
  const std::string full = JournalBytes(3, &boundaries);
  // Splice a copy of frame 2 after itself: magic|f1|f2|f2|f3.
  const std::string frame2 =
      full.substr(boundaries[1], boundaries[2] - boundaries[1]);
  const std::string doctored = full.substr(0, boundaries[2]) + frame2 +
                               full.substr(boundaries[2]);
  const Result<JournalReplay> replay = JournalReader::Parse(doctored);
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.status().message().find("duplicate"), std::string::npos)
      << replay.status().message();
  EXPECT_NE(replay.status().message().find(std::to_string(boundaries[2])),
            std::string::npos)
      << replay.status().message();
}

TEST(RecoveryFaultTest, RandomMutationFuzzNeverSilentlyWrong) {
  const std::string full = JournalBytes(8);
  const Result<JournalReplay> clean = JournalReader::Parse(full);
  ASSERT_TRUE(clean.ok());
  Rng rng(testing::TestSeed(20260806));
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = full;
    const int edits = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int e = 0; e < edits; ++e) {
      const size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[at] = static_cast<char>(rng.UniformInt(0, 255));
    }
    if (mutated == full) {
      continue;
    }
    const Result<JournalReplay> replay = JournalReader::Parse(mutated);
    if (replay.ok()) {
      // Only acceptable clean outcome: a prefix of the true entries (the
      // mutation landed in the tail and reads as torn). Identical content
      // with fewer-or-equal entries, never different records.
      ASSERT_LE(replay->entries.size(), clean->entries.size());
      for (size_t i = 0; i < replay->entries.size(); ++i) {
        EXPECT_EQ(replay->entries[i].seq, clean->entries[i].seq);
        EXPECT_EQ(replay->entries[i].record.set, clean->entries[i].record.set);
        EXPECT_EQ(replay->entries[i].record.count,
                  clean->entries[i].record.count);
        EXPECT_EQ(replay->entries[i].record.issued_license_id,
                  clean->entries[i].record.issued_license_id);
      }
    }
  }
}

// --- Service wiring --------------------------------------------------------

TEST(RecoveryFaultTest, ServiceJournalsEveryAcceptedIssuance) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());

  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  Result<std::unique_ptr<JournalWriter>> journal =
      JournalWriter::Create(std::move(file));
  ASSERT_TRUE(journal.ok());
  ASSERT_FALSE((*service)->has_journal());
  ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());
  ASSERT_TRUE((*service)->has_journal());

  int accepted = 0;
  for (int i = 0; i < 30; ++i) {
    const Result<OnlineDecision> decision =
        (*service)->TryIssue(RequestAt(schema, i));
    ASSERT_TRUE(decision.ok());
    if (decision->aggregate_valid) {
      ++accepted;
    }
  }
  // An instance-invalid request must NOT hit the journal.
  const Result<OnlineDecision> outside =
      (*service)->TryIssue(MakeUsage(schema, "UX", {{500, 510}}, 1));
  ASSERT_TRUE(outside.ok());
  EXPECT_FALSE(outside->instance_valid);

  EXPECT_EQ((*service)->journal_sequence(), static_cast<uint64_t>(accepted));
  const Result<JournalReplay> replay = JournalReader::Parse(disk->contents());
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->entries.size(), static_cast<size_t>(accepted));

  // The journal replay IS the accepted multiset.
  LogStore journaled;
  for (const JournalEntry& entry : replay->entries) {
    ASSERT_TRUE(journaled.Append(entry.record).ok());
  }
  EXPECT_EQ(journaled.MergedCounts(), (*service)->CollectLog().MergedCounts());
}

TEST(RecoveryFaultTest, JournalFailureRejectsAdmissionAndLeavesStateClean) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());

  auto faulty = std::make_unique<FaultyFile>(
      std::make_unique<InMemorySyncFile>());
  FaultyFile* faults = faulty.get();
  Result<std::unique_ptr<JournalWriter>> journal =
      JournalWriter::Create(std::move(faulty));
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());

  ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, 0)).ok());
  const std::string before = (*service)->CollectTree()->ToString();
  const size_t log_before = (*service)->CollectLog().size();

  faults->CrashNow();
  // WAL contract: with the journal dead the admission errors out and no
  // in-memory state may have changed.
  const Result<OnlineDecision> denied =
      (*service)->TryIssue(RequestAt(schema, 1));
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ((*service)->CollectTree()->ToString(), before);
  EXPECT_EQ((*service)->CollectLog().size(), log_before);
  EXPECT_EQ((*service)->journal_sequence(), 1u);
}

TEST(RecoveryFaultTest, RecoverFromJournalAloneMatchesSerialReplay) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  const std::string journal_path =
      ::testing::TempDir() + "recover_journal_only.gjl";
  std::string expected_tree;
  {
    Result<std::unique_ptr<IssuanceService>> service =
        IssuanceService::Create(&licenses);
    ASSERT_TRUE(service.ok());
    Result<std::unique_ptr<JournalWriter>> journal =
        JournalWriter::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());
    for (int i = 0; i < 24; ++i) {
      ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, i)).ok());
    }
    expected_tree = (*service)->CollectTree()->ToString();
  }  // "Crash": the service object dies; only the journal file survives.

  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, /*checkpoint_path=*/"",
                               journal_path, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->CollectTree()->ToString(), expected_tree);
  EXPECT_EQ(stats.checkpoint_records, 0u);
  EXPECT_EQ(stats.journal_records_replayed, 24u);
  EXPECT_EQ(stats.journal_records_skipped, 0u);
  EXPECT_FALSE(stats.journal_torn_tail);
}

TEST(RecoveryFaultTest, RecoverFromCheckpointPlusJournalTail) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  const std::string checkpoint_path =
      ::testing::TempDir() + "recover_ckpt.gck";
  const std::string journal_path = ::testing::TempDir() + "recover_tail.gjl";
  std::string expected_tree;
  uint64_t seq_at_checkpoint = 0;
  {
    Result<std::unique_ptr<IssuanceService>> service =
        IssuanceService::Create(&licenses);
    ASSERT_TRUE(service.ok());
    Result<std::unique_ptr<JournalWriter>> journal =
        JournalWriter::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());
    for (int i = 0; i < 15; ++i) {
      ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, i)).ok());
    }
    ASSERT_TRUE((*service)->WriteCheckpoint(checkpoint_path).ok());
    seq_at_checkpoint = (*service)->journal_sequence();
    for (int i = 15; i < 24; ++i) {
      ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, i)).ok());
    }
    expected_tree = (*service)->CollectTree()->ToString();
  }

  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, checkpoint_path, journal_path,
                               &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->CollectTree()->ToString(), expected_tree);
  EXPECT_EQ(stats.checkpoint_records, 15u);
  EXPECT_EQ(stats.journal_records_skipped, seq_at_checkpoint);
  EXPECT_EQ(stats.journal_records_replayed, 24u - seq_at_checkpoint);

  // Recovery from the checkpoint ALONE yields exactly the covered prefix.
  RecoveryStats ckpt_stats;
  Result<std::unique_ptr<IssuanceService>> prefix =
      IssuanceService::Recover(&licenses, {}, checkpoint_path,
                               /*journal_path=*/"", &ckpt_stats);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(ckpt_stats.checkpoint_records, 15u);
  EXPECT_EQ((*prefix)->CollectLog().size(), 15u);
}

TEST(RecoveryFaultTest, RecoverAfterTornFinalFrameDropsOnlyThatFrame) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);

  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  auto faulty = std::make_unique<FaultyFile>(std::move(file));
  FaultyFile* faults = faulty.get();
  Result<std::unique_ptr<JournalWriter>> journal =
      JournalWriter::Create(std::move(faulty));
  ASSERT_TRUE(journal.ok());

  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, i)).ok());
  }
  const std::string tree_before_crash = (*service)->CollectTree()->ToString();

  // The 11th admission tears mid-frame: the service reports an error (the
  // issuance was NOT accepted) and the disk holds a torn tail.
  faults->TearNextAppend(7);
  EXPECT_FALSE((*service)->TryIssue(RequestAt(schema, 10)).ok());

  const std::string journal_path = ::testing::TempDir() + "recover_torn.gjl";
  {
    std::ofstream out(journal_path, std::ios::binary);
    out.write(disk->contents().data(),
              static_cast<std::streamsize>(disk->contents().size()));
  }
  RecoveryStats stats;
  Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, "", journal_path, &stats);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(stats.journal_torn_tail);
  EXPECT_EQ(stats.journal_records_replayed, 10u);
  // Exactly the pre-crash accepted set — the torn admission is absent from
  // both the pre-crash service state and the recovered one.
  EXPECT_EQ((*recovered)->CollectTree()->ToString(), tree_before_crash);
}

TEST(RecoveryFaultTest, RecoverRejectsCorruptJournalLoudly) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  const std::string journal_path =
      ::testing::TempDir() + "recover_corrupt.gjl";
  {
    Result<std::unique_ptr<IssuanceService>> service =
        IssuanceService::Create(&licenses);
    ASSERT_TRUE(service.ok());
    Result<std::unique_ptr<JournalWriter>> journal =
        JournalWriter::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*service)->AttachJournal(std::move(*journal)).ok());
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE((*service)->TryIssue(RequestAt(schema, i)).ok());
    }
  }
  // Flip one payload byte in the middle of the file.
  std::string bytes;
  {
    std::ifstream in(journal_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  {
    std::ofstream out(journal_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const Result<std::unique_ptr<IssuanceService>> recovered =
      IssuanceService::Recover(&licenses, {}, "", journal_path);
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.status().message().find("offset"), std::string::npos)
      << recovered.status().message();
}

TEST(RecoveryFaultTest, RecoverNeedsAtLeastOneSource) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  EXPECT_FALSE(IssuanceService::Recover(&licenses, {}, "", "").ok());
}

TEST(RecoveryFaultTest, AttachJournalGuards) {
  const ConstraintSchema schema = IntervalSchema(1);
  const LicenseCatalog licenses = ThreeGroupSet(schema, 100);
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  ASSERT_TRUE(service.ok());
  EXPECT_FALSE((*service)->AttachJournal(nullptr).ok());

  // A journal that already carries frames is not attachable.
  Result<std::unique_ptr<JournalWriter>> used =
      JournalWriter::Create(std::make_unique<InMemorySyncFile>());
  ASSERT_TRUE(used.ok());
  ASSERT_TRUE((*used)->Append(1, Record("LU", 0x1, 1)).ok());
  EXPECT_FALSE((*service)->AttachJournal(std::move(*used)).ok());

  Result<std::unique_ptr<JournalWriter>> fresh =
      JournalWriter::Create(std::make_unique<InMemorySyncFile>());
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE((*service)->AttachJournal(std::move(*fresh)).ok());
  Result<std::unique_ptr<JournalWriter>> second =
      JournalWriter::Create(std::make_unique<InMemorySyncFile>());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE((*service)->AttachJournal(std::move(*second)).ok());

  EXPECT_TRUE((*service)->SyncJournal().ok());
}

// --- Tenant-tagged frames & per-tenant spill containers --------------------

// Journal bytes carrying the multi-tenant catalog's v3 tenant-tagged frame
// in every TenantOpKind, interleaved across two tenants the way a shared
// pool writer interleaves them.
std::string TenantJournalBytes(const ConstraintSchema& schema,
                               std::vector<size_t>* boundaries = nullptr) {
  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(file));
  EXPECT_TRUE(writer.ok());
  const auto mark = [&] {
    if (boundaries != nullptr) {
      boundaries->push_back(disk->contents().size());
    }
  };
  mark();
  TenantOpFrame issue;
  issue.tenant_id = 7;
  issue.tenant_seq = 1;
  issue.op = TenantOpKind::kIssue;
  issue.license = MakeUsage(schema, "U1", {{12, 18}}, 1);
  EXPECT_TRUE((*writer)->AppendTenantOp(1, issue).ok());
  mark();
  TenantOpFrame acquire;
  acquire.tenant_id = 9;
  acquire.tenant_seq = 1;
  acquire.op = TenantOpKind::kAcquire;
  acquire.license = MakeRedistribution(schema, "L9", {{300, 320}}, 9);
  EXPECT_TRUE((*writer)->AppendTenantOp(2, acquire).ok());
  mark();
  TenantOpFrame revoke;
  revoke.tenant_id = 7;
  revoke.tenant_seq = 2;
  revoke.op = TenantOpKind::kRevoke;
  revoke.revoke_id = "L2";
  EXPECT_TRUE((*writer)->AppendTenantOp(3, revoke).ok());
  mark();
  TenantOpFrame expire;
  expire.tenant_id = 9;
  expire.tenant_seq = 2;
  expire.op = TenantOpKind::kExpire;
  expire.expire_dim = 0;
  expire.expire_cutoff = 25;
  EXPECT_TRUE((*writer)->AppendTenantOp(4, expire).ok());
  mark();
  return disk->contents();
}

TEST(RecoveryFaultTest, EveryBitFlipOnTenantFramesFailsLoudly) {
  // The corruption matrix over tenant-tagged frames: no flip anywhere —
  // tenant id, per-tenant sequence, op kind, or the embedded license — may
  // parse cleanly.
  const ConstraintSchema schema = IntervalSchema(1);
  const std::string full = TenantJournalBytes(schema);
  // Sanity: the clean bytes round-trip with all four op kinds and both
  // tenants' tags intact.
  const Result<JournalReplay> clean = JournalReader::Parse(full);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->entries.size(), 4u);
  for (const JournalEntry& entry : clean->entries) {
    EXPECT_EQ(entry.kind, JournalEntryKind::kTenantOp);
  }
  EXPECT_EQ(clean->entries[0].tenant.tenant_id, 7u);
  EXPECT_EQ(clean->entries[0].tenant.tenant_seq, 1u);
  EXPECT_EQ(clean->entries[0].tenant.op, TenantOpKind::kIssue);
  ASSERT_TRUE(clean->entries[0].tenant.license.has_value());
  EXPECT_EQ(clean->entries[0].tenant.license->id(), "U1");
  EXPECT_EQ(clean->entries[1].tenant.tenant_id, 9u);
  EXPECT_EQ(clean->entries[1].tenant.op, TenantOpKind::kAcquire);
  ASSERT_TRUE(clean->entries[1].tenant.license.has_value());
  EXPECT_EQ(clean->entries[1].tenant.license->id(), "L9");
  EXPECT_EQ(clean->entries[2].tenant.tenant_id, 7u);
  EXPECT_EQ(clean->entries[2].tenant.tenant_seq, 2u);
  EXPECT_EQ(clean->entries[2].tenant.op, TenantOpKind::kRevoke);
  EXPECT_EQ(clean->entries[2].tenant.revoke_id, "L2");
  EXPECT_EQ(clean->entries[3].tenant.op, TenantOpKind::kExpire);
  EXPECT_EQ(clean->entries[3].tenant.expire_dim, 0);
  EXPECT_EQ(clean->entries[3].tenant.expire_cutoff, 25);

  for (size_t i = 0; i < full.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = full;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      const Result<JournalReplay> replay = JournalReader::Parse(mutated);
      ASSERT_FALSE(replay.ok())
          << "byte " << i << " bit " << bit << " slipped through";
      if (i >= sizeof(kJournalMagic)) {
        EXPECT_NE(replay.status().message().find("offset"), std::string::npos)
            << replay.status().message();
      }
    }
  }
}

TEST(RecoveryFaultTest, TruncatedTenantTailAlwaysRecoversAPrefix) {
  // Cut the tenant-tagged journal at EVERY byte length: clean prefix of
  // whole frames, torn tail iff the cut is mid-frame — same contract as
  // the single-service frames, so catalog recovery can apply the same
  // torn-tail allowance.
  const ConstraintSchema schema = IntervalSchema(1);
  std::vector<size_t> boundaries;
  const std::string full = TenantJournalBytes(schema, &boundaries);
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    const Result<JournalReplay> replay =
        JournalReader::Parse(full.substr(0, cut));
    if (cut < sizeof(kJournalMagic)) {
      EXPECT_FALSE(replay.ok()) << "cut=" << cut;
      continue;
    }
    ASSERT_TRUE(replay.ok()) << "cut=" << cut << ": "
                             << replay.status().message();
    size_t whole_frames = 0;
    while (whole_frames + 1 < boundaries.size() &&
           boundaries[whole_frames + 1] <= cut) {
      ++whole_frames;
    }
    ASSERT_EQ(replay->entries.size(), whole_frames) << "cut=" << cut;
    for (size_t i = 0; i < replay->entries.size(); ++i) {
      EXPECT_EQ(replay->entries[i].kind, JournalEntryKind::kTenantOp)
          << "cut=" << cut;
      EXPECT_EQ(replay->entries[i].tenant.tenant_id, i % 2 == 0 ? 7u : 9u)
          << "cut=" << cut;
    }
    EXPECT_EQ(replay->torn_tail, cut != boundaries[whole_frames])
        << "cut=" << cut;
  }
}

TEST(RecoveryFaultTest, SpillBitFlipsFailTheirOwnTenantOnlyWithAnOffset) {
  // Corrupting one cold tenant's spill checkpoint must fail exactly that
  // tenant's reload — loudly, naming a byte offset once the damage is past
  // the magic — while its siblings keep serving untouched.
  MultiTenantConfig config;
  config.num_tenants = 2;
  config.base.dimensions = 2;
  config.min_licenses = 2;
  config.max_licenses = 3;
  const MultiTenantWorkload workload(config);
  WorkloadTenantSource source(&workload);
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("geolic-spill-matrix-" + std::to_string(::getpid()));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  CatalogOptions options;
  options.dir = dir.string();
  options.fsync_interval = 0;  // Throughput: the matrix is I/O-bound.
  Result<std::unique_ptr<CatalogService>> catalog =
      CatalogService::Create(&source, options);
  ASSERT_TRUE(catalog.ok());

  // Materialize and spill tenant 0; keep tenant 1 live as the sibling.
  ASSERT_TRUE((*catalog)->TenantEpoch(0).ok());
  ASSERT_TRUE((*catalog)->SpillTenant(0).ok());
  Result<Workload> tenant0 = workload.MakeTenant(0);
  ASSERT_TRUE(tenant0.ok());
  Result<Workload> tenant1 = workload.MakeTenant(1);
  ASSERT_TRUE(tenant1.ok());
  Rng rng(20260808);

  const std::string spill_path = (*catalog)->SpillPath(0);
  std::string clean;
  {
    std::ifstream in(spill_path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    clean = buf.str();
  }
  ASSERT_GT(clean.size(), 32u);

  const auto rewrite = [&](const std::string& bytes) {
    std::ofstream out(spill_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  };

  // One flipped bit per byte position (bit rotates with the offset): the
  // reload must fail every time, and never disturb the sibling.
  for (size_t i = 0; i < clean.size(); ++i) {
    std::string mutated = clean;
    mutated[i] = static_cast<char>(mutated[i] ^ (1 << (i % 8)));
    rewrite(mutated);
    const Result<OnlineDecision> broken = (*catalog)->TryIssue(
        0, workload.DrawRequest(*tenant0, &rng, static_cast<int64_t>(i)));
    ASSERT_FALSE(broken.ok()) << "byte " << i << " slipped through";
    if (i >= 8) {  // Past the checkpoint magic.
      EXPECT_NE(broken.status().message().find("offset"), std::string::npos)
          << broken.status().message();
    }
    if (i % 64 == 0) {
      const Result<OnlineDecision> sibling = (*catalog)->TryIssue(
          1, workload.DrawRequest(*tenant1, &rng, static_cast<int64_t>(i)));
      EXPECT_TRUE(sibling.ok()) << "sibling poisoned at byte " << i << ": "
                                << sibling.status().message();
    }
  }

  // Truncation sweep: every cut of the container fails the reload too.
  for (size_t cut = 0; cut < clean.size(); cut += 7) {
    rewrite(clean.substr(0, cut));
    const Result<OnlineDecision> broken = (*catalog)->TryIssue(
        0, workload.DrawRequest(*tenant0, &rng, static_cast<int64_t>(cut)));
    ASSERT_FALSE(broken.ok()) << "cut " << cut << " slipped through";
  }

  // Restoring the clean container heals the tenant in place: the failed
  // reloads cached nothing.
  rewrite(clean);
  const Result<OnlineDecision> healed =
      (*catalog)->TryIssue(0, workload.DrawRequest(*tenant0, &rng, 999));
  EXPECT_TRUE(healed.ok()) << healed.status().message();
  const Result<OnlineDecision> sibling =
      (*catalog)->TryIssue(1, workload.DrawRequest(*tenant1, &rng, 999));
  EXPECT_TRUE(sibling.ok());

  ASSERT_TRUE((*catalog)->Close().ok());
  catalog->reset();
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace geolic
