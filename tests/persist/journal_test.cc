#include "persist/journal.h"

#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "persist/sync_file.h"

#include "test_util.h"

namespace geolic {
namespace {

// Forwards to a test-owned file so the disk outlives the JournalWriter —
// lets a test destroy the writer and then inspect what a crash right
// after shutdown would leave behind.
class ForwardingSyncFile : public SyncFile {
 public:
  explicit ForwardingSyncFile(SyncFile* target) : target_(target) {}
  Status Append(std::string_view data) override {
    return target_->Append(data);
  }
  Status Sync() override { return target_->Sync(); }
  Status Close() override { return target_->Close(); }

 private:
  SyncFile* target_;
};

LogRecord Record(const std::string& id, uint64_t mask, int64_t count) {
  const LicenseSet set = LicenseSet::FromWord(mask);
  LogRecord record;
  record.issued_license_id = id;
  record.set = set;
  record.count = count;
  return record;
}

TEST(JournalTest, RoundTripsFrames) {
  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(file));
  ASSERT_TRUE(writer.ok());

  ASSERT_TRUE((*writer)->Append(1, Record("LU1", 0x3, 10)).ok());
  ASSERT_TRUE((*writer)->Append(2, Record("", 0x5, 1)).ok());
  ASSERT_TRUE((*writer)->Append(3, Record("LU3", 0x1, 7)).ok());
  EXPECT_EQ((*writer)->frames_appended(), 3u);

  const Result<JournalReplay> replay = JournalReader::Parse(disk->contents());
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->torn_tail);
  ASSERT_EQ(replay->entries.size(), 3u);
  EXPECT_EQ(replay->entries[0].seq, 1u);
  EXPECT_EQ(replay->entries[0].record.issued_license_id, "LU1");
  EXPECT_EQ(replay->entries[0].record.set, testing::Mask(0x3));
  EXPECT_EQ(replay->entries[0].record.count, 10);
  EXPECT_EQ(replay->entries[1].record.issued_license_id, "");
  EXPECT_EQ(replay->entries[2].seq, 3u);
}

TEST(JournalTest, EmptyJournalIsJustTheMagic) {
  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  const Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(file));
  ASSERT_TRUE(writer.ok());  // Keeps the writer (and the disk) alive.
  EXPECT_EQ(disk->contents().size(), sizeof(kJournalMagic));
  // The magic is synced immediately so recovery never sees garbage.
  EXPECT_EQ(disk->synced_size(), sizeof(kJournalMagic));
  const Result<JournalReplay> replay = JournalReader::Parse(disk->contents());
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay->entries.empty());
  EXPECT_FALSE(replay->torn_tail);
}

TEST(JournalTest, RejectsBadMagic) {
  EXPECT_FALSE(JournalReader::Parse("NOTAJRNL").ok());
  EXPECT_FALSE(JournalReader::Parse("").ok());
}

TEST(JournalTest, FsyncEveryAppendKeepsDiskSynced) {
  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  JournalOptions options;
  options.fsync_interval = 1;
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(file), options);
  ASSERT_TRUE(writer.ok());
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_TRUE((*writer)->Append(seq, Record("LU", 0x1, 1)).ok());
    EXPECT_EQ(disk->synced_size(), disk->contents().size()) << seq;
  }
}

TEST(JournalTest, FsyncBatchingTrailsByAtMostTheInterval) {
  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  JournalOptions options;
  options.fsync_interval = 4;
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(file), options);
  ASSERT_TRUE(writer.ok());

  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE((*writer)->Append(seq, Record("LU", 0x1, 1)).ok());
    // Not yet at the interval: only the magic is acknowledged durable.
    EXPECT_EQ(disk->synced_size(), sizeof(kJournalMagic)) << seq;
  }
  ASSERT_TRUE((*writer)->Append(4, Record("LU", 0x1, 1)).ok());
  EXPECT_EQ(disk->synced_size(), disk->contents().size());

  // The synced prefix alone must always replay cleanly (a crash loses the
  // unsynced suffix, never corrupts the acknowledged part).
  ASSERT_TRUE((*writer)->Append(5, Record("LU", 0x1, 1)).ok());
  const Result<JournalReplay> replay =
      JournalReader::Parse(disk->synced_contents());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->entries.size(), 4u);
}

TEST(JournalTest, ManualSyncFlushesWithIntervalZero) {
  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  JournalOptions options;
  options.fsync_interval = 0;
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(file), options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(1, Record("LU", 0x1, 1)).ok());
  EXPECT_LT(disk->synced_size(), disk->contents().size());
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ(disk->synced_size(), disk->contents().size());
}

// Satellite regression: with batched fsync (interval > 1) the writer used
// to leave the tail of appends unsynced on shutdown, so a clean close
// behaved like a crash and dropped acknowledged records. Close must flush
// whatever the interval is still holding back.
TEST(JournalTest, CloseFlushesTheBatchedFsyncTail) {
  InMemorySyncFile disk;
  JournalOptions options;
  options.fsync_interval = 4;
  Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::Create(
      std::make_unique<ForwardingSyncFile>(&disk), options);
  ASSERT_TRUE(writer.ok());
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE((*writer)->Append(seq, Record("LU", 0x1, 1)).ok());
  }
  // Below the interval: the tail is not yet acknowledged durable.
  ASSERT_LT(disk.synced_size(), disk.contents().size());

  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_EQ(disk.synced_size(), disk.contents().size());
  const Result<JournalReplay> replay =
      JournalReader::Parse(disk.synced_contents());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->entries.size(), 3u);
  EXPECT_FALSE(replay->torn_tail);

  // A closed writer refuses further work; Close stays idempotent.
  EXPECT_FALSE((*writer)->Append(4, Record("LU", 0x1, 1)).ok());
  EXPECT_FALSE((*writer)->Sync().ok());
  EXPECT_TRUE((*writer)->Close().ok());
}

// Destroying the writer without an explicit Close must flush the same
// tail — RAII teardown is the common shutdown path in the service.
TEST(JournalTest, DestructionFlushesTheBatchedFsyncTail) {
  InMemorySyncFile disk;
  JournalOptions options;
  options.fsync_interval = 8;
  {
    Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::Create(
        std::make_unique<ForwardingSyncFile>(&disk), options);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(1, Record("LU1", 0x3, 10)).ok());
    ASSERT_TRUE((*writer)->Append(2, Record("LU2", 0x5, 1)).ok());
    ASSERT_LT(disk.synced_size(), disk.contents().size());
  }
  const Result<JournalReplay> replay =
      JournalReader::Parse(disk.synced_contents());
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->entries.size(), 2u);
  EXPECT_FALSE(replay->torn_tail);
}

TEST(JournalTest, RejectsSequenceZero) {
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::make_unique<InMemorySyncFile>());
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE((*writer)->Append(0, Record("LU", 0x1, 1)).ok());
}

TEST(JournalTest, ReaderRejectsGapsAndDuplicates) {
  auto file = std::make_unique<InMemorySyncFile>();
  InMemorySyncFile* disk = file.get();
  Result<std::unique_ptr<JournalWriter>> writer =
      JournalWriter::Create(std::move(file));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(1, Record("LU1", 0x1, 1)).ok());
  const std::string after_first = disk->contents();
  const std::string frame1 = after_first.substr(sizeof(kJournalMagic));

  // Duplicate: frame 1 appended twice.
  {
    const Result<JournalReplay> replay =
        JournalReader::Parse(after_first + frame1);
    ASSERT_FALSE(replay.ok());
    EXPECT_NE(replay.status().message().find("duplicate"), std::string::npos)
        << replay.status().message();
    EXPECT_NE(replay.status().message().find("offset"), std::string::npos);
  }

  // Gap: seq jumps 1 -> 3.
  ASSERT_TRUE((*writer)->Append(3, Record("LU3", 0x1, 1)).ok());
  {
    const Result<JournalReplay> replay =
        JournalReader::Parse(disk->contents());
    ASSERT_FALSE(replay.ok());
    EXPECT_NE(replay.status().message().find("gap"), std::string::npos)
        << replay.status().message();
  }
}

TEST(JournalTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "journal_file_test.gjl";
  {
    Result<std::unique_ptr<JournalWriter>> writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(1, Record("LU1", 0x7, 42)).ok());
    ASSERT_TRUE((*writer)->Append(2, Record("LU2", 0x1, 1)).ok());
  }
  const Result<JournalReplay> replay = JournalReader::ReadFile(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->entries.size(), 2u);
  EXPECT_EQ(replay->entries[0].record.count, 42);
}

TEST(JournalTest, EncodeDecodeLogRecordRoundTrip) {
  const LogRecord original = Record("LU-long-id-0123456789", 0xdeadbeef, 7);
  std::string bytes;
  EncodeLogRecord(original, &bytes);
  LogRecord decoded;
  size_t pos = 0;
  ASSERT_TRUE(DecodeLogRecord(bytes, &pos, &decoded).ok());
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(decoded.issued_license_id, original.issued_license_id);
  EXPECT_EQ(decoded.set, original.set);
  EXPECT_EQ(decoded.count, original.count);
}

}  // namespace
}  // namespace geolic
