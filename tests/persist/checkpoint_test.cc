#include "persist/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace geolic {
namespace {

std::string Framed(CheckpointKind kind, const std::string& payload) {
  std::ostringstream out;
  EXPECT_TRUE(WriteCheckpoint(kind, payload, &out).ok());
  return out.str();
}

TEST(CheckpointTest, RoundTrip) {
  const std::string payload = "tree bytes go here";
  const std::string framed = Framed(CheckpointKind::kValidationTree, payload);
  std::istringstream in(framed);
  const Result<std::string> read =
      ReadCheckpointPayload(CheckpointKind::kValidationTree, &in);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

TEST(CheckpointTest, EmptyPayloadRoundTrips) {
  const std::string framed = Framed(CheckpointKind::kLogStore, "");
  std::istringstream in(framed);
  const Result<std::string> read =
      ReadCheckpointPayload(CheckpointKind::kLogStore, &in);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST(CheckpointTest, RejectsWrongKind) {
  const std::string framed = Framed(CheckpointKind::kValidationTree, "abc");
  std::istringstream in(framed);
  const Result<std::string> read =
      ReadCheckpointPayload(CheckpointKind::kLogStore, &in);
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("kind"), std::string::npos)
      << read.status().message();
}

TEST(CheckpointTest, EveryFlippedBitFailsTheRead) {
  const std::string framed =
      Framed(CheckpointKind::kServiceSnapshot, "payload under test");
  for (size_t i = 0; i < framed.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = framed;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      std::istringstream in(mutated);
      const Result<std::string> read =
          ReadCheckpointPayload(CheckpointKind::kServiceSnapshot, &in);
      EXPECT_FALSE(read.ok()) << "byte " << i << " bit " << bit
                              << " slipped through";
    }
  }
}

TEST(CheckpointTest, EveryTruncationFailsTheRead) {
  const std::string framed =
      Framed(CheckpointKind::kValidationTree, "0123456789");
  for (size_t keep = 0; keep < framed.size(); ++keep) {
    std::istringstream in(framed.substr(0, keep));
    const Result<std::string> read =
        ReadCheckpointPayload(CheckpointKind::kValidationTree, &in);
    EXPECT_FALSE(read.ok()) << "kept " << keep << " of " << framed.size();
  }
}

TEST(CheckpointTest, TrailingGarbageIsLeftInTheStream) {
  // The container frames exactly one payload; callers embedding several
  // sections read them in sequence. Bytes after the footer stay unread.
  const std::string framed = Framed(CheckpointKind::kLogStore, "abc");
  std::istringstream in(framed + "XYZ");
  const Result<std::string> read =
      ReadCheckpointPayload(CheckpointKind::kLogStore, &in);
  ASSERT_TRUE(read.ok());
  std::string rest;
  in >> rest;
  EXPECT_EQ(rest, "XYZ");
}

TEST(CheckpointTest, OverdeclaredPayloadSizeFailsBeforeAllocation) {
  // A header whose declared size vastly exceeds the actual bytes must fail
  // the header CRC (any size edit does) — and even a correctly-CRC'd huge
  // header fails on the chunked read, never a 2^40-byte allocation.
  std::string framed = Framed(CheckpointKind::kValidationTree, "tiny");
  // payload_size lives at offset 16..23; bump its high byte.
  framed[22] = static_cast<char>(0x10);
  std::istringstream in(framed);
  const Result<std::string> read =
      ReadCheckpointPayload(CheckpointKind::kValidationTree, &in);
  ASSERT_FALSE(read.ok());
}

TEST(CheckpointTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "checkpoint_test.gck";
  ASSERT_TRUE(
      WriteCheckpointFile(CheckpointKind::kLogStore, "file payload", path)
          .ok());
  const Result<std::string> read =
      ReadCheckpointFile(CheckpointKind::kLogStore, path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "file payload");
}

TEST(CheckpointTest, DurableFileWritePublishesAtomically) {
  const std::string path = ::testing::TempDir() + "checkpoint_durable.gck";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");

  ASSERT_TRUE(WriteCheckpointFileDurable(CheckpointKind::kTenantSnapshot,
                                         "generation one", path)
                  .ok());
  Result<std::string> read =
      ReadCheckpointFile(CheckpointKind::kTenantSnapshot, path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "generation one");
  // The rename consumed the temp file — nothing left to confuse a reused
  // directory.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Overwrite: the new generation replaces the old in one rename.
  ASSERT_TRUE(WriteCheckpointFileDurable(CheckpointKind::kTenantSnapshot,
                                         "generation two", path)
                  .ok());
  read = ReadCheckpointFile(CheckpointKind::kTenantSnapshot, path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "generation two");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(CheckpointTest, DurableFileWriteIgnoresStaleTemp) {
  // A crash between the temp write and the rename leaves `path.tmp`
  // behind; the next durable write must truncate it and publish cleanly.
  const std::string path = ::testing::TempDir() + "checkpoint_stale.gck";
  std::filesystem::remove(path);
  {
    std::ofstream stale(path + ".tmp", std::ios::binary);
    stale << "torn earlier generation";
  }
  ASSERT_TRUE(WriteCheckpointFileDurable(CheckpointKind::kTenantSnapshot,
                                         "fresh", path)
                  .ok());
  const Result<std::string> read =
      ReadCheckpointFile(CheckpointKind::kTenantSnapshot, path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "fresh");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(CheckpointTest, KindNames) {
  EXPECT_STREQ(CheckpointKindName(CheckpointKind::kValidationTree),
               "validation-tree");
  EXPECT_STREQ(CheckpointKindName(CheckpointKind::kLogStore), "log-store");
  EXPECT_STREQ(CheckpointKindName(CheckpointKind::kServiceSnapshot),
               "service-snapshot");
}

}  // namespace
}  // namespace geolic
