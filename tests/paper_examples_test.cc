// Locks in the paper's worked examples: Example 1's five redistribution
// licenses, Table 2's log, the Figure 1 validation tree, the Figure 3
// overlap graph and groups, Example 2's equation expansion, Figures 4/5's
// tree division and reindexing, and Section 4.2's 3.1× gain illustration.
#include <gtest/gtest.h>

#include "core/gain.h"
#include "core/grouped_validator.h"
#include "core/grouping.h"
#include "core/instance_validator.h"
#include "core/online_validator.h"
#include "core/overlap_graph.h"
#include "licensing/license_parser.h"
#include "validation/validation_tree.h"
#include "validation/validate.h"

#include "test_util.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

class PaperExamplesTest : public ::testing::Test {
 protected:
  PaperExamplesTest() : schema_(ConstraintSchema::PaperExampleSchema()) {
    licenses_ = std::make_unique<LicenseCatalog>(&schema_);
    const char* texts[] = {
        "(K; Play; T=[10/03/09, 20/03/09]; R=[Asia, Europe]; A=2000)",
        "(K; Play; T=[15/03/09, 25/03/09]; R=[Asia]; A=1000)",
        "(K; Play; T=[15/03/09, 30/03/09]; R=[America]; A=3000)",
        "(K; Play; T=[15/03/09, 15/04/09]; R=[Europe]; A=4000)",
        "(K; Play; T=[25/03/09, 10/04/09]; R=[America]; A=2000)",
    };
    for (int i = 0; i < 5; ++i) {
      Result<License> license =
          ParseLicense(texts[i], schema_, LicenseType::kRedistribution,
                       "LD" + std::to_string(i + 1));
      GEOLIC_CHECK(license.ok());
      GEOLIC_CHECK(licenses_->Add(*std::move(license)).ok());
    }
  }

  // Usage license in the paper's notation.
  License Usage(const std::string& id, const std::string& period,
                const std::string& region, int64_t count) {
    Result<License> license = ParseLicense(
        "(K; Play; T=" + period + "; R=[" + region + "]; A=" +
            std::to_string(count) + ")",
        schema_, LicenseType::kUsage, id);
    GEOLIC_CHECK(license.ok());
    return *std::move(license);
  }

  // Table 2's six log records.
  LogStore Table2Log() {
    LogStore log;
    struct Row {
      const char* id;
      uint64_t mask;
      int64_t count;
    };
    const Row kRows[] = {
        {"LU1", 0b00011, 800}, {"LU2", 0b00010, 400}, {"LU3", 0b00011, 40},
        {"LU4", 0b01011, 30},  {"LU5", 0b10100, 800}, {"LU6", 0b10000, 20},
    };
    for (const Row& row : kRows) {
      GEOLIC_CHECK(
          log.Append(
                 LogRecord{row.id, LicenseSet::FromWord(row.mask), row.count})
              .ok());
    }
    return log;
  }

  ConstraintSchema schema_;
  std::unique_ptr<LicenseCatalog> licenses_;
};

TEST_F(PaperExamplesTest, Example1InstanceValidation) {
  const LinearInstanceValidator validator(licenses_.get());
  // "L_U^1 satisfies all instance based constraints for L_D^1 and L_D^2."
  const License lu1 = Usage("LU1", "[15/03/09, 19/03/09]", "India", 800);
  EXPECT_EQ(validator.SatisfyingSet(lu1), testing::Mask(0b00011));
  // "L_U^2 satisfies all the instance based constraints only for L_D^2."
  const License lu2 = Usage("LU2", "[21/03/09, 24/03/09]", "Japan", 400);
  EXPECT_EQ(validator.SatisfyingSet(lu2), testing::Mask(0b00010));
}

TEST_F(PaperExamplesTest, Example1BothLicensesValidUnderEquationValidation) {
  // The paper's point: random selection of L_D^2 for LU1 would leave only
  // 200 counts and wrongly invalidate LU2; equation-based validation
  // accepts both.
  Result<OnlineValidator> validator =
      OnlineValidator::Create(licenses_.get());
  ASSERT_TRUE(validator.ok());
  const Result<OnlineDecision> first =
      validator->TryIssue(Usage("LU1", "[15/03/09, 19/03/09]", "India", 800));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->accepted());
  const Result<OnlineDecision> second =
      validator->TryIssue(Usage("LU2", "[21/03/09, 24/03/09]", "Japan", 400));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->accepted());
}

TEST_F(PaperExamplesTest, Table2SetCountsAfterLU6) {
  // "the value of C[{L1,L2}], C[{L2}], C[{L1,L2,L4}], C[{L3,L5}] and
  // C[{L5}] will be 840, 400, 30, 800 and 20 respectively."
  const auto merged = Table2Log().MergedCounts();
  EXPECT_EQ(merged.at(testing::Mask(0b00011)), 840);
  EXPECT_EQ(merged.at(testing::Mask(0b00010)), 400);
  EXPECT_EQ(merged.at(testing::Mask(0b01011)), 30);
  EXPECT_EQ(merged.at(testing::Mask(0b10100)), 800);
  EXPECT_EQ(merged.at(testing::Mask(0b10000)), 20);
}

TEST_F(PaperExamplesTest, AggregateSumExample) {
  // "A[{L1, L2, L3}] ... will be 2000 + 1000 + 3000 = 6000."
  EXPECT_EQ(licenses_->AggregateSum(testing::Mask(0b00111)), 6000);
}

TEST_F(PaperExamplesTest, FiveLicensesNeed31Equations) {
  // "Since there are five redistribution licenses therefore N=5 ... total
  // 2^5 − 1 = 31 validation equations are required."
  EXPECT_EQ(EquationCount(licenses_->size()), 31u);
  const Result<ValidationTree> tree =
      ValidationTree::BuildFromLog(Table2Log());
  ASSERT_TRUE(tree.ok());
  const Result<ValidationReport> report =
      RunExhaustive(*tree, licenses_->AggregateCounts());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->equations_evaluated, 31u);
  EXPECT_TRUE(report->all_valid());
}

TEST_F(PaperExamplesTest, Example2EquationExpansion) {
  // Equation for {L2, L3, L4}: Σ of C over its 7 non-empty subsets ≤ 8000.
  const LicenseSet set = testing::Mask(0b01110);
  const auto merged = Table2Log().MergedCounts();
  int64_t direct = 0;
  int subsets = 0;
  for (SubsetIterator it(set); !it.Done(); it.Next()) {
    auto found = merged.find(it.subset());
    if (found != merged.end()) {
      direct += found->second;
    }
    ++subsets;
  }
  EXPECT_EQ(subsets, 7);
  // Only C[{L2}] = 400 is non-zero among those subsets.
  EXPECT_EQ(direct, 400);
  EXPECT_EQ(licenses_->AggregateSum(set), 8000);

  const Result<ValidationTree> tree =
      ValidationTree::BuildFromLog(Table2Log());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->SumSubsets(set), 400);
}

TEST_F(PaperExamplesTest, Figure3OverlapGraphAndGroups) {
  const AdjacencyMatrix graph = BuildOverlapGraph(*licenses_);
  // Edges: L1-L2 (share Asia in mid-March), L1-L4 (share Europe),
  // L3-L5 (share America late March). No others.
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_TRUE(graph.HasEdge(0, 3));
  EXPECT_TRUE(graph.HasEdge(2, 4));
  EXPECT_EQ(graph.EdgeCount(), 3);
  // L2-L4: periods overlap but Asia ∩ Europe = ∅.
  EXPECT_FALSE(graph.HasEdge(1, 3));

  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(*licenses_);
  ASSERT_EQ(grouping.group_count(), 2);
  EXPECT_EQ(grouping.GroupMask(0), testing::Mask(0b01011));  // Group 1: (L1, L2, L4).
  EXPECT_EQ(grouping.GroupMask(1), testing::Mask(0b10100));  // Group 2: (L3, L5).
}

TEST_F(PaperExamplesTest, Theorem1NoCommonRegionMeansZeroCount) {
  // "C[{L1, L2, L3}] will always be 0": L1, L2, L3 share no common region.
  const Result<HyperRect> region = HyperRect::CommonRegion(
      {licenses_->at(0).rect(), licenses_->at(1).rect(),
       licenses_->at(2).rect()});
  ASSERT_TRUE(region.ok());
  EXPECT_TRUE(region->IsEmpty());
  // And indeed no log record can carry that set: any usage license inside
  // all three would need a region in Asia∩America.
  const auto merged = Table2Log().MergedCounts();
  EXPECT_EQ(merged.find(testing::Mask(0b00111)), merged.end());
}

TEST_F(PaperExamplesTest, Theorem2EquationDecomposition) {
  // For S = {L1..L5} = S1 ∪ S2 with S1 = {L1,L2,L4}, S2 = {L3,L5}:
  // C⟨S⟩ = C⟨S1⟩ + C⟨S2⟩ and A[S] = A[S1] + A[S2].
  const Result<ValidationTree> tree =
      ValidationTree::BuildFromLog(Table2Log());
  ASSERT_TRUE(tree.ok());
  const LicenseSet s = testing::Mask(0b11111);
  const LicenseSet s1 = testing::Mask(0b01011);
  const LicenseSet s2 = testing::Mask(0b10100);
  EXPECT_EQ(tree->SumSubsets(s), tree->SumSubsets(s1) + tree->SumSubsets(s2));
  EXPECT_EQ(licenses_->AggregateSum(s),
            licenses_->AggregateSum(s1) + licenses_->AggregateSum(s2));
}

TEST_F(PaperExamplesTest, Figures4And5DivisionAndModification) {
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(*licenses_);
  Result<ValidationTree> tree = ValidationTree::BuildFromLog(Table2Log());
  ASSERT_TRUE(tree.ok());
  const Result<DividedTrees> divided = DivideAndReindex(
      *std::move(tree), grouping, licenses_->AggregateCounts());
  ASSERT_TRUE(divided.ok());
  ASSERT_EQ(divided->trees.size(), 2u);

  // Figure 5, first tree (indexes already 1..3): branches
  // L1→L2(840)→L3(30)... in local indexes {L1→0, L2→1, L4→2}.
  const ValidationTree& first = divided->trees[0];
  EXPECT_EQ(first.CountOf(testing::Mask(0b011)), 840);
  EXPECT_EQ(first.CountOf(testing::Mask(0b010)), 400);
  EXPECT_EQ(first.CountOf(testing::Mask(0b111)), 30);
  // Figure 5, second tree: indexes 3, 5 → 1, 2.
  const ValidationTree& second = divided->trees[1];
  EXPECT_EQ(second.CountOf(testing::Mask(0b11)), 800);
  EXPECT_EQ(second.CountOf(testing::Mask(0b10)), 20);
  // A_1 = (2000, 1000, 4000), A_2 = (3000, 2000).
  EXPECT_EQ(divided->aggregates[0],
            (std::vector<int64_t>{2000, 1000, 4000}));
  EXPECT_EQ(divided->aggregates[1], (std::vector<int64_t>{3000, 2000}));
}

TEST_F(PaperExamplesTest, Section42GainIllustration) {
  // "the approximate gain in this case would be
  // (2^5−1)/((2^3−1)+(2^2−1)) = 3.1 times."
  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(*licenses_);
  std::vector<int> sizes;
  for (int k = 0; k < grouping.group_count(); ++k) {
    sizes.push_back(grouping.GroupSize(k));
  }
  EXPECT_NEAR(TheoreticalGain(sizes), 3.1, 1e-9);

  Result<ValidationTree> tree = ValidationTree::BuildFromLog(Table2Log());
  ASSERT_TRUE(tree.ok());
  const Result<GroupedValidationResult> grouped =
      ValidateGrouped(*licenses_, *std::move(tree));
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->report.equations_evaluated, 10u);  // 7 + 3 vs 31.
  EXPECT_TRUE(grouped->report.all_valid());
}

TEST_F(PaperExamplesTest, Figure2InvalidUsageLicense) {
  // A usage license not inside any redistribution license is invalid
  // outright (figure 2's L_U^2 in the geometric illustration).
  const LinearInstanceValidator validator(licenses_.get());
  // Africa is outside every example license's regions.
  const License stray = Usage("LUX", "[15/03/09, 19/03/09]", "Egypt", 10);
  EXPECT_TRUE(validator.SatisfyingSet(stray).Empty());
}

}  // namespace
}  // namespace geolic
