#include "obs/exposition.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_parser_test_util.h"
#include "obs/trace.h"
#include "util/metrics.h"

namespace geolic {
namespace {

using geolic::testing::JsonValue;
using geolic::testing::ParseJson;

// Deterministic input used by both golden tests: 8 requests, latency in
// buckets 3 ([8,16)) and 6 ([64,128)), journal + recovery sections on.
ExpositionInput GoldenInput() {
  ExpositionInput input;
  input.metrics.accepted = 5;
  input.metrics.rejected_instance = 2;
  input.metrics.rejected_aggregate = 1;
  input.metrics.equations_checked = 37;
  input.metrics.batches = 2;
  input.metrics.batched_requests = 6;
  input.metrics.latency.counts[3] = 7;
  input.metrics.latency.counts[6] = 1;
  input.metrics.latency.total_count = 8;
  input.metrics.latency.total_nanos = 1234;
  input.metrics.latency.clamped_negative = 1;
  input.has_journal = true;
  input.journal_sequence = 8;
  input.has_recovery = true;
  input.recovery_checkpoint_records = 3;
  input.recovery_journal_replayed = 5;
  input.recovery_journal_skipped = 1;
  input.recovery_torn_tail = true;
  return input;
}

TEST(ExpositionTest, GoldenPrometheusText) {
  const std::string expected =
      "# HELP geolic_requests_total Admission decisions by outcome.\n"
      "# TYPE geolic_requests_total counter\n"
      "geolic_requests_total{service=\"geolic\",outcome=\"accepted\"} 5\n"
      "geolic_requests_total{service=\"geolic\","
      "outcome=\"rejected_instance\"} 2\n"
      "geolic_requests_total{service=\"geolic\","
      "outcome=\"rejected_aggregate\"} 1\n"
      "# HELP geolic_equations_checked_total Validation equations "
      "evaluated.\n"
      "# TYPE geolic_equations_checked_total counter\n"
      "geolic_equations_checked_total{service=\"geolic\"} 37\n"
      "# HELP geolic_batches_total TryIssueBatch calls.\n"
      "# TYPE geolic_batches_total counter\n"
      "geolic_batches_total{service=\"geolic\"} 2\n"
      "# HELP geolic_batched_requests_total Requests admitted through "
      "batches.\n"
      "# TYPE geolic_batched_requests_total counter\n"
      "geolic_batched_requests_total{service=\"geolic\"} 6\n"
      "# HELP geolic_latency_clamped_negative_total Latency samples "
      "clamped at zero.\n"
      "# TYPE geolic_latency_clamped_negative_total counter\n"
      "geolic_latency_clamped_negative_total{service=\"geolic\"} 1\n"
      "# HELP geolic_request_latency_nanos End-to-end admission latency.\n"
      "# TYPE geolic_request_latency_nanos histogram\n"
      "geolic_request_latency_nanos_bucket{service=\"geolic\",le=\"2\"} 0\n"
      "geolic_request_latency_nanos_bucket{service=\"geolic\",le=\"4\"} 0\n"
      "geolic_request_latency_nanos_bucket{service=\"geolic\",le=\"8\"} 0\n"
      "geolic_request_latency_nanos_bucket{service=\"geolic\",le=\"16\"} 7\n"
      "geolic_request_latency_nanos_bucket{service=\"geolic\",le=\"32\"} 7\n"
      "geolic_request_latency_nanos_bucket{service=\"geolic\",le=\"64\"} 7\n"
      "geolic_request_latency_nanos_bucket{service=\"geolic\",le=\"128\"} "
      "8\n"
      "geolic_request_latency_nanos_bucket{service=\"geolic\",le=\"+Inf\"} "
      "8\n"
      "geolic_request_latency_nanos_sum{service=\"geolic\"} 1234\n"
      "geolic_request_latency_nanos_count{service=\"geolic\"} 8\n"
      "# HELP geolic_journal_sequence Sequence of the last journaled "
      "frame.\n"
      "# TYPE geolic_journal_sequence gauge\n"
      "geolic_journal_sequence{service=\"geolic\"} 8\n"
      "# HELP geolic_recovery_checkpoint_records Records loaded from the "
      "checkpoint.\n"
      "# TYPE geolic_recovery_checkpoint_records gauge\n"
      "geolic_recovery_checkpoint_records{service=\"geolic\"} 3\n"
      "# HELP geolic_recovery_journal_replayed Journal frames replayed "
      "past the checkpoint.\n"
      "# TYPE geolic_recovery_journal_replayed gauge\n"
      "geolic_recovery_journal_replayed{service=\"geolic\"} 5\n"
      "# HELP geolic_recovery_journal_skipped Journal frames the "
      "checkpoint already covered.\n"
      "# TYPE geolic_recovery_journal_skipped gauge\n"
      "geolic_recovery_journal_skipped{service=\"geolic\"} 1\n"
      "# HELP geolic_recovery_torn_tail 1 when the journal ended in a "
      "torn write.\n"
      "# TYPE geolic_recovery_torn_tail gauge\n"
      "geolic_recovery_torn_tail{service=\"geolic\"} 1\n";
  EXPECT_EQ(RenderPrometheusText(GoldenInput()), expected);
}

TEST(ExpositionTest, GoldenJson) {
  // p50/p99 both land in bucket 3 (ranks 3 and 6 of 8, cumulative 7): the
  // upper bound is 16 ns.
  const std::string expected =
      "{\"service\":\"geolic\","
      "\"requests\":{\"accepted\":5,\"rejected_instance\":2,"
      "\"rejected_aggregate\":1,\"total\":8},"
      "\"equations_checked\":37,"
      "\"batches\":{\"count\":2,\"requests\":6},"
      "\"latency\":{\"count\":8,\"sum_nanos\":1234,\"clamped_negative\":1,"
      "\"p50_le_nanos\":16,\"p99_le_nanos\":16,"
      "\"buckets\":[{\"le\":2,\"count\":0},{\"le\":4,\"count\":0},"
      "{\"le\":8,\"count\":0},{\"le\":16,\"count\":7},{\"le\":32,"
      "\"count\":0},{\"le\":64,\"count\":0},{\"le\":128,\"count\":1}]},"
      "\"journal\":{\"sequence\":8},"
      "\"recovery\":{\"checkpoint_records\":3,\"journal_replayed\":5,"
      "\"journal_skipped\":1,\"torn_tail\":true}}";
  EXPECT_EQ(RenderJson(GoldenInput()), expected);
}

TEST(ExpositionTest, JsonRoundTripsThroughParser) {
  ExpositionInput input = GoldenInput();
  input.has_stages = true;
  input.stages.stages[static_cast<size_t>(TraceStage::kEquationScan)]
      .counts[5] = 11;
  input.stages.stages[static_cast<size_t>(TraceStage::kEquationScan)]
      .total_nanos = 440;

  const Result<JsonValue> doc = ParseJson(RenderJson(input));
  ASSERT_TRUE(doc.ok()) << doc.status().message();

  const JsonValue* requests = doc->Find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->Find("accepted")->AsUInt(), 5u);
  EXPECT_EQ(requests->Find("total")->AsUInt(), 8u);
  EXPECT_EQ(doc->Find("equations_checked")->AsUInt(), 37u);

  const JsonValue* latency = doc->Find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->Find("count")->AsUInt(), 8u);
  EXPECT_EQ(latency->Find("clamped_negative")->AsUInt(), 1u);
  ASSERT_EQ(latency->Find("buckets")->array.size(), 7u);
  EXPECT_EQ(latency->Find("buckets")->array[3].Find("count")->AsUInt(), 7u);

  const JsonValue* stages = doc->Find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->object.size(), static_cast<size_t>(kTraceStageCount));
  const JsonValue* scan = stages->Find("equation_scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->Find("count")->AsUInt(), 11u);
  EXPECT_EQ(scan->Find("sum_nanos")->AsUInt(), 440u);
  EXPECT_EQ(stages->Find("journal_fsync")->Find("count")->AsUInt(), 0u);

  EXPECT_EQ(doc->Find("journal")->Find("sequence")->AsUInt(), 8u);
  const JsonValue* recovery = doc->Find("recovery");
  ASSERT_NE(recovery, nullptr);
  EXPECT_EQ(recovery->Find("torn_tail")->kind, JsonValue::Kind::kBool);
  EXPECT_TRUE(recovery->Find("torn_tail")->boolean);
}

TEST(ExpositionTest, CatalogSectionRendersEveryFamily) {
  // The catalog layer added two trace stages (catalog_compile /
  // catalog_evict) — the profile array is now 16 wide — and a
  // geolic_catalog_* metric section. Pin both so a stage or family can
  // never silently drop out of the exposition.
  EXPECT_EQ(kTraceStageCount, 16);

  ExpositionInput input = GoldenInput();
  input.has_catalog = true;
  input.catalog.hits = 90;
  input.catalog.misses = 10;
  input.catalog.compiles = 7;
  input.catalog.loads = 3;
  input.catalog.evictions = 4;
  input.catalog.spills = 5;
  input.catalog.recovered_tenants = 2;
  input.catalog.journal_frames = 100;
  input.catalog.resident_tenants = 6;
  input.catalog.resident_bytes = 98304;
  input.catalog.poisoned_writers = 1;

  const std::string text = RenderPrometheusText(input);
  const std::string kExpectedLines[] = {
      "geolic_catalog_requests_total{service=\"geolic\",outcome=\"hit\"} 90",
      "geolic_catalog_requests_total{service=\"geolic\",outcome=\"miss\"} "
      "10",
      "geolic_catalog_compiles_total{service=\"geolic\"} 7",
      "geolic_catalog_loads_total{service=\"geolic\"} 3",
      "geolic_catalog_evictions_total{service=\"geolic\"} 4",
      "geolic_catalog_spills_total{service=\"geolic\"} 5",
      "geolic_catalog_recovered_tenants_total{service=\"geolic\"} 2",
      "geolic_catalog_journal_frames_total{service=\"geolic\"} 100",
      "geolic_catalog_resident_tenants{service=\"geolic\"} 6",
      "geolic_catalog_resident_bytes{service=\"geolic\"} 98304",
      "geolic_catalog_poisoned_writers{service=\"geolic\"} 1",
  };
  for (const std::string& line : kExpectedLines) {
    EXPECT_NE(text.find(line + "\n"), std::string::npos) << line;
  }

  input.has_stages = true;
  input.stages.stages[static_cast<size_t>(TraceStage::kCatalogCompile)]
      .counts[2] = 7;
  const Result<JsonValue> doc = ParseJson(RenderJson(input));
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const JsonValue* catalog = doc->Find("catalog");
  ASSERT_NE(catalog, nullptr);
  EXPECT_EQ(catalog->Find("hits")->AsUInt(), 90u);
  EXPECT_EQ(catalog->Find("misses")->AsUInt(), 10u);
  EXPECT_EQ(catalog->Find("evictions")->AsUInt(), 4u);
  EXPECT_EQ(catalog->Find("resident_bytes")->AsUInt(), 98304u);
  EXPECT_EQ(catalog->Find("poisoned_writers")->AsUInt(), 1u);
  const JsonValue* stages = doc->Find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->object.size(), 16u);
  EXPECT_EQ(stages->Find("catalog_compile")->Find("count")->AsUInt(), 7u);
  ASSERT_NE(stages->Find("catalog_evict"), nullptr);
  EXPECT_EQ(stages->Find("catalog_evict")->Find("count")->AsUInt(), 0u);
}

TEST(ExpositionTest, ServiceLabelIsEscapedAndRoundTrips) {
  ExpositionInput input;
  input.service = "we\"ird\\svc\nline";
  const std::string text = RenderPrometheusText(input);
  EXPECT_NE(text.find("service=\"we\\\"ird\\\\svc\\nline\""),
            std::string::npos);
  const Result<JsonValue> doc = ParseJson(RenderJson(input));
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  EXPECT_EQ(doc->Find("service")->string, input.service);
}

// Hostile-name input shared by the byte-exact escaping goldens: the
// service label carries a backslash, a double quote, and a newline, and
// the net section is on so the newest families render too.
ExpositionInput HostileInput() {
  ExpositionInput input;
  input.service = "drm\\co\"rp\nx";
  input.has_net = true;
  input.net.connections_opened = 1;
  input.net.connections_closed = 2;
  input.net.frames_decoded = 3;
  input.net.requests_enqueued = 4;
  input.net.requests_shed = 5;
  input.net.protocol_errors = 6;
  input.net.batches_dispatched = 7;
  input.net.batch_requests_dispatched = 8;
  input.net.queue_depth = 9;
  input.net.queue_depth_peak = 10;
  input.net.bytes_read = 11;
  input.net.bytes_written = 12;
  return input;
}

TEST(ExpositionTest, GoldenPrometheusTextHostileName) {
  const std::string svc = "service=\"drm\\\\co\\\"rp\\nx\"";
  const std::string expected =
      "# HELP geolic_requests_total Admission decisions by outcome.\n"
      "# TYPE geolic_requests_total counter\n"
      "geolic_requests_total{" + svc + ",outcome=\"accepted\"} 0\n"
      "geolic_requests_total{" + svc + ",outcome=\"rejected_instance\"} 0\n"
      "geolic_requests_total{" + svc +
      ",outcome=\"rejected_aggregate\"} 0\n"
      "# HELP geolic_equations_checked_total Validation equations "
      "evaluated.\n"
      "# TYPE geolic_equations_checked_total counter\n"
      "geolic_equations_checked_total{" + svc + "} 0\n"
      "# HELP geolic_batches_total TryIssueBatch calls.\n"
      "# TYPE geolic_batches_total counter\n"
      "geolic_batches_total{" + svc + "} 0\n"
      "# HELP geolic_batched_requests_total Requests admitted through "
      "batches.\n"
      "# TYPE geolic_batched_requests_total counter\n"
      "geolic_batched_requests_total{" + svc + "} 0\n"
      "# HELP geolic_latency_clamped_negative_total Latency samples "
      "clamped at zero.\n"
      "# TYPE geolic_latency_clamped_negative_total counter\n"
      "geolic_latency_clamped_negative_total{" + svc + "} 0\n"
      "# HELP geolic_request_latency_nanos End-to-end admission latency.\n"
      "# TYPE geolic_request_latency_nanos histogram\n"
      "geolic_request_latency_nanos_bucket{" + svc + ",le=\"+Inf\"} 0\n"
      "geolic_request_latency_nanos_sum{" + svc + "} 0\n"
      "geolic_request_latency_nanos_count{" + svc + "} 0\n"
      "# HELP geolic_net_connections_total TCP connections by lifecycle "
      "event.\n"
      "# TYPE geolic_net_connections_total counter\n"
      "geolic_net_connections_total{" + svc + ",event=\"opened\"} 1\n"
      "geolic_net_connections_total{" + svc + ",event=\"closed\"} 2\n"
      "# HELP geolic_net_frames_decoded_total Wire frames decoded from "
      "client connections.\n"
      "# TYPE geolic_net_frames_decoded_total counter\n"
      "geolic_net_frames_decoded_total{" + svc + "} 3\n"
      "# HELP geolic_net_requests_total Issue requests by admission-queue "
      "outcome.\n"
      "# TYPE geolic_net_requests_total counter\n"
      "geolic_net_requests_total{" + svc + ",event=\"enqueued\"} 4\n"
      "geolic_net_requests_total{" + svc + ",event=\"shed\"} 5\n"
      "# HELP geolic_net_protocol_errors_total Framing/CRC failures that "
      "dropped a connection.\n"
      "# TYPE geolic_net_protocol_errors_total counter\n"
      "geolic_net_protocol_errors_total{" + svc + "} 6\n"
      "# HELP geolic_net_batches_dispatched_total Coalesced batches "
      "handed to the service.\n"
      "# TYPE geolic_net_batches_dispatched_total counter\n"
      "geolic_net_batches_dispatched_total{" + svc + "} 7\n"
      "# HELP geolic_net_batch_requests_dispatched_total Requests carried "
      "by those batches.\n"
      "# TYPE geolic_net_batch_requests_dispatched_total counter\n"
      "geolic_net_batch_requests_dispatched_total{" + svc + "} 8\n"
      "# HELP geolic_net_queue_depth Requests waiting in the admission "
      "queue.\n"
      "# TYPE geolic_net_queue_depth gauge\n"
      "geolic_net_queue_depth{" + svc + "} 9\n"
      "# HELP geolic_net_queue_depth_peak Admission-queue high-water "
      "mark.\n"
      "# TYPE geolic_net_queue_depth_peak gauge\n"
      "geolic_net_queue_depth_peak{" + svc + "} 10\n"
      "# HELP geolic_net_bytes_total Socket bytes by direction.\n"
      "# TYPE geolic_net_bytes_total counter\n"
      "geolic_net_bytes_total{" + svc + ",direction=\"read\"} 11\n"
      "geolic_net_bytes_total{" + svc + ",direction=\"written\"} 12\n";
  EXPECT_EQ(RenderPrometheusText(HostileInput()), expected);
}

TEST(ExpositionTest, GoldenJsonHostileName) {
  const std::string expected =
      "{\"service\":\"drm\\\\co\\\"rp\\nx\","
      "\"requests\":{\"accepted\":0,\"rejected_instance\":0,"
      "\"rejected_aggregate\":0,\"total\":0},"
      "\"equations_checked\":0,"
      "\"batches\":{\"count\":0,\"requests\":0},"
      "\"latency\":{\"count\":0,\"sum_nanos\":0,\"clamped_negative\":0,"
      "\"p50_le_nanos\":0,\"p99_le_nanos\":0,\"buckets\":[]},"
      "\"net\":{\"connections\":{\"opened\":1,\"closed\":2},"
      "\"frames_decoded\":3,"
      "\"requests\":{\"enqueued\":4,\"shed\":5},"
      "\"protocol_errors\":6,"
      "\"batches\":{\"dispatched\":7,\"requests\":8},"
      "\"queue_depth\":9,\"queue_depth_peak\":10,"
      "\"bytes\":{\"read\":11,\"written\":12}}}";
  EXPECT_EQ(RenderJson(HostileInput()), expected);
}

// Escaping audit: with every section on and a hostile service name, every
// physical line of the text exposition must be a well-formed HELP/TYPE
// comment or a `name{labels} value` sample — an unescaped newline or
// quote anywhere would split or malform a line.
TEST(ExpositionTest, PrometheusLinesStayWellFormedWithHostileName) {
  ExpositionInput input = HostileInput();
  input.metrics = GoldenInput().metrics;
  input.has_stages = true;
  input.has_journal = true;
  input.has_recovery = true;
  std::istringstream lines(RenderPrometheusText(input));
  std::string line;
  size_t samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      continue;
    }
    // Series line: metric name, then a brace-delimited label set whose
    // quotes are balanced once escapes are honoured, then the value.
    const size_t open = line.find('{');
    ASSERT_NE(open, std::string::npos) << line;
    EXPECT_NE(line.find("service=\"", open), std::string::npos) << line;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 2u) << line;
    EXPECT_EQ(line[space - 1], '}') << line;
    for (size_t i = space + 1; i < line.size(); ++i) {
      EXPECT_TRUE((line[i] >= '0' && line[i] <= '9') || line[i] == '+' ||
                  line[i] == '.' || line[i] == 'I' || line[i] == 'n' ||
                  line[i] == 'f')
          << line;
    }
    ++samples;
  }
  EXPECT_GT(samples, 20u);
}

TEST(ExpositionTest, WriteMetricsFileDispatchesOnSuffix) {
  const ExpositionInput input = GoldenInput();
  const std::string json_path = ::testing::TempDir() + "/metrics.json";
  const std::string text_path = ::testing::TempDir() + "/metrics.prom";
  ASSERT_TRUE(WriteMetricsFile(input, json_path).ok());
  ASSERT_TRUE(WriteMetricsFile(input, text_path).ok());

  const auto slurp = [](const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    EXPECT_NE(file, nullptr) << path;
    std::string out;
    char buffer[4096];
    size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      out.append(buffer, n);
    }
    std::fclose(file);
    return out;
  };
  EXPECT_EQ(slurp(json_path), RenderJson(input));
  EXPECT_EQ(slurp(text_path), RenderPrometheusText(input));

  EXPECT_FALSE(
      WriteMetricsFile(input, ::testing::TempDir() + "/no/such/dir/m.json")
          .ok());
}

// For every rendered histogram family, the cumulative +Inf bucket must
// equal the family's `_count` sample — Prometheus rejects expositions
// where they disagree.
void ExpectCountsMatchInfBuckets(const std::string& text) {
  std::map<std::string, uint64_t> inf_buckets;
  std::map<std::string, uint64_t> counts;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    const uint64_t value =
        std::strtoull(line.c_str() + space + 1, nullptr, 10);
    const size_t inf = series.find(",le=\"+Inf\"}");
    const size_t bucket = series.find("_bucket{");
    if (inf != std::string::npos && bucket != std::string::npos) {
      series.resize(inf);                // Drop the le pair and brace.
      series.replace(bucket, 8, "{");    // name_bucket{… → name{…
      inf_buckets[series] = value;
      continue;
    }
    const size_t count = series.find("_count{");
    if (count != std::string::npos) {
      series.pop_back();                 // Drop the closing brace.
      series.replace(count, 7, "{");
      counts[series] = value;
    }
  }
  ASSERT_FALSE(counts.empty());
  for (const auto& [family, count] : counts) {
    ASSERT_TRUE(inf_buckets.count(family) != 0) << family;
    EXPECT_EQ(inf_buckets[family], count) << family;
  }
}

// Satellite regression: snapshots taken while writers are mid-Record used
// to render total_count (which can lead the buckets under relaxed RMWs) as
// `_count`, producing a malformed exposition. The rendered `_count` must
// come from the same snapshotted buckets as the +Inf sample.
TEST(ExpositionTest, SnapshotWhileRecordingHasNoCountSkew) {
  IssuanceMetrics metrics;
  Tracer tracer(TracerOptions{.slow_request_nanos = 0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&metrics, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        metrics.RecordAccepted(3, 100);
        metrics.RecordRejectedAggregate(2, 900);
      }
    });
    writers.emplace_back([&tracer, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        TraceSpan span{};
        span.stage = TraceStage::kEquationScan;
        span.duration_nanos = 700;
        tracer.Record(span);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    ExpositionInput input;
    input.metrics = metrics.Snap();
    input.has_stages = true;
    input.stages = tracer.ProfileSnapshot();
    ExpectCountsMatchInfBuckets(RenderPrometheusText(input));
    if (HasFatalFailure()) {
      break;
    }
  }
  stop.store(true);
  for (std::thread& writer : writers) {
    writer.join();
  }
}

}  // namespace
}  // namespace geolic
