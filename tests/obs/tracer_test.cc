#include "obs/trace.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace geolic {
namespace {

TraceSpan Span(uint64_t request_id, TraceStage stage, uint64_t start,
               uint64_t duration) {
  TraceSpan span{};
  span.request_id = request_id;
  span.stage = stage;
  span.start_nanos = start;
  span.duration_nanos = duration;
  return span;
}

TEST(TraceStageTest, NamesAreStableAndDistinct) {
  std::vector<std::string> names;
  for (int s = 0; s < kTraceStageCount; ++s) {
    names.emplace_back(TraceStageName(static_cast<TraceStage>(s)));
  }
  EXPECT_EQ(names[0], "instance_check");
  EXPECT_EQ(names[static_cast<size_t>(TraceStage::kOfflineValidation)],
            "offline_validation");
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

TEST(TracerTest, RecordsSpansInTicketOrder) {
  Tracer tracer;
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.Record(Span(i + 1, TraceStage::kEquationScan, 1000 + i, 5));
  }
  EXPECT_EQ(tracer.spans_recorded(), 10u);
  const std::vector<TraceSpan> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 10u);
  for (uint64_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].request_id, i + 1);
    EXPECT_EQ(spans[i].start_nanos, 1000 + i);
    EXPECT_EQ(spans[i].duration_nanos, 5u);
    EXPECT_EQ(spans[i].stage, TraceStage::kEquationScan);
  }
}

TEST(TracerTest, RingCapacityRoundsUpAndHasFloor) {
  EXPECT_EQ(Tracer(TracerOptions{.ring_capacity = 100}).ring_capacity(),
            128u);
  EXPECT_EQ(Tracer(TracerOptions{.ring_capacity = 1}).ring_capacity(), 64u);
}

TEST(TracerTest, WrapKeepsNewestSpans) {
  Tracer tracer(TracerOptions{.ring_capacity = 64});
  constexpr uint64_t kTotal = 100;
  for (uint64_t i = 0; i < kTotal; ++i) {
    tracer.Record(Span(i + 1, TraceStage::kJournalAppend, i, 1));
  }
  EXPECT_EQ(tracer.spans_recorded(), kTotal);
  const std::vector<TraceSpan> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 64u);
  // Oldest surviving span first: the ring dropped the first 36.
  EXPECT_EQ(spans.front().request_id, kTotal - 64 + 1);
  EXPECT_EQ(spans.back().request_id, kTotal);
}

TEST(TracerTest, ProfileAggregatesPerStage) {
  Tracer tracer;
  tracer.Record(Span(1, TraceStage::kInstanceCheck, 0, 100));
  tracer.Record(Span(1, TraceStage::kInstanceCheck, 0, 100));
  tracer.Record(Span(2, TraceStage::kJournalFsync, 0, 5000));
  const StageProfile::Snapshot profile = tracer.ProfileSnapshot();
  EXPECT_EQ(profile.stage(TraceStage::kInstanceCheck).total_count, 2u);
  EXPECT_EQ(profile.stage(TraceStage::kInstanceCheck).total_nanos, 200u);
  EXPECT_EQ(profile.stage(TraceStage::kJournalFsync).total_count, 1u);
  EXPECT_EQ(profile.stage(TraceStage::kEquationScan).total_count, 0u);
}

TEST(TracerTest, SlowSamplingKeepsNewestChainsAndCountsAll) {
  Tracer tracer(TracerOptions{.slow_request_nanos = 100,
                              .max_slow_samples = 2});
  for (uint64_t id = 1; id <= 4; ++id) {
    // Chain total = (last.start + last.duration) − first.start. Request 1
    // totals 60 ns (fast); requests 2..4 total 210 ns (> 100 ns, slow).
    const uint64_t tail = id == 1 ? 50 : 200;
    const TraceSpan chain[2] = {
        Span(id, TraceStage::kInstanceCheck, 1000, 10),
        Span(id, TraceStage::kEquationScan, 1010, tail),
    };
    tracer.RecordChain(chain, 2);
  }
  EXPECT_EQ(tracer.slow_requests(), 3u);
  const std::vector<SlowRequestSample> samples = tracer.SlowSamples();
  ASSERT_EQ(samples.size(), 2u);  // Bounded buffer evicted request 2.
  EXPECT_EQ(samples[0].request_id, 3u);
  EXPECT_EQ(samples[1].request_id, 4u);
  EXPECT_EQ(samples[1].total_nanos, 210u);
  ASSERT_EQ(samples[1].spans.size(), 2u);
  EXPECT_EQ(samples[1].spans[1].stage, TraceStage::kEquationScan);
}

TEST(TracerTest, SlowSamplingDisabledByNonPositiveThreshold) {
  Tracer tracer(TracerOptions{.slow_request_nanos = 0});
  TraceSpan span = Span(1, TraceStage::kEquationScan, 0, 1'000'000'000);
  tracer.RecordChain(&span, 1);
  EXPECT_EQ(tracer.slow_requests(), 0u);
  EXPECT_TRUE(tracer.SlowSamples().empty());
}

// RequestTrace-driven tests assert that scoped timers really reach the
// ring; with GEOLIC_DISABLE_TRACING the request path is compiled out by
// design, so they are skipped (Tracer/ring/profile tests above still run).
#ifndef GEOLIC_DISABLE_TRACING

TEST(TracerTest, SamplePeriodGatesRequestTraces) {
  // The sampling counter is thread-local with arbitrary phase, but any
  // window of k*period consecutive requests traces exactly k of them.
  Tracer tracer(TracerOptions{.sample_period = 4});
  size_t enabled = 0;
  for (int i = 0; i < 64; ++i) {
    RequestTrace trace(&tracer);
    if (trace.enabled()) {
      ++enabled;
      trace.Add(TraceStage::kEquationScan, 10, 20);
    }
    trace.Finish(TraceOutcome::kAccepted);
  }
  EXPECT_EQ(enabled, 16u);
  const std::vector<TraceSpan> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 16u);
  // Request ids are only burned on traced requests.
  EXPECT_EQ(spans.front().request_id, 1u);
  EXPECT_EQ(spans.back().request_id, 16u);
}

TEST(RequestTraceTest, NullTracerIsInertEverywhere) {
  RequestTrace trace(nullptr);
  EXPECT_FALSE(trace.enabled());
  EXPECT_EQ(trace.request_id(), 0u);
  {
    ScopedStageTimer timer(&trace, TraceStage::kInstanceCheck);
  }
  EXPECT_EQ(trace.span_count(), 0u);
  trace.Finish(TraceOutcome::kAccepted);  // Must not crash.
  ScopedTracerSpan standalone(nullptr, TraceStage::kCheckpointWrite);
  standalone.set_outcome(TraceOutcome::kError);
}

TEST(RequestTraceTest, ScopedTimersBuildChainAndFinishStampsOutcome) {
  Tracer tracer;
  {
    RequestTrace trace(&tracer);
    EXPECT_EQ(trace.request_id(), 1u);
    {
      ScopedStageTimer timer(&trace, TraceStage::kInstanceCheck);
    }
    {
      ScopedStageTimer timer(&trace, TraceStage::kEquationScan);
    }
    EXPECT_EQ(trace.span_count(), 2u);
    trace.Finish(TraceOutcome::kRejectedAggregate);
    // Nothing was flushed before Finish.
  }
  const std::vector<TraceSpan> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].stage, TraceStage::kInstanceCheck);
  EXPECT_EQ(spans[0].outcome, TraceOutcome::kOk);
  EXPECT_EQ(spans[1].stage, TraceStage::kEquationScan);
  EXPECT_EQ(spans[1].outcome, TraceOutcome::kRejectedAggregate);
  EXPECT_EQ(spans[0].request_id, spans[1].request_id);
  // Adjacent stages share the boundary timestamp: one clock read, no gap.
  EXPECT_EQ(spans[1].start_nanos,
            spans[0].start_nanos + spans[0].duration_nanos);
}

TEST(RequestTraceTest, DestructorFlushesUnfinishedChainAsOk) {
  Tracer tracer;
  {
    RequestTrace trace(&tracer);
    ScopedStageTimer timer(&trace, TraceStage::kShardLockWait);
  }
  const std::vector<TraceSpan> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].outcome, TraceOutcome::kOk);
}

TEST(RequestTraceTest, OverflowingChainDropsAndCounts) {
  Tracer tracer;
  RequestTrace trace(&tracer);
  for (size_t i = 0; i < RequestTrace::kMaxSpans + 3; ++i) {
    trace.Add(TraceStage::kEquationScan, i, i + 1);
  }
  EXPECT_EQ(trace.span_count(), RequestTrace::kMaxSpans);
  EXPECT_EQ(trace.spans_dropped(), 3u);
  trace.Finish(TraceOutcome::kAccepted);
  EXPECT_EQ(tracer.CollectSpans().size(), RequestTrace::kMaxSpans);
}

TEST(RequestTraceTest, FinishIsIdempotent) {
  Tracer tracer;
  RequestTrace trace(&tracer);
  trace.Add(TraceStage::kEquationScan, 0, 10);
  trace.Finish(TraceOutcome::kAccepted);
  trace.Finish(TraceOutcome::kError);  // Ignored.
  const std::vector<TraceSpan> spans = tracer.CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].outcome, TraceOutcome::kAccepted);
}

#endif  // GEOLIC_DISABLE_TRACING

// Concurrency: readers snapshotting the ring and the profile while writers
// record must never observe torn spans (mixed-up fields) — the seqlock
// version check has to filter slots mid-write.
TEST(TracerTest, ConcurrentCollectNeverYieldsTornSpans) {
  Tracer tracer(TracerOptions{.ring_capacity = 256,
                              .slow_request_nanos = 0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&tracer, &stop, t] {
      const uint64_t id = static_cast<uint64_t>(t) + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        // Each writer's spans carry its own signature: request_id == t+1,
        // duration == 1000 * (t+1), stage cycles with parity of id.
        tracer.Record(Span(id, TraceStage::kEquationScan, id * 7, id * 1000));
      }
    });
  }
  for (int i = 0; i < 500; ++i) {
    for (const TraceSpan& span : tracer.CollectSpans()) {
      // A torn read would pair one writer's request_id with another's
      // duration or timestamp.
      ASSERT_GE(span.request_id, 1u);
      ASSERT_LE(span.request_id, 4u);
      ASSERT_EQ(span.duration_nanos, span.request_id * 1000) << "torn slot";
      ASSERT_EQ(span.start_nanos, span.request_id * 7) << "torn slot";
      ASSERT_EQ(span.stage, TraceStage::kEquationScan);
    }
  }
  stop.store(true);
  for (std::thread& writer : writers) {
    writer.join();
  }
  // Everything every writer recorded reached the profile.
  const StageProfile::Snapshot profile = tracer.ProfileSnapshot();
  EXPECT_EQ(profile.stage(TraceStage::kEquationScan).total_count,
            tracer.spans_recorded());
}

}  // namespace
}  // namespace geolic
