#ifndef GEOLIC_TESTS_OBS_JSON_PARSER_TEST_UTIL_H_
#define GEOLIC_TESTS_OBS_JSON_PARSER_TEST_UTIL_H_

// Minimal recursive-descent JSON parser for round-trip tests: enough of
// RFC 8259 to re-read everything JsonWriter emits (objects, arrays,
// strings with its escape set, integer/float numbers, bools, null).
// Numbers are kept verbatim as their source token so integer-only
// documents round-trip without any float detour.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace geolic::testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string number;  // Verbatim source token, e.g. "42" or "-1.5e3".
  std::string string;
  std::vector<JsonValue> array;
  // Insertion order preserved (JsonWriter output order is deterministic).
  std::vector<std::pair<std::string, JsonValue>> object;

  // Object member lookup; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const {
    if (kind != Kind::kObject) {
      return nullptr;
    }
    for (const auto& [name, value] : object) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }

  // Integer value of a kNumber token (0 on any other kind).
  uint64_t AsUInt() const {
    return kind == Kind::kNumber
               ? std::strtoull(number.c_str(), nullptr, 10)
               : 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    GEOLIC_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after top-level value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ == text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      JsonValue value;
      value.kind = JsonValue::Kind::kString;
      GEOLIC_ASSIGN_OR_RETURN(value.string, ParseString());
      return value;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      return ParseNumber();
    }
    JsonValue value;
    if (ConsumeWord("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (ConsumeWord("false")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      return value;
    }
    if (ConsumeWord("null")) {
      return value;  // kNull.
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<JsonValue> ParseObject() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) {
      return value;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ == text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      GEOLIC_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      GEOLIC_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      value.object.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return value;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) {
      return value;
    }
    while (true) {
      GEOLIC_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return value;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // Opening quote.
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ == text_.size()) {
        break;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          if (code > 0x7f) {
            // JsonWriter only \u-escapes control characters; nothing in
            // these tests needs non-ASCII code points.
            return Error("non-ASCII \\u escape unsupported");
          }
          out += static_cast<char>(code);
          break;
        }
        default:
          return Error(std::string("unknown escape '\\") + escape + "'");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Error("malformed number");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = std::string(text_.substr(start, pos_ - start));
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

inline Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace geolic::testing

#endif  // GEOLIC_TESTS_OBS_JSON_PARSER_TEST_UTIL_H_
