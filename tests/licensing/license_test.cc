#include "licensing/license.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

TEST(LicenseBuilderTest, BuildsCompleteLicense) {
  const ConstraintSchema schema = IntervalSchema(2);
  LicenseBuilder builder(&schema);
  builder.SetId("LD1")
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kPlay)
      .SetInterval("C1", 0, 10)
      .SetInterval("C2", 5, 15)
      .SetAggregateCount(2000);
  const Result<License> license = builder.Build();
  ASSERT_TRUE(license.ok());
  EXPECT_EQ(license->id(), "LD1");
  EXPECT_EQ(license->content_key(), "K");
  EXPECT_EQ(license->type(), LicenseType::kRedistribution);
  EXPECT_EQ(license->permission(), Permission::kPlay);
  EXPECT_EQ(license->aggregate_count(), 2000);
  EXPECT_EQ(license->rect().dimensions(), 2);
  EXPECT_EQ(license->rect().dim(0).interval(), Interval(0, 10));
}

TEST(LicenseBuilderTest, RequiresAllDimensions) {
  const ConstraintSchema schema = IntervalSchema(2);
  LicenseBuilder builder(&schema);
  builder.SetId("LD1").SetContentKey("K").SetAggregateCount(100).SetInterval(
      "C1", 0, 10);
  const Result<License> license = builder.Build();
  ASSERT_FALSE(license.ok());
  EXPECT_EQ(license.status().code(), StatusCode::kInvalidArgument);
}

TEST(LicenseBuilderTest, RequiresIdContentAndPositiveAggregate) {
  const ConstraintSchema schema = IntervalSchema(1);
  {
    LicenseBuilder builder(&schema);
    builder.SetContentKey("K").SetAggregateCount(1).SetInterval("C1", 0, 1);
    EXPECT_FALSE(builder.Build().ok());  // Missing id.
  }
  {
    LicenseBuilder builder(&schema);
    builder.SetId("L").SetAggregateCount(1).SetInterval("C1", 0, 1);
    EXPECT_FALSE(builder.Build().ok());  // Missing content key.
  }
  {
    LicenseBuilder builder(&schema);
    builder.SetId("L").SetContentKey("K").SetInterval("C1", 0, 1);
    EXPECT_FALSE(builder.Build().ok());  // Zero aggregate.
  }
  {
    LicenseBuilder builder(&schema);
    builder.SetId("L").SetContentKey("K").SetAggregateCount(-5).SetInterval(
        "C1", 0, 1);
    EXPECT_FALSE(builder.Build().ok());  // Negative aggregate.
  }
}

TEST(LicenseBuilderTest, UnknownDimensionDefersError) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseBuilder builder(&schema);
  builder.SetId("L").SetContentKey("K").SetAggregateCount(1);
  builder.SetInterval("C9", 0, 1).SetInterval("C1", 0, 1);
  const Result<License> license = builder.Build();
  ASSERT_FALSE(license.ok());
  EXPECT_EQ(license.status().code(), StatusCode::kNotFound);
}

TEST(LicenseBuilderTest, EmptyRangeRejected) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseBuilder builder(&schema);
  builder.SetId("L").SetContentKey("K").SetAggregateCount(1).SetInterval(
      "C1", 5, 3);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(LicenseBuilderTest, SetCategoriesOnCategoricalDimension) {
  ConstraintSchema schema;
  ASSERT_TRUE(
      schema.AddCategoricalDimension("R", CategoryUniverse::WorldRegions())
          .ok());
  LicenseBuilder builder(&schema);
  builder.SetId("L")
      .SetContentKey("K")
      .SetAggregateCount(10)
      .SetCategories("R", {"Asia", "Europe"});
  const Result<License> license = builder.Build();
  ASSERT_TRUE(license.ok());
  EXPECT_TRUE(license->rect().dim(0).is_categories());
}

TEST(LicenseBuilderTest, SetCategoriesOnIntervalDimensionFails) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseBuilder builder(&schema);
  builder.SetId("L").SetContentKey("K").SetAggregateCount(10).SetCategories(
      "C1", {"Asia"});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(LicenseTest, InstanceContainsMatchesGeometry) {
  const ConstraintSchema schema = IntervalSchema(2);
  const License distribution =
      MakeRedistribution(schema, "LD1", {{0, 10}, {0, 10}}, 1000);
  EXPECT_TRUE(distribution.InstanceContains(
      MakeUsage(schema, "LU1", {{2, 8}, {3, 7}}, 5)));
  EXPECT_TRUE(distribution.InstanceContains(
      MakeUsage(schema, "LU2", {{0, 10}, {0, 10}}, 5)));
  EXPECT_FALSE(distribution.InstanceContains(
      MakeUsage(schema, "LU3", {{2, 11}, {3, 7}}, 5)));
}

TEST(LicenseTest, InstanceContainsRequiresSameContentAndPermission) {
  const ConstraintSchema schema = IntervalSchema(1);
  const License distribution =
      MakeRedistribution(schema, "LD1", {{0, 10}}, 1000);

  LicenseBuilder other_content(&schema);
  other_content.SetId("LU1")
      .SetContentKey("OTHER")
      .SetType(LicenseType::kUsage)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(5)
      .SetInterval("C1", 2, 3);
  EXPECT_FALSE(distribution.InstanceContains(*other_content.Build()));

  LicenseBuilder other_permission(&schema);
  other_permission.SetId("LU2")
      .SetContentKey("K")
      .SetType(LicenseType::kUsage)
      .SetPermission(Permission::kCopy)
      .SetAggregateCount(5)
      .SetInterval("C1", 2, 3);
  EXPECT_FALSE(distribution.InstanceContains(*other_permission.Build()));
}

TEST(LicenseTest, OverlapsWithMatchesGeometry) {
  const ConstraintSchema schema = IntervalSchema(2);
  const License a = MakeRedistribution(schema, "A", {{0, 10}, {0, 10}}, 1);
  const License b = MakeRedistribution(schema, "B", {{5, 15}, {5, 15}}, 1);
  const License c = MakeRedistribution(schema, "C", {{5, 15}, {11, 20}}, 1);
  EXPECT_TRUE(a.OverlapsWith(b));
  EXPECT_TRUE(b.OverlapsWith(a));
  EXPECT_FALSE(a.OverlapsWith(c));
}

TEST(LicenseTest, ToStringMatchesPaperShape) {
  const ConstraintSchema schema = ConstraintSchema::PaperExampleSchema();
  LicenseBuilder builder(&schema);
  builder.SetId("LD1")
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kPlay)
      .SetRange("T", *schema.ParseRange(0, "[2009-03-10, 2009-03-20]"))
      .SetCategories("R", {"Asia", "Europe"})
      .SetAggregateCount(2000);
  const Result<License> license = builder.Build();
  ASSERT_TRUE(license.ok());
  EXPECT_EQ(license->ToString(schema),
            "(K; Play; T=[2009-03-10, 2009-03-20]; R={Asia, Europe}; "
            "A=2000)");
}

TEST(LicenseTest, TypeNames) {
  EXPECT_STREQ(LicenseTypeName(LicenseType::kRedistribution),
               "redistribution");
  EXPECT_STREQ(LicenseTypeName(LicenseType::kUsage), "usage");
}

}  // namespace
}  // namespace geolic
