#include "licensing/permission.h"

#include <gtest/gtest.h>

namespace geolic {
namespace {

TEST(PermissionTest, NamesAreStable) {
  EXPECT_STREQ(PermissionName(Permission::kPlay), "Play");
  EXPECT_STREQ(PermissionName(Permission::kCopy), "Copy");
  EXPECT_STREQ(PermissionName(Permission::kRip), "Rip");
  EXPECT_STREQ(PermissionName(Permission::kPrint), "Print");
  EXPECT_STREQ(PermissionName(Permission::kStream), "Stream");
  EXPECT_STREQ(PermissionName(Permission::kDownload), "Download");
  EXPECT_STREQ(PermissionName(Permission::kExport), "Export");
  EXPECT_STREQ(PermissionName(Permission::kEmbed), "Embed");
}

TEST(PermissionTest, ParseIsCaseInsensitive) {
  EXPECT_EQ(*ParsePermission("Play"), Permission::kPlay);
  EXPECT_EQ(*ParsePermission("play"), Permission::kPlay);
  EXPECT_EQ(*ParsePermission("PLAY"), Permission::kPlay);
  EXPECT_EQ(*ParsePermission("  copy  "), Permission::kCopy);
}

TEST(PermissionTest, ParseRoundTripsAllPermissions) {
  for (int i = 0; i < kNumPermissions; ++i) {
    const Permission permission = static_cast<Permission>(i);
    const Result<Permission> parsed = ParsePermission(
        PermissionName(permission));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, permission);
  }
}

TEST(PermissionTest, ParseRejectsUnknown) {
  EXPECT_FALSE(ParsePermission("").ok());
  EXPECT_FALSE(ParsePermission("fly").ok());
  EXPECT_FALSE(ParsePermission("play2").ok());
  EXPECT_EQ(ParsePermission("fly").status().code(), StatusCode::kParseError);
}

TEST(PermissionTest, UnknownEnumValueName) {
  EXPECT_STREQ(PermissionName(static_cast<Permission>(99)), "Unknown");
}

}  // namespace
}  // namespace geolic
