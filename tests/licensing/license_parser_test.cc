#include "licensing/license_parser.h"

#include <gtest/gtest.h>

#include "util/date.h"

namespace geolic {
namespace {

class LicenseParserTest : public ::testing::Test {
 protected:
  LicenseParserTest() : schema_(ConstraintSchema::PaperExampleSchema()) {}
  ConstraintSchema schema_;
};

TEST_F(LicenseParserTest, ParsesPaperStyleLicense) {
  const Result<License> license = ParseLicense(
      "(K; Play; T=[2009-03-10, 2009-03-20]; R={Asia, Europe}; A=2000)",
      schema_, LicenseType::kRedistribution, "LD1");
  ASSERT_TRUE(license.ok());
  EXPECT_EQ(license->id(), "LD1");
  EXPECT_EQ(license->content_key(), "K");
  EXPECT_EQ(license->permission(), Permission::kPlay);
  EXPECT_EQ(license->type(), LicenseType::kRedistribution);
  EXPECT_EQ(license->aggregate_count(), 2000);
  EXPECT_EQ(license->rect().dim(0).interval().lo(),
            Date::FromCivil(2009, 3, 10)->day_number());
}

TEST_F(LicenseParserTest, ParsesPaperSlashDatesAndBracketRegions) {
  // Exactly the notation of the paper's Example 1.
  const Result<License> license =
      ParseLicense("(K; Play; T=[10/03/09, 20/03/09]; R=[Asia, Europe]; "
                   "A=2000)",
                   schema_, LicenseType::kRedistribution, "LD1");
  ASSERT_TRUE(license.ok());
  EXPECT_EQ(license->aggregate_count(), 2000);
}

TEST_F(LicenseParserTest, ConstraintOrderIsFree) {
  const Result<License> license = ParseLicense(
      "(K; Play; R={India}; T=[2009-03-15, 2009-03-19]; A=800)", schema_,
      LicenseType::kUsage, "LU1");
  ASSERT_TRUE(license.ok());
  EXPECT_EQ(license->type(), LicenseType::kUsage);
}

TEST_F(LicenseParserTest, RoundTripsThroughSerialize) {
  const char* text =
      "(K; Play; T=[2009-03-10, 2009-03-20]; R={Asia, Europe}; A=2000)";
  const Result<License> license =
      ParseLicense(text, schema_, LicenseType::kRedistribution, "LD1");
  ASSERT_TRUE(license.ok());
  EXPECT_EQ(SerializeLicense(*license, schema_), text);
  // Parse the serialized form again — fixpoint.
  const Result<License> reparsed =
      ParseLicense(SerializeLicense(*license, schema_), schema_,
                   LicenseType::kRedistribution, "LD1");
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed->rect() == license->rect());
  EXPECT_EQ(reparsed->aggregate_count(), license->aggregate_count());
}

TEST_F(LicenseParserTest, WhitespaceTolerant) {
  EXPECT_TRUE(ParseLicense("  ( K ;  Play ; T=[2009-03-10, 2009-03-20] ; "
                           "R={Asia} ; A=10 )  ",
                           schema_, LicenseType::kUsage, "LU")
                  .ok());
}

TEST_F(LicenseParserTest, RejectsMissingParens) {
  EXPECT_FALSE(ParseLicense("K; Play; T=[2009-03-10, 2009-03-20]; R={Asia}; "
                            "A=10",
                            schema_, LicenseType::kUsage, "LU")
                   .ok());
}

TEST_F(LicenseParserTest, RejectsWrongFieldCount) {
  EXPECT_FALSE(ParseLicense("(K; Play; A=10)", schema_, LicenseType::kUsage,
                            "LU")
                   .ok());
  EXPECT_FALSE(ParseLicense(
                   "(K; Play; T=[2009-03-10, 2009-03-11]; R={Asia}; "
                   "R={Asia}; A=10)",
                   schema_, LicenseType::kUsage, "LU")
                   .ok());
}

TEST_F(LicenseParserTest, RejectsUnknownPermissionOrDimension) {
  EXPECT_FALSE(ParseLicense(
                   "(K; Fly; T=[2009-03-10, 2009-03-11]; R={Asia}; A=10)",
                   schema_, LicenseType::kUsage, "LU")
                   .ok());
  EXPECT_FALSE(ParseLicense(
                   "(K; Play; X=[2009-03-10, 2009-03-11]; R={Asia}; A=10)",
                   schema_, LicenseType::kUsage, "LU")
                   .ok());
}

TEST_F(LicenseParserTest, RejectsDuplicateConstraint) {
  EXPECT_FALSE(ParseLicense(
                   "(K; Play; T=[2009-03-10, 2009-03-11]; "
                   "T=[2009-03-10, 2009-03-11]; A=10)",
                   schema_, LicenseType::kUsage, "LU")
                   .ok());
}

TEST_F(LicenseParserTest, RejectsMissingOrMisplacedAggregate) {
  EXPECT_FALSE(ParseLicense(
                   "(K; Play; T=[2009-03-10, 2009-03-11]; R={Asia}; "
                   "Q=[1, 2])",
                   schema_, LicenseType::kUsage, "LU")
                   .ok());
  // Aggregate before the last position.
  EXPECT_FALSE(ParseLicense(
                   "(K; Play; A=10; T=[2009-03-10, 2009-03-11]; R={Asia})",
                   schema_, LicenseType::kUsage, "LU")
                   .ok());
}

TEST_F(LicenseParserTest, RejectsNonNumericAggregate) {
  EXPECT_FALSE(ParseLicense(
                   "(K; Play; T=[2009-03-10, 2009-03-11]; R={Asia}; A=lots)",
                   schema_, LicenseType::kUsage, "LU")
                   .ok());
}

TEST_F(LicenseParserTest, RejectsFieldWithoutEquals) {
  EXPECT_FALSE(ParseLicense(
                   "(K; Play; T; R={Asia}; A=10)", schema_,
                   LicenseType::kUsage, "LU")
                   .ok());
}

TEST_F(LicenseParserTest, RejectsEmptyContentKey) {
  EXPECT_FALSE(ParseLicense(
                   "(; Play; T=[2009-03-10, 2009-03-11]; R={Asia}; A=10)",
                   schema_, LicenseType::kUsage, "LU")
                   .ok());
}

TEST_F(LicenseParserTest, AllFiveExampleLicensesParse) {
  // The five redistribution licenses of the paper's Example 1.
  const char* texts[] = {
      "(K; Play; T=[10/03/09, 20/03/09]; R=[Asia, Europe]; A=2000)",
      "(K; Play; T=[15/03/09, 25/03/09]; R=[Asia]; A=1000)",
      "(K; Play; T=[15/03/09, 30/03/09]; R=[America]; A=3000)",
      "(K; Play; T=[15/03/09, 15/04/09]; R=[Europe]; A=4000)",
      "(K; Play; T=[25/03/09, 10/04/09]; R=[America]; A=2000)",
  };
  int64_t expected_aggregates[] = {2000, 1000, 3000, 4000, 2000};
  for (int i = 0; i < 5; ++i) {
    const Result<License> license =
        ParseLicense(texts[i], schema_, LicenseType::kRedistribution,
                     "LD" + std::to_string(i + 1));
    ASSERT_TRUE(license.ok()) << texts[i] << ": " << license.status();
    EXPECT_EQ(license->aggregate_count(), expected_aggregates[i]);
  }
}

}  // namespace
}  // namespace geolic
