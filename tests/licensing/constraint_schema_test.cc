#include "licensing/constraint_schema.h"

#include <gtest/gtest.h>

#include "util/date.h"

namespace geolic {
namespace {

TEST(ConstraintSchemaTest, AddDimensionsAndIndexOf) {
  ConstraintSchema schema;
  ASSERT_TRUE(schema.AddIntervalDimension("T", IntervalFormat::kDate).ok());
  ASSERT_TRUE(
      schema.AddCategoricalDimension("R", CategoryUniverse::WorldRegions())
          .ok());
  ASSERT_TRUE(schema.AddIntervalDimension("Q").ok());
  EXPECT_EQ(schema.dimensions(), 3);
  EXPECT_EQ(*schema.IndexOf("T"), 0);
  EXPECT_EQ(*schema.IndexOf("R"), 1);
  EXPECT_EQ(*schema.IndexOf("Q"), 2);
  EXPECT_FALSE(schema.IndexOf("Z").ok());
  EXPECT_EQ(schema.kind(0), DimensionKind::kInterval);
  EXPECT_EQ(schema.kind(1), DimensionKind::kCategorical);
  EXPECT_EQ(schema.format(0), IntervalFormat::kDate);
  EXPECT_EQ(schema.format(2), IntervalFormat::kInteger);
}

TEST(ConstraintSchemaTest, RejectsDuplicateAndEmptyNames) {
  ConstraintSchema schema;
  ASSERT_TRUE(schema.AddIntervalDimension("T").ok());
  EXPECT_EQ(schema.AddIntervalDimension("T").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.AddCategoricalDimension("T", CategoryUniverse()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.AddIntervalDimension("").code(),
            StatusCode::kInvalidArgument);
}

TEST(ConstraintSchemaTest, ParseIntegerInterval) {
  ConstraintSchema schema;
  ASSERT_TRUE(schema.AddIntervalDimension("Q").ok());
  const Result<ConstraintRange> range = schema.ParseRange(0, "[10, 20]");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->interval(), Interval(10, 20));
}

TEST(ConstraintSchemaTest, ParseSingleValueBecomesPoint) {
  ConstraintSchema schema;
  ASSERT_TRUE(schema.AddIntervalDimension("Q").ok());
  const Result<ConstraintRange> range = schema.ParseRange(0, "42");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->interval(), Interval::Point(42));
}

TEST(ConstraintSchemaTest, ParseDateInterval) {
  ConstraintSchema schema;
  ASSERT_TRUE(schema.AddIntervalDimension("T", IntervalFormat::kDate).ok());
  const Result<ConstraintRange> range =
      schema.ParseRange(0, "[2009-03-10, 2009-03-20]");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->interval().Length(), 11);
  EXPECT_EQ(range->interval().lo(),
            Date::FromCivil(2009, 3, 10)->day_number());
}

TEST(ConstraintSchemaTest, ParsePaperSlashDates) {
  ConstraintSchema schema;
  ASSERT_TRUE(schema.AddIntervalDimension("T", IntervalFormat::kDate).ok());
  const Result<ConstraintRange> range =
      schema.ParseRange(0, "[10/03/09, 20/03/09]");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->interval().lo(),
            Date::FromCivil(2009, 3, 10)->day_number());
}

TEST(ConstraintSchemaTest, ParseCategoricalList) {
  ConstraintSchema schema;
  ASSERT_TRUE(
      schema.AddCategoricalDimension("R", CategoryUniverse::WorldRegions())
          .ok());
  const Result<ConstraintRange> range =
      schema.ParseRange(0, "{Asia, Europe}");
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(range->is_categories());
  const CategoryUniverse world = CategoryUniverse::WorldRegions();
  EXPECT_TRUE(range->categories().Contains(*world.Resolve("India")));
  EXPECT_TRUE(range->categories().Contains(*world.Resolve("Germany")));
  EXPECT_FALSE(range->categories().Contains(*world.Resolve("USA")));
}

TEST(ConstraintSchemaTest, ParseCategoricalBracketsAndSingle) {
  ConstraintSchema schema;
  ASSERT_TRUE(
      schema.AddCategoricalDimension("R", CategoryUniverse::WorldRegions())
          .ok());
  // The paper writes R=[Asia, Europe]; both brace styles parse.
  EXPECT_TRUE(schema.ParseRange(0, "[Asia, Europe]").ok());
  const Result<ConstraintRange> single = schema.ParseRange(0, "India");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->categories(),
            *CategoryUniverse::WorldRegions().Resolve("India"));
}

TEST(ConstraintSchemaTest, ParseErrors) {
  ConstraintSchema schema;
  ASSERT_TRUE(schema.AddIntervalDimension("Q").ok());
  ASSERT_TRUE(
      schema.AddCategoricalDimension("R", CategoryUniverse::WorldRegions())
          .ok());
  EXPECT_FALSE(schema.ParseRange(0, "").ok());
  EXPECT_FALSE(schema.ParseRange(0, "[1").ok());
  EXPECT_FALSE(schema.ParseRange(0, "[1, 2, 3]").ok());
  EXPECT_FALSE(schema.ParseRange(0, "[5, 1]").ok());     // Reversed.
  EXPECT_FALSE(schema.ParseRange(0, "[a, b]").ok());
  EXPECT_FALSE(schema.ParseRange(1, "{Atlantis}").ok());
  EXPECT_FALSE(schema.ParseRange(1, "{}").ok());
  EXPECT_FALSE(schema.ParseRange(1, "{Asia").ok());
  EXPECT_FALSE(schema.ParseRange(7, "[1, 2]").ok());     // Bad dim index.
  EXPECT_FALSE(schema.ParseRange(-1, "[1, 2]").ok());
}

TEST(ConstraintSchemaTest, FormatRangeRoundTrips) {
  ConstraintSchema schema;
  ASSERT_TRUE(schema.AddIntervalDimension("T", IntervalFormat::kDate).ok());
  ASSERT_TRUE(schema.AddIntervalDimension("Q").ok());
  ASSERT_TRUE(
      schema.AddCategoricalDimension("R", CategoryUniverse::WorldRegions())
          .ok());
  const ConstraintRange dates = *schema.ParseRange(0, "[2009-03-10, 2009-03-20]");
  EXPECT_EQ(schema.FormatRange(0, dates), "[2009-03-10, 2009-03-20]");
  const ConstraintRange numbers = *schema.ParseRange(1, "[3, 9]");
  EXPECT_EQ(schema.FormatRange(1, numbers), "[3, 9]");
  const ConstraintRange regions = *schema.ParseRange(2, "{Asia, Europe}");
  EXPECT_EQ(schema.FormatRange(2, regions), "{Asia, Europe}");
}

TEST(ConstraintSchemaTest, ValidateRange) {
  ConstraintSchema schema;
  ASSERT_TRUE(schema.AddIntervalDimension("Q").ok());
  ASSERT_TRUE(
      schema.AddCategoricalDimension("R", CategoryUniverse::WorldRegions())
          .ok());
  EXPECT_TRUE(schema.ValidateRange(0, ConstraintRange(Interval(1, 2))).ok());
  EXPECT_FALSE(
      schema.ValidateRange(0, ConstraintRange(CategorySet(0b1))).ok());
  EXPECT_FALSE(
      schema.ValidateRange(1, ConstraintRange(Interval(1, 2))).ok());
  EXPECT_FALSE(
      schema.ValidateRange(0, ConstraintRange(Interval::Empty())).ok());
  EXPECT_FALSE(schema.ValidateRange(5, ConstraintRange(Interval(1, 2))).ok());
}

TEST(ConstraintSchemaTest, PaperExampleSchemaShape) {
  const ConstraintSchema schema = ConstraintSchema::PaperExampleSchema();
  EXPECT_EQ(schema.dimensions(), 2);
  EXPECT_EQ(schema.name(0), "T");
  EXPECT_EQ(schema.name(1), "R");
  EXPECT_EQ(schema.kind(0), DimensionKind::kInterval);
  EXPECT_EQ(schema.kind(1), DimensionKind::kCategorical);
}

}  // namespace
}  // namespace geolic
