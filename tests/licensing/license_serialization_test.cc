#include "licensing/license_serialization.h"

#include <sstream>

#include <gtest/gtest.h>

#include "licensing/license_parser.h"
#include "test_util.h"
#include "util/random.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;

TEST(LicenseSerializationTest, RoundTripsIntervalLicense) {
  const ConstraintSchema schema = IntervalSchema(3);
  const License original = MakeRedistribution(
      schema, "LD1", {{0, 10}, {-5, 5}, {100, 200}}, 1234);
  std::stringstream buffer;
  ASSERT_TRUE(WriteLicenseBinary(original, &buffer).ok());
  const Result<License> loaded = ReadLicenseBinary(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->id(), "LD1");
  EXPECT_EQ(loaded->content_key(), "K");
  EXPECT_EQ(loaded->type(), LicenseType::kRedistribution);
  EXPECT_EQ(loaded->permission(), Permission::kPlay);
  EXPECT_EQ(loaded->aggregate_count(), 1234);
  EXPECT_TRUE(loaded->rect() == original.rect());
}

TEST(LicenseSerializationTest, RoundTripsCategoricalLicense) {
  const ConstraintSchema schema = ConstraintSchema::PaperExampleSchema();
  const Result<License> original = ParseLicense(
      "(K; Play; T=[2009-03-10, 2009-03-20]; R={Asia, Europe}; A=2000)",
      schema, LicenseType::kRedistribution, "LD1");
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteLicenseBinary(*original, &buffer).ok());
  const Result<License> loaded = ReadLicenseBinary(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->rect() == original->rect());
  // The reloaded license renders identically through the schema.
  EXPECT_EQ(loaded->ToString(schema), original->ToString(schema));
}

TEST(LicenseSerializationTest, MultipleLicensesInOneStream) {
  const ConstraintSchema schema = IntervalSchema(1);
  std::stringstream buffer;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(WriteLicenseBinary(
                    MakeRedistribution(schema, "LD" + std::to_string(i),
                                       {{i, i + 10}}, 100 + i),
                    &buffer)
                    .ok());
  }
  for (int i = 0; i < 10; ++i) {
    const Result<License> loaded = ReadLicenseBinary(&buffer);
    ASSERT_TRUE(loaded.ok()) << i;
    EXPECT_EQ(loaded->id(), "LD" + std::to_string(i));
    EXPECT_EQ(loaded->aggregate_count(), 100 + i);
  }
}

TEST(LicenseSerializationTest, RejectsTruncation) {
  const ConstraintSchema schema = IntervalSchema(2);
  std::stringstream buffer;
  ASSERT_TRUE(WriteLicenseBinary(MakeRedistribution(schema, "LD1",
                                                    {{0, 10}, {5, 6}}, 99),
                                 &buffer)
                  .ok());
  const std::string bytes = buffer.str();
  for (size_t cut = 0; cut + 1 < bytes.size(); cut += 5) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_FALSE(ReadLicenseBinary(&truncated).ok()) << "cut=" << cut;
  }
}

TEST(LicenseSerializationTest, RejectsCorruptedEnums) {
  const ConstraintSchema schema = IntervalSchema(1);
  std::stringstream buffer;
  ASSERT_TRUE(WriteLicenseBinary(
                  MakeRedistribution(schema, "X", {{0, 1}}, 1), &buffer)
                  .ok());
  std::string bytes = buffer.str();
  // Type byte sits after the two length-prefixed strings: 4 + 1 + 4 + 1.
  const size_t type_offset = 4 + 1 + 4 + 1;
  bytes[type_offset] = 9;
  std::stringstream corrupted(bytes);
  EXPECT_FALSE(ReadLicenseBinary(&corrupted).ok());
}

// Property: random mixed-dimension licenses round-trip exactly.
TEST(LicenseSerializationPropertyTest, RandomLicensesRoundTrip) {
  Rng rng(70707);
  for (int trial = 0; trial < 200; ++trial) {
    HyperRect rect;
    const int dims = static_cast<int>(rng.UniformInt(1, 6));
    for (int d = 0; d < dims; ++d) {
      if (rng.Bernoulli(0.5)) {
        const int64_t lo = rng.UniformInt(-1000, 1000);
        rect.AddDim(ConstraintRange(Interval(lo, lo + rng.UniformInt(0,
                                                                     500))));
      } else {
        rect.AddDim(ConstraintRange(CategorySet(rng.Next() | 1)));
      }
    }
    const License original(
        "L" + std::to_string(trial), "content-" + std::to_string(trial % 7),
        rng.Bernoulli(0.5) ? LicenseType::kRedistribution
                           : LicenseType::kUsage,
        static_cast<Permission>(rng.UniformInt(0, kNumPermissions - 1)),
        rect, rng.UniformInt(1, 100000));
    std::stringstream buffer;
    ASSERT_TRUE(WriteLicenseBinary(original, &buffer).ok());
    const Result<License> loaded = ReadLicenseBinary(&buffer);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->id(), original.id());
    EXPECT_EQ(loaded->content_key(), original.content_key());
    EXPECT_EQ(loaded->type(), original.type());
    EXPECT_EQ(loaded->permission(), original.permission());
    EXPECT_EQ(loaded->aggregate_count(), original.aggregate_count());
    EXPECT_TRUE(loaded->rect() == original.rect());
  }
}

}  // namespace
}  // namespace geolic
