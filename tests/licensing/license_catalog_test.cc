#include "licensing/license_catalog.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

TEST(LicenseCatalogTest, AddAssignsSequentialIndexes) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(*set.Add(MakeRedistribution(schema, "LD1", {{0, 10}}, 100)), 0);
  EXPECT_EQ(*set.Add(MakeRedistribution(schema, "LD2", {{5, 15}}, 200)), 1);
  EXPECT_EQ(set.size(), 2);
  EXPECT_EQ(set.at(0).id(), "LD1");
  EXPECT_EQ(set.at(1).id(), "LD2");
}

TEST(LicenseCatalogTest, RejectsUsageLicense) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  const Result<int> added = set.Add(MakeUsage(schema, "LU1", {{0, 1}}, 5));
  ASSERT_FALSE(added.ok());
  EXPECT_EQ(added.status().code(), StatusCode::kInvalidArgument);
}

TEST(LicenseCatalogTest, RejectsMismatchedContentOrPermission) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "LD1", {{0, 10}}, 100)).ok());

  LicenseBuilder other_content(&schema);
  other_content.SetId("LD2")
      .SetContentKey("K2")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(10)
      .SetInterval("C1", 0, 1);
  EXPECT_FALSE(set.Add(*other_content.Build()).ok());

  LicenseBuilder other_permission(&schema);
  other_permission.SetId("LD3")
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kCopy)
      .SetAggregateCount(10)
      .SetInterval("C1", 0, 1);
  EXPECT_FALSE(set.Add(*other_permission.Build()).ok());
}

TEST(LicenseCatalogTest, RejectsDuplicateId) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "LD1", {{0, 10}}, 100)).ok());
  const Result<int> duplicate =
      set.Add(MakeRedistribution(schema, "LD1", {{5, 15}}, 200));
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kAlreadyExists);
}

TEST(LicenseCatalogTest, RejectsDimensionMismatch) {
  const ConstraintSchema schema1 = IntervalSchema(1);
  const ConstraintSchema schema2 = IntervalSchema(2);
  LicenseCatalog set(&schema2);
  EXPECT_FALSE(
      set.Add(MakeRedistribution(schema1, "LD1", {{0, 10}}, 100)).ok());
}

TEST(LicenseCatalogTest, CapsAtMaxLicensesLarge) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  for (int i = 0; i < kMaxLicensesLarge; ++i) {
    ASSERT_TRUE(set.Add(MakeRedistribution(schema, "LD" + std::to_string(i),
                                           {{0, 10}}, 100))
                    .ok());
  }
  const Result<int> overflow = set.Add(MakeRedistribution(
      schema, "LD" + std::to_string(kMaxLicensesLarge), {{0, 10}}, 100));
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kCapacityExceeded);
}

TEST(LicenseCatalogTest, AggregateCountsAndSums) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "LD1", {{0, 10}}, 2000)).ok());
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "LD2", {{5, 15}}, 1000)).ok());
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "LD3", {{20, 25}}, 3000)).ok());
  EXPECT_EQ(set.AggregateCounts(), (std::vector<int64_t>{2000, 1000, 3000}));
  // The paper's A[{L1, L2, L3}] example: 2000 + 1000 + 3000.
  EXPECT_EQ(set.AggregateSum(testing::Mask(0b111)), 6000);
  EXPECT_EQ(set.AggregateSum(testing::Mask(0b101)), 5000);
  EXPECT_EQ(set.AggregateSum(testing::Mask(0)), 0);
  EXPECT_EQ(set.AllMask(), testing::Mask(0b111));
}

TEST(LicenseCatalogTest, IndexOfId) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "LD1", {{0, 10}}, 100)).ok());
  ASSERT_TRUE(set.Add(MakeRedistribution(schema, "LD2", {{5, 15}}, 100)).ok());
  EXPECT_EQ(*set.IndexOfId("LD2"), 1);
  EXPECT_FALSE(set.IndexOfId("LD9").ok());
}

}  // namespace
}  // namespace geolic
