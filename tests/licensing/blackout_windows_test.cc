// End-to-end coverage of non-contiguous (multi-interval) constraint
// windows: parsing, formatting, builder, instance validation, overlap
// grouping, online validation, and binary serialization.
#include <sstream>

#include <gtest/gtest.h>

#include "core/grouping.h"
#include "core/instance_validator.h"
#include "core/online_validator.h"
#include "licensing/license_parser.h"
#include "licensing/license_serialization.h"
#include "test_util.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeUsage;

TEST(BlackoutWindowsTest, SchemaParsesUnionSyntax) {
  const ConstraintSchema schema = IntervalSchema(1);
  const Result<ConstraintRange> range =
      schema.ParseRange(0, "[0, 10]|[20, 30]");
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(range->is_multi_interval());
  EXPECT_EQ(range->multi_interval().piece_count(), 2);
  EXPECT_EQ(schema.FormatRange(0, *range), "[0, 10]|[20, 30]");
}

TEST(BlackoutWindowsTest, TouchingWindowsCollapseToInterval) {
  const ConstraintSchema schema = IntervalSchema(1);
  const Result<ConstraintRange> range =
      schema.ParseRange(0, "[0, 10]|[11, 30]");
  ASSERT_TRUE(range.ok());
  EXPECT_TRUE(range->is_interval());
  EXPECT_EQ(range->interval(), Interval(0, 30));
}

TEST(BlackoutWindowsTest, DateWindowsParse) {
  ConstraintSchema schema;
  ASSERT_TRUE(schema.AddIntervalDimension("T", IntervalFormat::kDate).ok());
  const Result<ConstraintRange> range = schema.ParseRange(
      0, "[2026-01-01, 2026-02-28]|[2026-04-01, 2026-06-30]");
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(range->is_multi_interval());
  EXPECT_EQ(schema.FormatRange(0, *range),
            "[2026-01-01, 2026-02-28]|[2026-04-01, 2026-06-30]");
}

TEST(BlackoutWindowsTest, ParseRejectsEmptyWindow) {
  const ConstraintSchema schema = IntervalSchema(1);
  EXPECT_FALSE(schema.ParseRange(0, "[0, 10]||[20, 30]").ok());
  EXPECT_FALSE(schema.ParseRange(0, "|[20, 30]").ok());
}

TEST(BlackoutWindowsTest, LicenseTextRoundTrip) {
  const ConstraintSchema schema = IntervalSchema(2);
  const Result<License> license = ParseLicense(
      "(K; Play; C1=[0, 10]|[20, 30]; C2=[5, 50]; A=100)", schema,
      LicenseType::kRedistribution, "LD1");
  ASSERT_TRUE(license.ok());
  EXPECT_EQ(license->ToString(schema),
            "(K; Play; C1=[0, 10]|[20, 30]; C2=[5, 50]; A=100)");
  const Result<License> reparsed =
      ParseLicense(license->ToString(schema), schema,
                   LicenseType::kRedistribution, "LD1");
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed->rect() == license->rect());
}

TEST(BlackoutWindowsTest, BuilderIntervalUnion) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseBuilder builder(&schema);
  builder.SetId("LD1")
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(100)
      .SetIntervalUnion("C1", {{0, 10}, {20, 30}});
  const Result<License> license = builder.Build();
  ASSERT_TRUE(license.ok());
  EXPECT_TRUE(license->rect().dim(0).is_multi_interval());
}

TEST(BlackoutWindowsTest, InstanceValidationRespectsBlackout) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  LicenseBuilder builder(&schema);
  builder.SetId("LD1")
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(100)
      .SetIntervalUnion("C1", {{0, 10}, {20, 30}});
  ASSERT_TRUE(set.Add(*builder.Build()).ok());
  const LinearInstanceValidator validator(&set);

  // Inside the first window.
  EXPECT_EQ(validator.SatisfyingSet(MakeUsage(schema, "U1", {{2, 8}}, 1)),
            testing::Mask(0b1));
  // Inside the second window.
  EXPECT_EQ(validator.SatisfyingSet(MakeUsage(schema, "U2", {{22, 30}}, 1)),
            testing::Mask(0b1));
  // Spanning the blackout gap: NOT contained.
  EXPECT_EQ(validator.SatisfyingSet(MakeUsage(schema, "U3", {{8, 22}}, 1)),
            testing::Mask(0));
  // Entirely inside the gap: not contained.
  EXPECT_EQ(validator.SatisfyingSet(MakeUsage(schema, "U4", {{12, 18}}, 1)),
            testing::Mask(0));
}

TEST(BlackoutWindowsTest, OverlapGroupingSeesThroughGaps) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  LicenseBuilder window_builder(&schema);
  window_builder.SetId("LD1")
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(100)
      .SetIntervalUnion("C1", {{0, 10}, {20, 30}});
  ASSERT_TRUE(set.Add(*window_builder.Build()).ok());
  // Lives inside LD1's gap — geometrically disjoint despite the bounding
  // interval [0, 30] covering it.
  LicenseBuilder gap_builder(&schema);
  gap_builder.SetId("LD2")
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(50)
      .SetInterval("C1", 12, 18);
  ASSERT_TRUE(set.Add(*gap_builder.Build()).ok());

  const LicenseGrouping grouping = LicenseGrouping::FromLicenses(set);
  EXPECT_EQ(grouping.group_count(), 2);  // The gap separates them.

  // R-tree instance lookup (whose boxes are lossy bounding intervals) must
  // still agree with the exact linear scan.
  const LinearInstanceValidator linear(&set);
  const Result<RtreeInstanceValidator> rtree =
      RtreeInstanceValidator::Build(&set);
  ASSERT_TRUE(rtree.ok());
  for (const auto& [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {2, 8}, {12, 18}, {8, 22}, {25, 28}}) {
    const License usage = MakeUsage(schema, "Q", {{lo, hi}}, 1);
    EXPECT_EQ(rtree->SatisfyingSet(usage), linear.SatisfyingSet(usage));
  }
}

TEST(BlackoutWindowsTest, OnlineValidationWithWindows) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseCatalog set(&schema);
  LicenseBuilder builder(&schema);
  builder.SetId("LD1")
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(50)
      .SetIntervalUnion("C1", {{0, 10}, {20, 30}});
  ASSERT_TRUE(set.Add(*builder.Build()).ok());
  Result<OnlineValidator> validator = OnlineValidator::Create(&set);
  ASSERT_TRUE(validator.ok());
  EXPECT_TRUE(
      validator->TryIssue(MakeUsage(schema, "U1", {{0, 5}}, 30))->accepted());
  // Gap-spanning issue fails instance validation, so the budget stays.
  EXPECT_FALSE(validator->TryIssue(MakeUsage(schema, "U2", {{8, 22}}, 10))
                   ->instance_valid);
  EXPECT_TRUE(validator->TryIssue(MakeUsage(schema, "U3", {{25, 30}}, 20))
                  ->accepted());
  // Budget now exhausted.
  EXPECT_FALSE(
      validator->TryIssue(MakeUsage(schema, "U4", {{0, 1}}, 1))->accepted());
}

TEST(BlackoutWindowsTest, BinarySerializationRoundTrip) {
  const ConstraintSchema schema = IntervalSchema(1);
  LicenseBuilder builder(&schema);
  builder.SetId("LD1")
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(100)
      .SetIntervalUnion("C1", {{0, 10}, {20, 30}, {40, 50}});
  const Result<License> original = builder.Build();
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteLicenseBinary(*original, &buffer).ok());
  const Result<License> loaded = ReadLicenseBinary(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->rect() == original->rect());
}

}  // namespace
}  // namespace geolic
