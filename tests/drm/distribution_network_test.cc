#include "drm/distribution_network.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

class DistributionNetworkTest : public ::testing::Test {
 protected:
  DistributionNetworkTest()
      : schema_(IntervalSchema(1)),
        network_(&schema_, "K", Permission::kPlay) {}

  ConstraintSchema schema_;
  DistributionNetwork network_;
};

TEST_F(DistributionNetworkTest, PartyRegistration) {
  const Result<int> owner = network_.AddOwner("Studio");
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(network_.AddOwner("Second").status().code(),
            StatusCode::kAlreadyExists);

  const Result<int> distributor = network_.AddDistributor("D1", *owner);
  ASSERT_TRUE(distributor.ok());
  const Result<int> sub = network_.AddDistributor("D2", *distributor);
  ASSERT_TRUE(sub.ok());
  const Result<int> consumer = network_.AddConsumer("C1", *distributor);
  ASSERT_TRUE(consumer.ok());

  EXPECT_EQ(network_.party(*owner).role, PartyRole::kOwner);
  EXPECT_EQ(network_.party(*distributor).role, PartyRole::kDistributor);
  EXPECT_EQ(network_.party(*consumer).role, PartyRole::kConsumer);
  EXPECT_EQ(network_.party(*sub).parent, *distributor);

  // Consumers cannot parent anything; consumers attach to distributors.
  EXPECT_FALSE(network_.AddDistributor("D3", *consumer).ok());
  EXPECT_FALSE(network_.AddConsumer("C2", *owner).ok());
  EXPECT_FALSE(network_.AddDistributor("D4", 99).ok());
}

TEST_F(DistributionNetworkTest, PartyRoleNames) {
  EXPECT_STREQ(PartyRoleName(PartyRole::kOwner), "owner");
  EXPECT_STREQ(PartyRoleName(PartyRole::kDistributor), "distributor");
  EXPECT_STREQ(PartyRoleName(PartyRole::kConsumer), "consumer");
}

TEST_F(DistributionNetworkTest, OwnerGrantAndShapeChecks) {
  const int owner = *network_.AddOwner("Studio");
  const int distributor = *network_.AddDistributor("D1", owner);

  ASSERT_TRUE(network_
                  .GrantFromOwner(distributor, MakeRedistribution(
                                                   schema_, "LD1", {{0, 100}},
                                                   1000))
                  .ok());
  EXPECT_EQ(network_.ReceivedLicenses(distributor).size(), 1);

  // Usage license cannot be granted as redistribution.
  EXPECT_FALSE(network_
                   .GrantFromOwner(distributor,
                                   MakeUsage(schema_, "LU", {{0, 1}}, 5))
                   .ok());
  // Wrong permission.
  LicenseBuilder builder(&schema_);
  builder.SetId("LD2")
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kCopy)
      .SetAggregateCount(10)
      .SetInterval("C1", 0, 1);
  EXPECT_FALSE(network_.GrantFromOwner(distributor, *builder.Build()).ok());
}

TEST_F(DistributionNetworkTest, GrantBeforeOwnerFails) {
  DistributionNetwork fresh(&schema_, "K", Permission::kPlay);
  EXPECT_EQ(fresh
                .GrantFromOwner(0, MakeRedistribution(schema_, "LD1",
                                                      {{0, 100}}, 1000))
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DistributionNetworkTest, UsageIssueToConsumer) {
  const int owner = *network_.AddOwner("Studio");
  const int distributor = *network_.AddDistributor("D1", owner);
  const int consumer = *network_.AddConsumer("C1", distributor);
  ASSERT_TRUE(network_
                  .GrantFromOwner(distributor,
                                  MakeRedistribution(schema_, "LD1",
                                                     {{0, 100}}, 1000))
                  .ok());

  const Result<OnlineDecision> decision = network_.Issue(
      distributor, consumer, MakeUsage(schema_, "LU1", {{10, 20}}, 50));
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->accepted());
  EXPECT_EQ(network_.IssuanceLog(distributor).size(), 1u);

  // Usage licenses cannot go to distributors.
  const int sub = *network_.AddDistributor("D2", distributor);
  EXPECT_FALSE(
      network_.Issue(distributor, sub, MakeUsage(schema_, "LU2", {{0, 1}}, 1))
          .ok());
}

TEST_F(DistributionNetworkTest, RedistributionIssuePropagates) {
  const int owner = *network_.AddOwner("Studio");
  const int d1 = *network_.AddDistributor("D1", owner);
  const int d2 = *network_.AddDistributor("D2", d1);
  ASSERT_TRUE(network_
                  .GrantFromOwner(d1, MakeRedistribution(schema_, "LD1",
                                                         {{0, 100}}, 1000))
                  .ok());

  // D1 carves a sub-license for D2 out of LD1.
  const Result<OnlineDecision> decision = network_.Issue(
      d1, d2, MakeRedistribution(schema_, "LD1.1", {{10, 50}}, 400));
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->accepted());
  EXPECT_EQ(network_.ReceivedLicenses(d2).size(), 1);
  EXPECT_EQ(network_.ReceivedLicenses(d2).at(0).id(), "LD1.1");

  // D2 can now issue to its consumer within [10, 50] and 400 counts.
  const int consumer = *network_.AddConsumer("C1", d2);
  const Result<OnlineDecision> usage = network_.Issue(
      d2, consumer, MakeUsage(schema_, "LU1", {{15, 30}}, 100));
  ASSERT_TRUE(usage.ok());
  EXPECT_TRUE(usage->accepted());

  // Outside the sub-license's range → instance-invalid for D2.
  const Result<OnlineDecision> outside = network_.Issue(
      d2, consumer, MakeUsage(schema_, "LU2", {{60, 70}}, 10));
  ASSERT_TRUE(outside.ok());
  EXPECT_FALSE(outside->accepted());
  EXPECT_FALSE(outside->instance_valid);
}

TEST_F(DistributionNetworkTest, AggregateBudgetEnforcedDownstream) {
  const int owner = *network_.AddOwner("Studio");
  const int d1 = *network_.AddDistributor("D1", owner);
  const int consumer = *network_.AddConsumer("C1", d1);
  ASSERT_TRUE(network_
                  .GrantFromOwner(d1, MakeRedistribution(schema_, "LD1",
                                                         {{0, 100}}, 100))
                  .ok());
  // First 80 counts pass, next 30 exceed the 100 budget.
  EXPECT_TRUE(network_
                  .Issue(d1, consumer,
                         MakeUsage(schema_, "LU1", {{0, 10}}, 80))
                  ->accepted());
  const Result<OnlineDecision> over = network_.Issue(
      d1, consumer, MakeUsage(schema_, "LU2", {{0, 10}}, 30));
  ASSERT_TRUE(over.ok());
  EXPECT_FALSE(over->accepted());
  EXPECT_FALSE(over->aggregate_valid);
}

TEST_F(DistributionNetworkTest, IssueWithoutLicensesFails) {
  const int owner = *network_.AddOwner("Studio");
  const int d1 = *network_.AddDistributor("D1", owner);
  const int consumer = *network_.AddConsumer("C1", d1);
  EXPECT_EQ(network_
                .Issue(d1, consumer, MakeUsage(schema_, "LU1", {{0, 1}}, 1))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DistributionNetworkTest, CleanNetworkAuditsClean) {
  const int owner = *network_.AddOwner("Studio");
  const int d1 = *network_.AddDistributor("D1", owner);
  const int consumer = *network_.AddConsumer("C1", d1);
  ASSERT_TRUE(network_
                  .GrantFromOwner(d1, MakeRedistribution(schema_, "LD1",
                                                         {{0, 50}}, 500))
                  .ok());
  ASSERT_TRUE(network_
                  .GrantFromOwner(d1, MakeRedistribution(schema_, "LD2",
                                                         {{40, 90}}, 300))
                  .ok());
  for (int i = 0; i < 10; ++i) {
    const Result<OnlineDecision> decision = network_.Issue(
        d1, consumer,
        MakeUsage(schema_, "LU" + std::to_string(i), {{i * 5, i * 5 + 4}},
                  20));
    ASSERT_TRUE(decision.ok());
    EXPECT_TRUE(decision->accepted());
  }
  const Result<NetworkAudit> audit = network_.AuditAll();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean());
  ASSERT_EQ(audit->distributors.size(), 1u);
  EXPECT_EQ(audit->distributors[0].party_name, "D1");
}

TEST_F(DistributionNetworkTest, RogueIssueDetectedByAudit) {
  const int owner = *network_.AddOwner("Studio");
  const int d1 = *network_.AddDistributor("D1", owner);
  const int consumer = *network_.AddConsumer("C1", d1);
  ASSERT_TRUE(network_
                  .GrantFromOwner(d1, MakeRedistribution(schema_, "LD1",
                                                         {{0, 50}}, 100))
                  .ok());
  // Rogue: 150 counts against a 100 budget, bypassing online validation.
  const Result<LicenseSet> rogue_set = network_.IssueUnchecked(
      d1, consumer, MakeUsage(schema_, "LUX", {{0, 10}}, 150));
  ASSERT_TRUE(rogue_set.ok());
  EXPECT_EQ(*rogue_set, testing::Mask(0b1));

  const Result<DistributorAudit> audit = network_.AuditDistributor(d1);
  ASSERT_TRUE(audit.ok());
  EXPECT_FALSE(audit->result.report.all_valid());
  ASSERT_EQ(audit->result.report.violations.size(), 1u);
  EXPECT_EQ(audit->result.report.violations[0].set, testing::Mask(0b1));
  EXPECT_EQ(audit->result.report.violations[0].lhs, 150);
  EXPECT_EQ(audit->result.report.violations[0].rhs, 100);

  const Result<NetworkAudit> all = network_.AuditAll();
  ASSERT_TRUE(all.ok());
  EXPECT_FALSE(all->clean());
}

TEST_F(DistributionNetworkTest, RogueInstanceInvalidIsRejectedOutright) {
  const int owner = *network_.AddOwner("Studio");
  const int d1 = *network_.AddDistributor("D1", owner);
  const int consumer = *network_.AddConsumer("C1", d1);
  ASSERT_TRUE(network_
                  .GrantFromOwner(d1, MakeRedistribution(schema_, "LD1",
                                                         {{0, 50}}, 100))
                  .ok());
  // Entirely outside every received license: unattributable, rejected.
  EXPECT_FALSE(network_
                   .IssueUnchecked(d1, consumer,
                                   MakeUsage(schema_, "LUX", {{200, 210}}, 5))
                   .ok());
}

TEST_F(DistributionNetworkTest, AuditValidatesRoleAndRange) {
  const int owner = *network_.AddOwner("Studio");
  EXPECT_FALSE(network_.AuditDistributor(owner).ok());
  EXPECT_FALSE(network_.AuditDistributor(42).ok());
  const int d1 = *network_.AddDistributor("D1", owner);
  // No licenses yet: trivially clean audit.
  const Result<DistributorAudit> audit = network_.AuditDistributor(d1);
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->result.report.all_valid());
  EXPECT_EQ(audit->result.report.equations_evaluated, 0u);
}

TEST_F(DistributionNetworkTest, SubLicensingConsumesIssuerBudget) {
  // Generating a redistribution license consumes the issuer's aggregate
  // budget exactly like usage licenses do (the paper: "the sum of the
  // aggregate constraint counts in all the licenses generated using a
  // redistribution license must not exceed" its value).
  const int owner = *network_.AddOwner("Studio");
  const int d1 = *network_.AddDistributor("D1", owner);
  const int d2 = *network_.AddDistributor("D2", d1);
  const int consumer = *network_.AddConsumer("C1", d1);
  ASSERT_TRUE(network_
                  .GrantFromOwner(d1, MakeRedistribution(schema_, "LD1",
                                                         {{0, 100}}, 500))
                  .ok());
  // Sub-license takes 400 of the 500.
  ASSERT_TRUE(network_
                  .Issue(d1, d2,
                         MakeRedistribution(schema_, "LD1.1", {{0, 50}},
                                            400))
                  ->accepted());
  // 150 more for a consumer exceeds the remaining 100.
  const Result<OnlineDecision> over = network_.Issue(
      d1, consumer, MakeUsage(schema_, "LU1", {{60, 70}}, 150));
  ASSERT_TRUE(over.ok());
  EXPECT_FALSE(over->accepted());
  // 100 exactly fits.
  EXPECT_TRUE(network_
                  .Issue(d1, consumer,
                         MakeUsage(schema_, "LU2", {{60, 70}}, 100))
                  ->accepted());
}

TEST_F(DistributionNetworkTest, ViolationAttributedToCorrectLevel) {
  // A rogue mid-tier distributor is caught by ITS audit; its parent and
  // sibling stay clean.
  const int owner = *network_.AddOwner("Studio");
  const int d1 = *network_.AddDistributor("D1", owner);
  const int d2 = *network_.AddDistributor("D2", d1);
  const int d3 = *network_.AddDistributor("D3", d1);
  const int consumer = *network_.AddConsumer("C1", d2);
  ASSERT_TRUE(network_
                  .GrantFromOwner(d1, MakeRedistribution(schema_, "LD1",
                                                         {{0, 100}}, 1000))
                  .ok());
  ASSERT_TRUE(network_
                  .Issue(d1, d2,
                         MakeRedistribution(schema_, "LD1.1", {{0, 40}},
                                            300))
                  ->accepted());
  ASSERT_TRUE(network_
                  .Issue(d1, d3,
                         MakeRedistribution(schema_, "LD1.2", {{50, 90}},
                                            300))
                  ->accepted());
  // D2 goes rogue: 450 counts against its 300 budget.
  ASSERT_TRUE(network_
                  .IssueUnchecked(d2, consumer,
                                  MakeUsage(schema_, "LUX", {{0, 10}}, 450))
                  .ok());
  const Result<NetworkAudit> audit = network_.AuditAll();
  ASSERT_TRUE(audit.ok());
  EXPECT_FALSE(audit->clean());
  for (const DistributorAudit& entry : audit->distributors) {
    if (entry.party_id == d2) {
      EXPECT_FALSE(entry.result.report.all_valid());
    } else {
      EXPECT_TRUE(entry.result.report.all_valid())
          << entry.party_name << " wrongly implicated";
    }
  }
}

TEST_F(DistributionNetworkTest, MultiLevelChainEndToEnd) {
  // Owner → D1 → D2 → D3 → consumer, with shrinking licenses; the deepest
  // distributor's issuance stays inside every ancestor constraint.
  const int owner = *network_.AddOwner("Studio");
  const int d1 = *network_.AddDistributor("D1", owner);
  const int d2 = *network_.AddDistributor("D2", d1);
  const int d3 = *network_.AddDistributor("D3", d2);
  const int consumer = *network_.AddConsumer("C", d3);

  ASSERT_TRUE(network_
                  .GrantFromOwner(d1, MakeRedistribution(schema_, "L1",
                                                         {{0, 1000}}, 10000))
                  .ok());
  ASSERT_TRUE(network_
                  .Issue(d1, d2,
                         MakeRedistribution(schema_, "L2", {{100, 800}},
                                            4000))
                  ->accepted());
  ASSERT_TRUE(network_
                  .Issue(d2, d3,
                         MakeRedistribution(schema_, "L3", {{200, 600}},
                                            1500))
                  ->accepted());
  ASSERT_TRUE(network_
                  .Issue(d3, consumer,
                         MakeUsage(schema_, "LU", {{250, 300}}, 100))
                  ->accepted());

  const Result<NetworkAudit> audit = network_.AuditAll();
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->clean());
  EXPECT_EQ(audit->distributors.size(), 3u);
}

}  // namespace
}  // namespace geolic
