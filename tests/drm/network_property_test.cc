// Randomised end-to-end property: in a random multi-level network with a
// random mix of honest (online-validated) and rogue (unchecked) issuance,
// the offline audit flags exactly the distributors whose rogue issues
// actually pushed some equation past its budget — and never an honest one.
#include <gtest/gtest.h>

#include "drm/distribution_network.h"
#include "test_util.h"
#include "util/random.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

class NetworkPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetworkPropertyTest, AuditFlagsExactlyTheGuilty) {
  const uint64_t seed = GetParam();
  Rng rng(testing::TestSeed(seed));
  const ConstraintSchema schema = IntervalSchema(1);
  DistributionNetwork network(&schema, "K", Permission::kPlay);
  const int owner = *network.AddOwner("owner");

  const int num_distributors = static_cast<int>(rng.UniformInt(2, 5));
  std::vector<int> distributors;
  std::vector<int> consumers;
  for (int d = 0; d < num_distributors; ++d) {
    const int distributor =
        *network.AddDistributor("d" + std::to_string(d), owner);
    distributors.push_back(distributor);
    consumers.push_back(
        *network.AddConsumer("c" + std::to_string(d), distributor));
    const int licenses = static_cast<int>(rng.UniformInt(1, 4));
    for (int l = 0; l < licenses; ++l) {
      // Private band per distributor, overlapping licenses inside it.
      const int64_t lo = d * 10000 + rng.UniformInt(0, 500);
      ASSERT_TRUE(network
                      .GrantFromOwner(
                          distributor,
                          MakeRedistribution(
                              schema,
                              "ld" + std::to_string(d) + "." +
                                  std::to_string(l),
                              {{lo, lo + rng.UniformInt(200, 800)}},
                              rng.UniformInt(100, 600)))
                      .ok());
    }
  }

  // Mixed honest/rogue traffic. Track, per distributor, whether any rogue
  // count actually landed (rogues may also be instance-invalid and bounce).
  std::vector<bool> rogue_landed(static_cast<size_t>(num_distributors),
                                 false);
  for (int i = 0; i < 400; ++i) {
    const size_t d = rng.UniformIndex(distributors.size());
    const LicenseCatalog& received = network.ReceivedLicenses(distributors[d]);
    const License& target = received.at(
        static_cast<int>(rng.UniformIndex(
            static_cast<size_t>(received.size()))));
    const Interval range = target.rect().dim(0).interval();
    const int64_t lo = rng.UniformInt(range.lo(), range.hi());
    const int64_t hi = rng.UniformInt(lo, range.hi());
    const int64_t count = rng.UniformInt(5, 80);
    const License usage = MakeUsage(
        schema, "u" + std::to_string(i), {{lo, hi}}, count);
    if (rng.Bernoulli(0.03)) {
      const Result<LicenseSet> rogue =
          network.IssueUnchecked(distributors[d], consumers[d], usage);
      if (rogue.ok()) {
        rogue_landed[d] = true;
      }
    } else {
      ASSERT_TRUE(
          network.Issue(distributors[d], consumers[d], usage).ok());
    }
  }

  const Result<NetworkAudit> audit = network.AuditAll();
  ASSERT_TRUE(audit.ok());
  for (const DistributorAudit& entry : audit->distributors) {
    // Identify which distributor this is.
    size_t d = 0;
    while (distributors[d] != entry.party_id) {
      ++d;
    }
    if (entry.result.report.all_valid()) {
      // Clean verdicts are always allowed (a rogue issue may still fit the
      // budgets). Nothing to assert.
      continue;
    }
    // A violation verdict must be backed by at least one rogue issue that
    // landed at this distributor — honest traffic alone cannot violate.
    EXPECT_TRUE(rogue_landed[d])
        << "seed " << seed << ": honest distributor " << entry.party_name
        << " flagged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace geolic
