#include "drm/validation_authority.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "test_util.h"

namespace geolic {
namespace {

using testing::IntervalSchema;
using testing::MakeRedistribution;
using testing::MakeUsage;

std::string TempPath(const std::string& suffix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "geolic_" + info->test_suite_name() + "_" +
         info->name() + suffix;
}

// Redistribution license for an arbitrary content/permission.
License MakeFor(const ConstraintSchema& schema, const std::string& id,
                const std::string& content, Permission permission,
                int64_t lo, int64_t hi, int64_t aggregate) {
  LicenseBuilder builder(&schema);
  builder.SetId(id)
      .SetContentKey(content)
      .SetType(LicenseType::kRedistribution)
      .SetPermission(permission)
      .SetAggregateCount(aggregate)
      .SetInterval("C1", lo, hi);
  return *builder.Build();
}

License UsageFor(const ConstraintSchema& schema, const std::string& id,
                 const std::string& content, Permission permission,
                 int64_t lo, int64_t hi, int64_t count) {
  LicenseBuilder builder(&schema);
  builder.SetId(id)
      .SetContentKey(content)
      .SetType(LicenseType::kUsage)
      .SetPermission(permission)
      .SetAggregateCount(count)
      .SetInterval("C1", lo, hi);
  return *builder.Build();
}

TEST(ValidationAuthorityTest, RoutesByContentAndPermission) {
  const ConstraintSchema schema = IntervalSchema(1);
  ValidationAuthority authority(&schema);
  ASSERT_TRUE(authority
                  .RegisterRedistribution(MakeFor(schema, "A1", "movie",
                                                  Permission::kPlay, 0, 100,
                                                  500))
                  .ok());
  ASSERT_TRUE(authority
                  .RegisterRedistribution(MakeFor(schema, "A2", "movie",
                                                  Permission::kCopy, 0, 100,
                                                  50))
                  .ok());
  ASSERT_TRUE(authority
                  .RegisterRedistribution(MakeFor(schema, "B1", "song",
                                                  Permission::kPlay, 0, 100,
                                                  200))
                  .ok());
  EXPECT_EQ(authority.domain_count(), 3);
  EXPECT_EQ(authority.Keys().size(), 3u);

  // Play-movie succeeds against the movie/play domain only.
  const Result<OnlineDecision> play = authority.ValidateIssue(
      UsageFor(schema, "U1", "movie", Permission::kPlay, 10, 20, 100));
  ASSERT_TRUE(play.ok());
  EXPECT_TRUE(play->accepted());

  // Copy-movie uses the separate copy budget (50).
  const Result<OnlineDecision> copy = authority.ValidateIssue(
      UsageFor(schema, "U2", "movie", Permission::kCopy, 10, 20, 60));
  ASSERT_TRUE(copy.ok());
  EXPECT_FALSE(copy->accepted());

  // Unknown content is an error, not a rejection.
  EXPECT_EQ(authority
                .ValidateIssue(UsageFor(schema, "U3", "game",
                                        Permission::kPlay, 0, 1, 1))
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(ValidationAuthorityTest, RejectsBadRegistrations) {
  const ConstraintSchema schema = IntervalSchema(1);
  ValidationAuthority authority(&schema);
  EXPECT_FALSE(authority
                   .RegisterRedistribution(
                       MakeUsage(schema, "U", {{0, 1}}, 5))
                   .ok());
  // A failed first registration must not leave an empty domain behind.
  EXPECT_EQ(authority.domain_count(), 0);

  const ConstraintSchema other = IntervalSchema(2);
  EXPECT_FALSE(authority
                   .RegisterRedistribution(MakeRedistribution(
                       other, "X", {{0, 1}, {0, 1}}, 5))
                   .ok());
  EXPECT_EQ(authority.domain_count(), 0);
}

TEST(ValidationAuthorityTest, HistorySurvivesLicenseGrowth) {
  const ConstraintSchema schema = IntervalSchema(1);
  ValidationAuthority authority(&schema);
  ASSERT_TRUE(authority
                  .RegisterRedistribution(MakeFor(schema, "A1", "movie",
                                                  Permission::kPlay, 0, 50,
                                                  100))
                  .ok());
  ASSERT_TRUE(authority
                  .ValidateIssue(UsageFor(schema, "U1", "movie",
                                          Permission::kPlay, 0, 10, 80))
                  ->accepted());
  // A second license arrives; the grouping rebuild must keep the 80 spent.
  ASSERT_TRUE(authority
                  .RegisterRedistribution(MakeFor(schema, "A2", "movie",
                                                  Permission::kPlay, 40, 90,
                                                  100))
                  .ok());
  const Result<OnlineDecision> over = authority.ValidateIssue(
      UsageFor(schema, "U2", "movie", Permission::kPlay, 0, 10, 30));
  ASSERT_TRUE(over.ok());
  EXPECT_FALSE(over->accepted());  // 80 + 30 > 100 on license A1 alone.
  const Result<LogStore> log = authority.LogFor(
      ValidationAuthority::ContentKey{"movie", Permission::kPlay});
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->size(), 1u);
}

TEST(ValidationAuthorityTest, AuditAllCoversEveryDomain) {
  const ConstraintSchema schema = IntervalSchema(1);
  ValidationAuthority authority(&schema);
  ASSERT_TRUE(authority
                  .RegisterRedistribution(MakeFor(schema, "A1", "movie",
                                                  Permission::kPlay, 0, 50,
                                                  100))
                  .ok());
  ASSERT_TRUE(authority
                  .RegisterRedistribution(MakeFor(schema, "B1", "song",
                                                  Permission::kPlay, 0, 50,
                                                  100))
                  .ok());
  ASSERT_TRUE(authority
                  .ValidateIssue(UsageFor(schema, "U1", "movie",
                                          Permission::kPlay, 0, 10, 40))
                  ->accepted());
  const Result<std::vector<ValidationAuthority::ContentAudit>> audits =
      authority.AuditAll();
  ASSERT_TRUE(audits.ok());
  ASSERT_EQ(audits->size(), 2u);
  for (const auto& audit : *audits) {
    EXPECT_TRUE(audit.result.report.all_valid());
  }
  EXPECT_FALSE(authority
                   .Audit(ValidationAuthority::ContentKey{
                       "nope", Permission::kPlay})
                   .ok());
}

TEST(ValidationAuthorityTest, CheckpointRestoreRoundTrip) {
  const ConstraintSchema schema = IntervalSchema(1);
  const std::string path = TempPath(".ckpt");

  ValidationAuthority original(&schema);
  ASSERT_TRUE(original
                  .RegisterRedistribution(MakeFor(schema, "A1", "movie",
                                                  Permission::kPlay, 0, 50,
                                                  100))
                  .ok());
  ASSERT_TRUE(original
                  .RegisterRedistribution(MakeFor(schema, "B1", "song",
                                                  Permission::kCopy, 0, 50,
                                                  60))
                  .ok());
  ASSERT_TRUE(original
                  .ValidateIssue(UsageFor(schema, "U1", "movie",
                                          Permission::kPlay, 0, 10, 70))
                  ->accepted());
  ASSERT_TRUE(original
                  .ValidateIssue(UsageFor(schema, "U2", "song",
                                          Permission::kCopy, 5, 8, 20))
                  ->accepted());
  ASSERT_TRUE(original.CheckpointLogs(path).ok());

  // Fresh authority: re-register licenses, restore logs.
  ValidationAuthority restored(&schema);
  ASSERT_TRUE(restored
                  .RegisterRedistribution(MakeFor(schema, "A1", "movie",
                                                  Permission::kPlay, 0, 50,
                                                  100))
                  .ok());
  ASSERT_TRUE(restored
                  .RegisterRedistribution(MakeFor(schema, "B1", "song",
                                                  Permission::kCopy, 0, 50,
                                                  60))
                  .ok());
  ASSERT_TRUE(restored.RestoreLogs(path).ok());

  // The movie budget remembers the 70 already spent.
  const Result<OnlineDecision> over = restored.ValidateIssue(
      UsageFor(schema, "U3", "movie", Permission::kPlay, 0, 10, 40));
  ASSERT_TRUE(over.ok());
  EXPECT_FALSE(over->accepted());
  const Result<OnlineDecision> fits = restored.ValidateIssue(
      UsageFor(schema, "U4", "movie", Permission::kPlay, 0, 10, 30));
  ASSERT_TRUE(fits.ok());
  EXPECT_TRUE(fits->accepted());
  std::remove(path.c_str());
}

TEST(ValidationAuthorityTest, RestoreFailsForUnregisteredContent) {
  const ConstraintSchema schema = IntervalSchema(1);
  const std::string path = TempPath(".ckpt");
  {
    ValidationAuthority original(&schema);
    ASSERT_TRUE(original
                    .RegisterRedistribution(MakeFor(schema, "A1", "movie",
                                                    Permission::kPlay, 0, 50,
                                                    100))
                    .ok());
    ASSERT_TRUE(original
                    .ValidateIssue(UsageFor(schema, "U1", "movie",
                                            Permission::kPlay, 0, 10, 10))
                    ->accepted());
    ASSERT_TRUE(original.CheckpointLogs(path).ok());
  }
  ValidationAuthority empty(&schema);
  EXPECT_EQ(empty.RestoreLogs(path).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(ValidationAuthorityTest, ClosePeriodSettlesAndResets) {
  const ConstraintSchema schema = IntervalSchema(1);
  ValidationAuthority authority(&schema);
  ASSERT_TRUE(authority
                  .RegisterRedistribution(MakeFor(schema, "A1", "movie",
                                                  Permission::kPlay, 0, 50,
                                                  100))
                  .ok());
  ASSERT_TRUE(authority
                  .ValidateIssue(UsageFor(schema, "U1", "movie",
                                          Permission::kPlay, 0, 10, 90))
                  ->accepted());
  // 10 left this period.
  EXPECT_FALSE(authority
                   .ValidateIssue(UsageFor(schema, "U2", "movie",
                                           Permission::kPlay, 0, 10, 20))
                   ->accepted());

  const ValidationAuthority::ContentKey key{"movie", Permission::kPlay};
  const Result<ValidationAuthority::PeriodClose> close =
      authority.ClosePeriod(key);
  ASSERT_TRUE(close.ok());
  EXPECT_TRUE(close->audit.result.report.all_valid());
  ASSERT_TRUE(close->settled);
  EXPECT_EQ(close->settlement.charged[0], 90);
  EXPECT_EQ(close->settlement.remaining[0], 10);
  EXPECT_EQ(close->archived_log.size(), 1u);

  // New period: full budget again, empty live log.
  EXPECT_EQ(authority.LogFor(key)->size(), 0u);
  EXPECT_TRUE(authority
                  .ValidateIssue(UsageFor(schema, "U3", "movie",
                                          Permission::kPlay, 0, 10, 100))
                  ->accepted());
}

// Builds a GLAUTH1 log checkpoint holding one domain with one record —
// used to inject an over-budget (rogue) history that online validation
// would never admit.
void WriteLogCheckpoint(const std::string& path, const std::string& content,
                        LicenseSet set, int64_t count) {
  std::ofstream out(path, std::ios::binary);
  out.write("GLAUTH1\0", 8);
  const uint32_t domains = 1;
  out.write(reinterpret_cast<const char*>(&domains), sizeof(domains));
  const uint32_t name_size = static_cast<uint32_t>(content.size());
  out.write(reinterpret_cast<const char*>(&name_size), sizeof(name_size));
  out.write(content.data(), name_size);
  const int32_t permission = 0;  // kPlay.
  out.write(reinterpret_cast<const char*>(&permission), sizeof(permission));
  const uint64_t records = 1;
  out.write(reinterpret_cast<const char*>(&records), sizeof(records));
  out.write(reinterpret_cast<const char*>(&set), sizeof(set));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  const uint32_t id_size = 1;
  out.write(reinterpret_cast<const char*>(&id_size), sizeof(id_size));
  out.write("X", 1);
}

TEST(ValidationAuthorityTest, ClosePeriodWithViolationsSkipsSettlement) {
  const ConstraintSchema schema = IntervalSchema(1);
  ValidationAuthority authority(&schema);
  ASSERT_TRUE(authority
                  .RegisterRedistribution(MakeFor(schema, "A1", "movie",
                                                  Permission::kPlay, 0, 50,
                                                  100))
                  .ok());
  // Inject a rogue 150-count history against the 100 budget.
  const std::string path = TempPath(".ckpt");
  WriteLogCheckpoint(path, "movie", testing::Mask(0b1), 150);
  ASSERT_TRUE(authority.RestoreLogs(path).ok());

  const ValidationAuthority::ContentKey key{"movie", Permission::kPlay};
  const Result<ValidationAuthority::PeriodClose> close =
      authority.ClosePeriod(key);
  ASSERT_TRUE(close.ok());
  EXPECT_FALSE(close->audit.result.report.all_valid());
  EXPECT_FALSE(close->settled);
  ASSERT_EQ(close->audit.result.report.violations.size(), 1u);
  EXPECT_EQ(close->audit.result.report.violations[0].lhs, 150);
  // The period still reset.
  EXPECT_EQ(authority.LogFor(key)->size(), 0u);
  std::remove(path.c_str());

  EXPECT_FALSE(authority
                   .ClosePeriod(ValidationAuthority::ContentKey{
                       "nope", Permission::kPlay})
                   .ok());
}

TEST(ValidationAuthorityTest, FullCheckpointRestoreRoundTrip) {
  const ConstraintSchema schema = IntervalSchema(1);
  const std::string path = TempPath(".full");

  ValidationAuthority original(&schema);
  ASSERT_TRUE(original
                  .RegisterRedistribution(MakeFor(schema, "A1", "movie",
                                                  Permission::kPlay, 0, 50,
                                                  100))
                  .ok());
  ASSERT_TRUE(original
                  .RegisterRedistribution(MakeFor(schema, "A2", "movie",
                                                  Permission::kPlay, 30, 90,
                                                  200))
                  .ok());
  ASSERT_TRUE(original
                  .RegisterRedistribution(MakeFor(schema, "B1", "song",
                                                  Permission::kCopy, 0, 10,
                                                  60))
                  .ok());
  ASSERT_TRUE(original
                  .ValidateIssue(UsageFor(schema, "U1", "movie",
                                          Permission::kPlay, 35, 45, 70))
                  ->accepted());
  ASSERT_TRUE(original.CheckpointFull(path).ok());

  // No re-registration needed.
  ValidationAuthority restored(&schema);
  ASSERT_TRUE(restored.RestoreFull(path).ok());
  EXPECT_EQ(restored.domain_count(), 2);
  const Result<const LicenseCatalog*> licenses = restored.LicensesFor(
      ValidationAuthority::ContentKey{"movie", Permission::kPlay});
  ASSERT_TRUE(licenses.ok());
  EXPECT_EQ((*licenses)->size(), 2);
  const Result<LogStore> log = restored.LogFor(
      ValidationAuthority::ContentKey{"movie", Permission::kPlay});
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->size(), 1u);

  // Budget state carried over: U1's 70 counts hit both A1 and A2.
  const Result<std::vector<ValidationAuthority::ContentAudit>> audits =
      restored.AuditAll();
  ASSERT_TRUE(audits.ok());
  for (const auto& audit : *audits) {
    EXPECT_TRUE(audit.result.report.all_valid());
  }
  const Result<OnlineDecision> over = restored.ValidateIssue(
      UsageFor(schema, "U2", "movie", Permission::kPlay, 35, 45, 250));
  ASSERT_TRUE(over.ok());
  EXPECT_FALSE(over->accepted());
  std::remove(path.c_str());
}

TEST(ValidationAuthorityTest, RestoreFullRequiresEmptyAuthority) {
  const ConstraintSchema schema = IntervalSchema(1);
  const std::string path = TempPath(".full");
  {
    ValidationAuthority original(&schema);
    ASSERT_TRUE(original
                    .RegisterRedistribution(MakeFor(schema, "A1", "movie",
                                                    Permission::kPlay, 0, 50,
                                                    100))
                    .ok());
    ASSERT_TRUE(original.CheckpointFull(path).ok());
  }
  ValidationAuthority busy(&schema);
  ASSERT_TRUE(busy.RegisterRedistribution(MakeFor(schema, "X", "other",
                                                  Permission::kPlay, 0, 1,
                                                  5))
                  .ok());
  EXPECT_EQ(busy.RestoreFull(path).code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(ValidationAuthorityTest, RestoreFullRejectsTruncation) {
  const ConstraintSchema schema = IntervalSchema(1);
  const std::string path = TempPath(".full");
  {
    ValidationAuthority original(&schema);
    ASSERT_TRUE(original
                    .RegisterRedistribution(MakeFor(schema, "A1", "movie",
                                                    Permission::kPlay, 0, 50,
                                                    100))
                    .ok());
    ASSERT_TRUE(original
                    .ValidateIssue(UsageFor(schema, "U1", "movie",
                                            Permission::kPlay, 0, 10, 10))
                    ->accepted());
    ASSERT_TRUE(original.CheckpointFull(path).ok());
  }
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (size_t cut = 9; cut + 1 < bytes.size(); cut += 11) {
    const std::string truncated_path = path + ".cut";
    {
      std::ofstream out(truncated_path, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    ValidationAuthority fresh(&schema);
    EXPECT_FALSE(fresh.RestoreFull(truncated_path).ok()) << "cut=" << cut;
    EXPECT_EQ(fresh.domain_count(), 0) << "cut=" << cut;
    std::remove(truncated_path.c_str());
  }
  std::remove(path.c_str());
}

TEST(ValidationAuthorityTest, RestoreRejectsGarbage) {
  const ConstraintSchema schema = IntervalSchema(1);
  ValidationAuthority authority(&schema);
  const std::string path = TempPath(".ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOT A CHECKPOINT";
  }
  EXPECT_EQ(authority.RestoreLogs(path).code(), StatusCode::kParseError);
  EXPECT_EQ(authority.RestoreLogs("/nonexistent/x.ckpt").code(),
            StatusCode::kIoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace geolic
