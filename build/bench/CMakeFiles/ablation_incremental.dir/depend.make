# Empty dependencies file for ablation_incremental.
# This may be replaced when dependencies are built.
