# Empty compiler generated dependencies file for ablation_components.
# This may be replaced when dependencies are built.
