file(REMOVE_RECURSE
  "CMakeFiles/ablation_components.dir/ablation_components.cc.o"
  "CMakeFiles/ablation_components.dir/ablation_components.cc.o.d"
  "ablation_components"
  "ablation_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
