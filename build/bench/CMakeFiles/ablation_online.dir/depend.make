# Empty dependencies file for ablation_online.
# This may be replaced when dependencies are built.
