file(REMOVE_RECURSE
  "CMakeFiles/ablation_online.dir/ablation_online.cc.o"
  "CMakeFiles/ablation_online.dir/ablation_online.cc.o.d"
  "ablation_online"
  "ablation_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
