file(REMOVE_RECURSE
  "CMakeFiles/fig6_groups.dir/fig6_groups.cc.o"
  "CMakeFiles/fig6_groups.dir/fig6_groups.cc.o.d"
  "fig6_groups"
  "fig6_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
