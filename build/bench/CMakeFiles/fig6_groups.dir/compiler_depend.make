# Empty compiler generated dependencies file for fig6_groups.
# This may be replaced when dependencies are built.
