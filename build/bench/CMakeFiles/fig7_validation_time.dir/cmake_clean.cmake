file(REMOVE_RECURSE
  "CMakeFiles/fig7_validation_time.dir/fig7_validation_time.cc.o"
  "CMakeFiles/fig7_validation_time.dir/fig7_validation_time.cc.o.d"
  "fig7_validation_time"
  "fig7_validation_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_validation_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
