# Empty dependencies file for fig7_validation_time.
# This may be replaced when dependencies are built.
