# Empty compiler generated dependencies file for fig10_storage.
# This may be replaced when dependencies are built.
