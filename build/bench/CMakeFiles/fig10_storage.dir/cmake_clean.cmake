file(REMOVE_RECURSE
  "CMakeFiles/fig10_storage.dir/fig10_storage.cc.o"
  "CMakeFiles/fig10_storage.dir/fig10_storage.cc.o.d"
  "fig10_storage"
  "fig10_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
