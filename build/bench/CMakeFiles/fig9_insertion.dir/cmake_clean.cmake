file(REMOVE_RECURSE
  "CMakeFiles/fig9_insertion.dir/fig9_insertion.cc.o"
  "CMakeFiles/fig9_insertion.dir/fig9_insertion.cc.o.d"
  "fig9_insertion"
  "fig9_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
