# Empty compiler generated dependencies file for fig9_insertion.
# This may be replaced when dependencies are built.
