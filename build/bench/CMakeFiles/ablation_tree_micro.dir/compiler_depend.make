# Empty compiler generated dependencies file for ablation_tree_micro.
# This may be replaced when dependencies are built.
