file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree_micro.dir/ablation_tree_micro.cc.o"
  "CMakeFiles/ablation_tree_micro.dir/ablation_tree_micro.cc.o.d"
  "ablation_tree_micro"
  "ablation_tree_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
