# Empty dependencies file for ablation_service_concurrency.
# This may be replaced when dependencies are built.
