file(REMOVE_RECURSE
  "CMakeFiles/ablation_service_concurrency.dir/ablation_service_concurrency.cc.o"
  "CMakeFiles/ablation_service_concurrency.dir/ablation_service_concurrency.cc.o.d"
  "ablation_service_concurrency"
  "ablation_service_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_service_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
