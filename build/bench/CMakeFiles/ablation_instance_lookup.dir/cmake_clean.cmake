file(REMOVE_RECURSE
  "CMakeFiles/ablation_instance_lookup.dir/ablation_instance_lookup.cc.o"
  "CMakeFiles/ablation_instance_lookup.dir/ablation_instance_lookup.cc.o.d"
  "ablation_instance_lookup"
  "ablation_instance_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_instance_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
