# Empty compiler generated dependencies file for ablation_instance_lookup.
# This may be replaced when dependencies are built.
