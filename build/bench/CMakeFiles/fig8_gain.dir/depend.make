# Empty dependencies file for fig8_gain.
# This may be replaced when dependencies are built.
