file(REMOVE_RECURSE
  "CMakeFiles/fig8_gain.dir/fig8_gain.cc.o"
  "CMakeFiles/fig8_gain.dir/fig8_gain.cc.o.d"
  "fig8_gain"
  "fig8_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
