# Empty dependencies file for ablation_dynamic_grouping.
# This may be replaced when dependencies are built.
