file(REMOVE_RECURSE
  "CMakeFiles/ablation_dynamic_grouping.dir/ablation_dynamic_grouping.cc.o"
  "CMakeFiles/ablation_dynamic_grouping.dir/ablation_dynamic_grouping.cc.o.d"
  "ablation_dynamic_grouping"
  "ablation_dynamic_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dynamic_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
