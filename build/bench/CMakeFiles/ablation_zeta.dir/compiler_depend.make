# Empty compiler generated dependencies file for ablation_zeta.
# This may be replaced when dependencies are built.
