file(REMOVE_RECURSE
  "CMakeFiles/ablation_zeta.dir/ablation_zeta.cc.o"
  "CMakeFiles/ablation_zeta.dir/ablation_zeta.cc.o.d"
  "ablation_zeta"
  "ablation_zeta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zeta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
