file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallel.dir/ablation_parallel.cc.o"
  "CMakeFiles/ablation_parallel.dir/ablation_parallel.cc.o.d"
  "ablation_parallel"
  "ablation_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
