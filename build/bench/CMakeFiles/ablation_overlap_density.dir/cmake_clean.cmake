file(REMOVE_RECURSE
  "CMakeFiles/ablation_overlap_density.dir/ablation_overlap_density.cc.o"
  "CMakeFiles/ablation_overlap_density.dir/ablation_overlap_density.cc.o.d"
  "ablation_overlap_density"
  "ablation_overlap_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overlap_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
