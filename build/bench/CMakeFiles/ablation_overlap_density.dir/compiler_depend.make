# Empty compiler generated dependencies file for ablation_overlap_density.
# This may be replaced when dependencies are built.
