file(REMOVE_RECURSE
  "CMakeFiles/ablation_frequency_order.dir/ablation_frequency_order.cc.o"
  "CMakeFiles/ablation_frequency_order.dir/ablation_frequency_order.cc.o.d"
  "ablation_frequency_order"
  "ablation_frequency_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frequency_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
