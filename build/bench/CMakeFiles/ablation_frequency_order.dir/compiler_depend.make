# Empty compiler generated dependencies file for ablation_frequency_order.
# This may be replaced when dependencies are built.
