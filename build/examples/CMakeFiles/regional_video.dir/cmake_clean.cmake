file(REMOVE_RECURSE
  "CMakeFiles/regional_video.dir/regional_video.cpp.o"
  "CMakeFiles/regional_video.dir/regional_video.cpp.o.d"
  "regional_video"
  "regional_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regional_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
