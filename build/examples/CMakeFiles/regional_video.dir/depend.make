# Empty dependencies file for regional_video.
# This may be replaced when dependencies are built.
