file(REMOVE_RECURSE
  "CMakeFiles/drm_simulator.dir/drm_simulator.cpp.o"
  "CMakeFiles/drm_simulator.dir/drm_simulator.cpp.o.d"
  "drm_simulator"
  "drm_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drm_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
