# Empty compiler generated dependencies file for drm_simulator.
# This may be replaced when dependencies are built.
