# Empty compiler generated dependencies file for music_store.
# This may be replaced when dependencies are built.
