file(REMOVE_RECURSE
  "CMakeFiles/music_store.dir/music_store.cpp.o"
  "CMakeFiles/music_store.dir/music_store.cpp.o.d"
  "music_store"
  "music_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
