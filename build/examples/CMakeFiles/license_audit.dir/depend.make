# Empty dependencies file for license_audit.
# This may be replaced when dependencies are built.
