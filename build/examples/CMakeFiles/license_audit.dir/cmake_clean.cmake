file(REMOVE_RECURSE
  "CMakeFiles/license_audit.dir/license_audit.cpp.o"
  "CMakeFiles/license_audit.dir/license_audit.cpp.o.d"
  "license_audit"
  "license_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/license_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
