# Empty dependencies file for settlement_report.
# This may be replaced when dependencies are built.
