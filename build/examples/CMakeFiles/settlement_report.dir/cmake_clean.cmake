file(REMOVE_RECURSE
  "CMakeFiles/settlement_report.dir/settlement_report.cpp.o"
  "CMakeFiles/settlement_report.dir/settlement_report.cpp.o.d"
  "settlement_report"
  "settlement_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/settlement_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
