# Empty compiler generated dependencies file for settlement_report.
# This may be replaced when dependencies are built.
