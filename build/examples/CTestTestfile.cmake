# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_music_store "/root/repo/build/examples/music_store")
set_tests_properties(example_music_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_regional_video "/root/repo/build/examples/regional_video")
set_tests_properties(example_regional_video PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_license_audit "/root/repo/build/examples/license_audit")
set_tests_properties(example_license_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_drm_simulator "/root/repo/build/examples/drm_simulator")
set_tests_properties(example_drm_simulator PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_settlement_report "/root/repo/build/examples/settlement_report")
set_tests_properties(example_settlement_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
