# Empty compiler generated dependencies file for geolic_util.
# This may be replaced when dependencies are built.
