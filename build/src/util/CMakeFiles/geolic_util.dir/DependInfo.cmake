
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bits.cc" "src/util/CMakeFiles/geolic_util.dir/bits.cc.o" "gcc" "src/util/CMakeFiles/geolic_util.dir/bits.cc.o.d"
  "/root/repo/src/util/date.cc" "src/util/CMakeFiles/geolic_util.dir/date.cc.o" "gcc" "src/util/CMakeFiles/geolic_util.dir/date.cc.o.d"
  "/root/repo/src/util/json_writer.cc" "src/util/CMakeFiles/geolic_util.dir/json_writer.cc.o" "gcc" "src/util/CMakeFiles/geolic_util.dir/json_writer.cc.o.d"
  "/root/repo/src/util/metrics.cc" "src/util/CMakeFiles/geolic_util.dir/metrics.cc.o" "gcc" "src/util/CMakeFiles/geolic_util.dir/metrics.cc.o.d"
  "/root/repo/src/util/random.cc" "src/util/CMakeFiles/geolic_util.dir/random.cc.o" "gcc" "src/util/CMakeFiles/geolic_util.dir/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/geolic_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/geolic_util.dir/status.cc.o.d"
  "/root/repo/src/util/str_util.cc" "src/util/CMakeFiles/geolic_util.dir/str_util.cc.o" "gcc" "src/util/CMakeFiles/geolic_util.dir/str_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/util/CMakeFiles/geolic_util.dir/thread_pool.cc.o" "gcc" "src/util/CMakeFiles/geolic_util.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
