file(REMOVE_RECURSE
  "libgeolic_util.a"
)
