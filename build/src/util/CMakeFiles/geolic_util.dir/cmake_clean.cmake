file(REMOVE_RECURSE
  "CMakeFiles/geolic_util.dir/bits.cc.o"
  "CMakeFiles/geolic_util.dir/bits.cc.o.d"
  "CMakeFiles/geolic_util.dir/date.cc.o"
  "CMakeFiles/geolic_util.dir/date.cc.o.d"
  "CMakeFiles/geolic_util.dir/json_writer.cc.o"
  "CMakeFiles/geolic_util.dir/json_writer.cc.o.d"
  "CMakeFiles/geolic_util.dir/metrics.cc.o"
  "CMakeFiles/geolic_util.dir/metrics.cc.o.d"
  "CMakeFiles/geolic_util.dir/random.cc.o"
  "CMakeFiles/geolic_util.dir/random.cc.o.d"
  "CMakeFiles/geolic_util.dir/status.cc.o"
  "CMakeFiles/geolic_util.dir/status.cc.o.d"
  "CMakeFiles/geolic_util.dir/str_util.cc.o"
  "CMakeFiles/geolic_util.dir/str_util.cc.o.d"
  "CMakeFiles/geolic_util.dir/thread_pool.cc.o"
  "CMakeFiles/geolic_util.dir/thread_pool.cc.o.d"
  "libgeolic_util.a"
  "libgeolic_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolic_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
