
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment.cc" "src/core/CMakeFiles/geolic_core.dir/assignment.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/assignment.cc.o.d"
  "/root/repo/src/core/capacity.cc" "src/core/CMakeFiles/geolic_core.dir/capacity.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/capacity.cc.o.d"
  "/root/repo/src/core/dynamic_grouping.cc" "src/core/CMakeFiles/geolic_core.dir/dynamic_grouping.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/dynamic_grouping.cc.o.d"
  "/root/repo/src/core/gain.cc" "src/core/CMakeFiles/geolic_core.dir/gain.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/gain.cc.o.d"
  "/root/repo/src/core/greedy_validator.cc" "src/core/CMakeFiles/geolic_core.dir/greedy_validator.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/greedy_validator.cc.o.d"
  "/root/repo/src/core/grouped_validator.cc" "src/core/CMakeFiles/geolic_core.dir/grouped_validator.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/grouped_validator.cc.o.d"
  "/root/repo/src/core/grouping.cc" "src/core/CMakeFiles/geolic_core.dir/grouping.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/grouping.cc.o.d"
  "/root/repo/src/core/incremental_auditor.cc" "src/core/CMakeFiles/geolic_core.dir/incremental_auditor.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/incremental_auditor.cc.o.d"
  "/root/repo/src/core/instance_validator.cc" "src/core/CMakeFiles/geolic_core.dir/instance_validator.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/instance_validator.cc.o.d"
  "/root/repo/src/core/online_validator.cc" "src/core/CMakeFiles/geolic_core.dir/online_validator.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/online_validator.cc.o.d"
  "/root/repo/src/core/overlap_graph.cc" "src/core/CMakeFiles/geolic_core.dir/overlap_graph.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/overlap_graph.cc.o.d"
  "/root/repo/src/core/parallel_validator.cc" "src/core/CMakeFiles/geolic_core.dir/parallel_validator.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/parallel_validator.cc.o.d"
  "/root/repo/src/core/tree_division.cc" "src/core/CMakeFiles/geolic_core.dir/tree_division.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/tree_division.cc.o.d"
  "/root/repo/src/core/validate_facade.cc" "src/core/CMakeFiles/geolic_core.dir/validate_facade.cc.o" "gcc" "src/core/CMakeFiles/geolic_core.dir/validate_facade.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/geolic_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/geolic_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/licensing/CMakeFiles/geolic_licensing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/geolic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/geolic_validation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
