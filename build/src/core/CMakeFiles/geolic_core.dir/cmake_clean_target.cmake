file(REMOVE_RECURSE
  "libgeolic_core.a"
)
