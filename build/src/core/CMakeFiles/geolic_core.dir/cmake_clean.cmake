file(REMOVE_RECURSE
  "CMakeFiles/geolic_core.dir/assignment.cc.o"
  "CMakeFiles/geolic_core.dir/assignment.cc.o.d"
  "CMakeFiles/geolic_core.dir/capacity.cc.o"
  "CMakeFiles/geolic_core.dir/capacity.cc.o.d"
  "CMakeFiles/geolic_core.dir/dynamic_grouping.cc.o"
  "CMakeFiles/geolic_core.dir/dynamic_grouping.cc.o.d"
  "CMakeFiles/geolic_core.dir/gain.cc.o"
  "CMakeFiles/geolic_core.dir/gain.cc.o.d"
  "CMakeFiles/geolic_core.dir/greedy_validator.cc.o"
  "CMakeFiles/geolic_core.dir/greedy_validator.cc.o.d"
  "CMakeFiles/geolic_core.dir/grouped_validator.cc.o"
  "CMakeFiles/geolic_core.dir/grouped_validator.cc.o.d"
  "CMakeFiles/geolic_core.dir/grouping.cc.o"
  "CMakeFiles/geolic_core.dir/grouping.cc.o.d"
  "CMakeFiles/geolic_core.dir/incremental_auditor.cc.o"
  "CMakeFiles/geolic_core.dir/incremental_auditor.cc.o.d"
  "CMakeFiles/geolic_core.dir/instance_validator.cc.o"
  "CMakeFiles/geolic_core.dir/instance_validator.cc.o.d"
  "CMakeFiles/geolic_core.dir/online_validator.cc.o"
  "CMakeFiles/geolic_core.dir/online_validator.cc.o.d"
  "CMakeFiles/geolic_core.dir/overlap_graph.cc.o"
  "CMakeFiles/geolic_core.dir/overlap_graph.cc.o.d"
  "CMakeFiles/geolic_core.dir/parallel_validator.cc.o"
  "CMakeFiles/geolic_core.dir/parallel_validator.cc.o.d"
  "CMakeFiles/geolic_core.dir/tree_division.cc.o"
  "CMakeFiles/geolic_core.dir/tree_division.cc.o.d"
  "CMakeFiles/geolic_core.dir/validate_facade.cc.o"
  "CMakeFiles/geolic_core.dir/validate_facade.cc.o.d"
  "libgeolic_core.a"
  "libgeolic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
