# Empty dependencies file for geolic_core.
# This may be replaced when dependencies are built.
