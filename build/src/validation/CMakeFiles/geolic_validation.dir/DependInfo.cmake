
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/validation/exhaustive_validator.cc" "src/validation/CMakeFiles/geolic_validation.dir/exhaustive_validator.cc.o" "gcc" "src/validation/CMakeFiles/geolic_validation.dir/exhaustive_validator.cc.o.d"
  "/root/repo/src/validation/frequency_order.cc" "src/validation/CMakeFiles/geolic_validation.dir/frequency_order.cc.o" "gcc" "src/validation/CMakeFiles/geolic_validation.dir/frequency_order.cc.o.d"
  "/root/repo/src/validation/log_store.cc" "src/validation/CMakeFiles/geolic_validation.dir/log_store.cc.o" "gcc" "src/validation/CMakeFiles/geolic_validation.dir/log_store.cc.o.d"
  "/root/repo/src/validation/report_json.cc" "src/validation/CMakeFiles/geolic_validation.dir/report_json.cc.o" "gcc" "src/validation/CMakeFiles/geolic_validation.dir/report_json.cc.o.d"
  "/root/repo/src/validation/tree_serialization.cc" "src/validation/CMakeFiles/geolic_validation.dir/tree_serialization.cc.o" "gcc" "src/validation/CMakeFiles/geolic_validation.dir/tree_serialization.cc.o.d"
  "/root/repo/src/validation/validate.cc" "src/validation/CMakeFiles/geolic_validation.dir/validate.cc.o" "gcc" "src/validation/CMakeFiles/geolic_validation.dir/validate.cc.o.d"
  "/root/repo/src/validation/validation_report.cc" "src/validation/CMakeFiles/geolic_validation.dir/validation_report.cc.o" "gcc" "src/validation/CMakeFiles/geolic_validation.dir/validation_report.cc.o.d"
  "/root/repo/src/validation/validation_tree.cc" "src/validation/CMakeFiles/geolic_validation.dir/validation_tree.cc.o" "gcc" "src/validation/CMakeFiles/geolic_validation.dir/validation_tree.cc.o.d"
  "/root/repo/src/validation/zeta_validator.cc" "src/validation/CMakeFiles/geolic_validation.dir/zeta_validator.cc.o" "gcc" "src/validation/CMakeFiles/geolic_validation.dir/zeta_validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/geolic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
