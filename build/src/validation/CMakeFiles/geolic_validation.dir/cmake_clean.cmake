file(REMOVE_RECURSE
  "CMakeFiles/geolic_validation.dir/exhaustive_validator.cc.o"
  "CMakeFiles/geolic_validation.dir/exhaustive_validator.cc.o.d"
  "CMakeFiles/geolic_validation.dir/frequency_order.cc.o"
  "CMakeFiles/geolic_validation.dir/frequency_order.cc.o.d"
  "CMakeFiles/geolic_validation.dir/log_store.cc.o"
  "CMakeFiles/geolic_validation.dir/log_store.cc.o.d"
  "CMakeFiles/geolic_validation.dir/report_json.cc.o"
  "CMakeFiles/geolic_validation.dir/report_json.cc.o.d"
  "CMakeFiles/geolic_validation.dir/tree_serialization.cc.o"
  "CMakeFiles/geolic_validation.dir/tree_serialization.cc.o.d"
  "CMakeFiles/geolic_validation.dir/validate.cc.o"
  "CMakeFiles/geolic_validation.dir/validate.cc.o.d"
  "CMakeFiles/geolic_validation.dir/validation_report.cc.o"
  "CMakeFiles/geolic_validation.dir/validation_report.cc.o.d"
  "CMakeFiles/geolic_validation.dir/validation_tree.cc.o"
  "CMakeFiles/geolic_validation.dir/validation_tree.cc.o.d"
  "CMakeFiles/geolic_validation.dir/zeta_validator.cc.o"
  "CMakeFiles/geolic_validation.dir/zeta_validator.cc.o.d"
  "libgeolic_validation.a"
  "libgeolic_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolic_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
