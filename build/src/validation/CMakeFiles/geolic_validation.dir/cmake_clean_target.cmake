file(REMOVE_RECURSE
  "libgeolic_validation.a"
)
