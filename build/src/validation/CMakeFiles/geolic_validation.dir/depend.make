# Empty dependencies file for geolic_validation.
# This may be replaced when dependencies are built.
