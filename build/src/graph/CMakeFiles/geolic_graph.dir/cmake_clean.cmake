file(REMOVE_RECURSE
  "CMakeFiles/geolic_graph.dir/adjacency_matrix.cc.o"
  "CMakeFiles/geolic_graph.dir/adjacency_matrix.cc.o.d"
  "CMakeFiles/geolic_graph.dir/connected_components.cc.o"
  "CMakeFiles/geolic_graph.dir/connected_components.cc.o.d"
  "CMakeFiles/geolic_graph.dir/max_flow.cc.o"
  "CMakeFiles/geolic_graph.dir/max_flow.cc.o.d"
  "libgeolic_graph.a"
  "libgeolic_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolic_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
