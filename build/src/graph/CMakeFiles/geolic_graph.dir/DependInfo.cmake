
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/adjacency_matrix.cc" "src/graph/CMakeFiles/geolic_graph.dir/adjacency_matrix.cc.o" "gcc" "src/graph/CMakeFiles/geolic_graph.dir/adjacency_matrix.cc.o.d"
  "/root/repo/src/graph/connected_components.cc" "src/graph/CMakeFiles/geolic_graph.dir/connected_components.cc.o" "gcc" "src/graph/CMakeFiles/geolic_graph.dir/connected_components.cc.o.d"
  "/root/repo/src/graph/max_flow.cc" "src/graph/CMakeFiles/geolic_graph.dir/max_flow.cc.o" "gcc" "src/graph/CMakeFiles/geolic_graph.dir/max_flow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/geolic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
