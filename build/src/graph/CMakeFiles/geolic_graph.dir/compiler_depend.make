# Empty compiler generated dependencies file for geolic_graph.
# This may be replaced when dependencies are built.
