file(REMOVE_RECURSE
  "libgeolic_graph.a"
)
