
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/category_set.cc" "src/geometry/CMakeFiles/geolic_geometry.dir/category_set.cc.o" "gcc" "src/geometry/CMakeFiles/geolic_geometry.dir/category_set.cc.o.d"
  "/root/repo/src/geometry/constraint_range.cc" "src/geometry/CMakeFiles/geolic_geometry.dir/constraint_range.cc.o" "gcc" "src/geometry/CMakeFiles/geolic_geometry.dir/constraint_range.cc.o.d"
  "/root/repo/src/geometry/hyper_rect.cc" "src/geometry/CMakeFiles/geolic_geometry.dir/hyper_rect.cc.o" "gcc" "src/geometry/CMakeFiles/geolic_geometry.dir/hyper_rect.cc.o.d"
  "/root/repo/src/geometry/interval.cc" "src/geometry/CMakeFiles/geolic_geometry.dir/interval.cc.o" "gcc" "src/geometry/CMakeFiles/geolic_geometry.dir/interval.cc.o.d"
  "/root/repo/src/geometry/multi_interval.cc" "src/geometry/CMakeFiles/geolic_geometry.dir/multi_interval.cc.o" "gcc" "src/geometry/CMakeFiles/geolic_geometry.dir/multi_interval.cc.o.d"
  "/root/repo/src/geometry/rtree.cc" "src/geometry/CMakeFiles/geolic_geometry.dir/rtree.cc.o" "gcc" "src/geometry/CMakeFiles/geolic_geometry.dir/rtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/geolic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
