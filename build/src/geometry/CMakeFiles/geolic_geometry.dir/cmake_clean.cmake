file(REMOVE_RECURSE
  "CMakeFiles/geolic_geometry.dir/category_set.cc.o"
  "CMakeFiles/geolic_geometry.dir/category_set.cc.o.d"
  "CMakeFiles/geolic_geometry.dir/constraint_range.cc.o"
  "CMakeFiles/geolic_geometry.dir/constraint_range.cc.o.d"
  "CMakeFiles/geolic_geometry.dir/hyper_rect.cc.o"
  "CMakeFiles/geolic_geometry.dir/hyper_rect.cc.o.d"
  "CMakeFiles/geolic_geometry.dir/interval.cc.o"
  "CMakeFiles/geolic_geometry.dir/interval.cc.o.d"
  "CMakeFiles/geolic_geometry.dir/multi_interval.cc.o"
  "CMakeFiles/geolic_geometry.dir/multi_interval.cc.o.d"
  "CMakeFiles/geolic_geometry.dir/rtree.cc.o"
  "CMakeFiles/geolic_geometry.dir/rtree.cc.o.d"
  "libgeolic_geometry.a"
  "libgeolic_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolic_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
