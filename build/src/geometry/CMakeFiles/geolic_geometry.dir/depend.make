# Empty dependencies file for geolic_geometry.
# This may be replaced when dependencies are built.
