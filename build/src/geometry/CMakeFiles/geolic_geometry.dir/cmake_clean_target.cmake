file(REMOVE_RECURSE
  "libgeolic_geometry.a"
)
