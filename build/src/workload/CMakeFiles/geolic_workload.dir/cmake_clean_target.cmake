file(REMOVE_RECURSE
  "libgeolic_workload.a"
)
