file(REMOVE_RECURSE
  "CMakeFiles/geolic_workload.dir/stats.cc.o"
  "CMakeFiles/geolic_workload.dir/stats.cc.o.d"
  "CMakeFiles/geolic_workload.dir/workload.cc.o"
  "CMakeFiles/geolic_workload.dir/workload.cc.o.d"
  "libgeolic_workload.a"
  "libgeolic_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolic_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
