# Empty compiler generated dependencies file for geolic_workload.
# This may be replaced when dependencies are built.
