# Empty dependencies file for geolic_service.
# This may be replaced when dependencies are built.
