file(REMOVE_RECURSE
  "libgeolic_service.a"
)
