file(REMOVE_RECURSE
  "CMakeFiles/geolic_service.dir/issuance_service.cc.o"
  "CMakeFiles/geolic_service.dir/issuance_service.cc.o.d"
  "libgeolic_service.a"
  "libgeolic_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolic_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
