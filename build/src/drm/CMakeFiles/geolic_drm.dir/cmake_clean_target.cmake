file(REMOVE_RECURSE
  "libgeolic_drm.a"
)
