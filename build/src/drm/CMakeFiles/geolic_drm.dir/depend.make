# Empty dependencies file for geolic_drm.
# This may be replaced when dependencies are built.
