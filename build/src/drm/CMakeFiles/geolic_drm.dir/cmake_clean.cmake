file(REMOVE_RECURSE
  "CMakeFiles/geolic_drm.dir/distribution_network.cc.o"
  "CMakeFiles/geolic_drm.dir/distribution_network.cc.o.d"
  "CMakeFiles/geolic_drm.dir/validation_authority.cc.o"
  "CMakeFiles/geolic_drm.dir/validation_authority.cc.o.d"
  "libgeolic_drm.a"
  "libgeolic_drm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolic_drm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
