# CMake generated Testfile for 
# Source directory: /root/repo/src/drm
# Build directory: /root/repo/build/src/drm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
