file(REMOVE_RECURSE
  "libgeolic_licensing.a"
)
