# Empty dependencies file for geolic_licensing.
# This may be replaced when dependencies are built.
