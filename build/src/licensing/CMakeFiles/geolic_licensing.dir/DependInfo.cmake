
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/licensing/constraint_schema.cc" "src/licensing/CMakeFiles/geolic_licensing.dir/constraint_schema.cc.o" "gcc" "src/licensing/CMakeFiles/geolic_licensing.dir/constraint_schema.cc.o.d"
  "/root/repo/src/licensing/license.cc" "src/licensing/CMakeFiles/geolic_licensing.dir/license.cc.o" "gcc" "src/licensing/CMakeFiles/geolic_licensing.dir/license.cc.o.d"
  "/root/repo/src/licensing/license_parser.cc" "src/licensing/CMakeFiles/geolic_licensing.dir/license_parser.cc.o" "gcc" "src/licensing/CMakeFiles/geolic_licensing.dir/license_parser.cc.o.d"
  "/root/repo/src/licensing/license_serialization.cc" "src/licensing/CMakeFiles/geolic_licensing.dir/license_serialization.cc.o" "gcc" "src/licensing/CMakeFiles/geolic_licensing.dir/license_serialization.cc.o.d"
  "/root/repo/src/licensing/license_set.cc" "src/licensing/CMakeFiles/geolic_licensing.dir/license_set.cc.o" "gcc" "src/licensing/CMakeFiles/geolic_licensing.dir/license_set.cc.o.d"
  "/root/repo/src/licensing/permission.cc" "src/licensing/CMakeFiles/geolic_licensing.dir/permission.cc.o" "gcc" "src/licensing/CMakeFiles/geolic_licensing.dir/permission.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/geolic_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/geolic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
