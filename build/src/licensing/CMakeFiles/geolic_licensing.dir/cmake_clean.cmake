file(REMOVE_RECURSE
  "CMakeFiles/geolic_licensing.dir/constraint_schema.cc.o"
  "CMakeFiles/geolic_licensing.dir/constraint_schema.cc.o.d"
  "CMakeFiles/geolic_licensing.dir/license.cc.o"
  "CMakeFiles/geolic_licensing.dir/license.cc.o.d"
  "CMakeFiles/geolic_licensing.dir/license_parser.cc.o"
  "CMakeFiles/geolic_licensing.dir/license_parser.cc.o.d"
  "CMakeFiles/geolic_licensing.dir/license_serialization.cc.o"
  "CMakeFiles/geolic_licensing.dir/license_serialization.cc.o.d"
  "CMakeFiles/geolic_licensing.dir/license_set.cc.o"
  "CMakeFiles/geolic_licensing.dir/license_set.cc.o.d"
  "CMakeFiles/geolic_licensing.dir/permission.cc.o"
  "CMakeFiles/geolic_licensing.dir/permission.cc.o.d"
  "libgeolic_licensing.a"
  "libgeolic_licensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolic_licensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
