file(REMOVE_RECURSE
  "CMakeFiles/assignment_test.dir/core/assignment_test.cc.o"
  "CMakeFiles/assignment_test.dir/core/assignment_test.cc.o.d"
  "assignment_test"
  "assignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
