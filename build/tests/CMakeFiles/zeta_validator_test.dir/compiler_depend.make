# Empty compiler generated dependencies file for zeta_validator_test.
# This may be replaced when dependencies are built.
