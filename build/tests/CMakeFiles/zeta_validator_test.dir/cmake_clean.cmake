file(REMOVE_RECURSE
  "CMakeFiles/zeta_validator_test.dir/validation/zeta_validator_test.cc.o"
  "CMakeFiles/zeta_validator_test.dir/validation/zeta_validator_test.cc.o.d"
  "zeta_validator_test"
  "zeta_validator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeta_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
