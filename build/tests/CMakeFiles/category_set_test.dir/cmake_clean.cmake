file(REMOVE_RECURSE
  "CMakeFiles/category_set_test.dir/geometry/category_set_test.cc.o"
  "CMakeFiles/category_set_test.dir/geometry/category_set_test.cc.o.d"
  "category_set_test"
  "category_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/category_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
