# Empty compiler generated dependencies file for category_set_test.
# This may be replaced when dependencies are built.
