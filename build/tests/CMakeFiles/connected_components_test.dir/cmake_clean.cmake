file(REMOVE_RECURSE
  "CMakeFiles/connected_components_test.dir/graph/connected_components_test.cc.o"
  "CMakeFiles/connected_components_test.dir/graph/connected_components_test.cc.o.d"
  "connected_components_test"
  "connected_components_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connected_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
