# Empty compiler generated dependencies file for connected_components_test.
# This may be replaced when dependencies are built.
