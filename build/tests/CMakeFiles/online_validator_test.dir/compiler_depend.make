# Empty compiler generated dependencies file for online_validator_test.
# This may be replaced when dependencies are built.
