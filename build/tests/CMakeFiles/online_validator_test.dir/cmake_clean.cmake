file(REMOVE_RECURSE
  "CMakeFiles/online_validator_test.dir/core/online_validator_test.cc.o"
  "CMakeFiles/online_validator_test.dir/core/online_validator_test.cc.o.d"
  "online_validator_test"
  "online_validator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
