file(REMOVE_RECURSE
  "CMakeFiles/issuance_service_test.dir/service/issuance_service_test.cc.o"
  "CMakeFiles/issuance_service_test.dir/service/issuance_service_test.cc.o.d"
  "issuance_service_test"
  "issuance_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/issuance_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
