# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for issuance_service_test.
