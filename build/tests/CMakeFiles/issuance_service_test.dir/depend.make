# Empty dependencies file for issuance_service_test.
# This may be replaced when dependencies are built.
