file(REMOVE_RECURSE
  "CMakeFiles/json_writer_test.dir/util/json_writer_test.cc.o"
  "CMakeFiles/json_writer_test.dir/util/json_writer_test.cc.o.d"
  "json_writer_test"
  "json_writer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/json_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
