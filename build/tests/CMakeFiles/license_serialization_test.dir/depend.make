# Empty dependencies file for license_serialization_test.
# This may be replaced when dependencies are built.
