file(REMOVE_RECURSE
  "CMakeFiles/license_serialization_test.dir/licensing/license_serialization_test.cc.o"
  "CMakeFiles/license_serialization_test.dir/licensing/license_serialization_test.cc.o.d"
  "license_serialization_test"
  "license_serialization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/license_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
