# Empty compiler generated dependencies file for mixed_dimensions_test.
# This may be replaced when dependencies are built.
