file(REMOVE_RECURSE
  "CMakeFiles/mixed_dimensions_test.dir/geometry/mixed_dimensions_test.cc.o"
  "CMakeFiles/mixed_dimensions_test.dir/geometry/mixed_dimensions_test.cc.o.d"
  "mixed_dimensions_test"
  "mixed_dimensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_dimensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
