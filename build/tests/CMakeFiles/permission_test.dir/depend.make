# Empty dependencies file for permission_test.
# This may be replaced when dependencies are built.
