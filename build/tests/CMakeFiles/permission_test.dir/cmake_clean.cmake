file(REMOVE_RECURSE
  "CMakeFiles/permission_test.dir/licensing/permission_test.cc.o"
  "CMakeFiles/permission_test.dir/licensing/permission_test.cc.o.d"
  "permission_test"
  "permission_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permission_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
