# Empty dependencies file for constraint_range_test.
# This may be replaced when dependencies are built.
