file(REMOVE_RECURSE
  "CMakeFiles/constraint_range_test.dir/geometry/constraint_range_test.cc.o"
  "CMakeFiles/constraint_range_test.dir/geometry/constraint_range_test.cc.o.d"
  "constraint_range_test"
  "constraint_range_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
