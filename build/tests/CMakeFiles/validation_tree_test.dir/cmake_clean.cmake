file(REMOVE_RECURSE
  "CMakeFiles/validation_tree_test.dir/validation/validation_tree_test.cc.o"
  "CMakeFiles/validation_tree_test.dir/validation/validation_tree_test.cc.o.d"
  "validation_tree_test"
  "validation_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
