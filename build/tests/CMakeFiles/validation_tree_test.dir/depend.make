# Empty dependencies file for validation_tree_test.
# This may be replaced when dependencies are built.
