# Empty dependencies file for date_test.
# This may be replaced when dependencies are built.
