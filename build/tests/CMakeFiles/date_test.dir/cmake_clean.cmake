file(REMOVE_RECURSE
  "CMakeFiles/date_test.dir/util/date_test.cc.o"
  "CMakeFiles/date_test.dir/util/date_test.cc.o.d"
  "date_test"
  "date_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/date_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
