# Empty compiler generated dependencies file for instance_validator_test.
# This may be replaced when dependencies are built.
