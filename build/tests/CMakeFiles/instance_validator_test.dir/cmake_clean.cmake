file(REMOVE_RECURSE
  "CMakeFiles/instance_validator_test.dir/core/instance_validator_test.cc.o"
  "CMakeFiles/instance_validator_test.dir/core/instance_validator_test.cc.o.d"
  "instance_validator_test"
  "instance_validator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instance_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
