file(REMOVE_RECURSE
  "CMakeFiles/parallel_validator_test.dir/core/parallel_validator_test.cc.o"
  "CMakeFiles/parallel_validator_test.dir/core/parallel_validator_test.cc.o.d"
  "parallel_validator_test"
  "parallel_validator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
