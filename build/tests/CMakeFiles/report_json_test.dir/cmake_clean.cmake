file(REMOVE_RECURSE
  "CMakeFiles/report_json_test.dir/validation/report_json_test.cc.o"
  "CMakeFiles/report_json_test.dir/validation/report_json_test.cc.o.d"
  "report_json_test"
  "report_json_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
