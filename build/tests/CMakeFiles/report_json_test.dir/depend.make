# Empty dependencies file for report_json_test.
# This may be replaced when dependencies are built.
