# Empty dependencies file for multi_interval_test.
# This may be replaced when dependencies are built.
