file(REMOVE_RECURSE
  "CMakeFiles/multi_interval_test.dir/geometry/multi_interval_test.cc.o"
  "CMakeFiles/multi_interval_test.dir/geometry/multi_interval_test.cc.o.d"
  "multi_interval_test"
  "multi_interval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
