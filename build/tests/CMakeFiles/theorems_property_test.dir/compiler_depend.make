# Empty compiler generated dependencies file for theorems_property_test.
# This may be replaced when dependencies are built.
