file(REMOVE_RECURSE
  "CMakeFiles/theorems_property_test.dir/theorems_property_test.cc.o"
  "CMakeFiles/theorems_property_test.dir/theorems_property_test.cc.o.d"
  "theorems_property_test"
  "theorems_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorems_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
