# Empty compiler generated dependencies file for hyper_rect_test.
# This may be replaced when dependencies are built.
