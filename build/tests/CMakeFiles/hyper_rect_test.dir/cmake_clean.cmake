file(REMOVE_RECURSE
  "CMakeFiles/hyper_rect_test.dir/geometry/hyper_rect_test.cc.o"
  "CMakeFiles/hyper_rect_test.dir/geometry/hyper_rect_test.cc.o.d"
  "hyper_rect_test"
  "hyper_rect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyper_rect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
