# Empty dependencies file for incremental_auditor_test.
# This may be replaced when dependencies are built.
