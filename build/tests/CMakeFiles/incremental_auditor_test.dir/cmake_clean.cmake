file(REMOVE_RECURSE
  "CMakeFiles/incremental_auditor_test.dir/core/incremental_auditor_test.cc.o"
  "CMakeFiles/incremental_auditor_test.dir/core/incremental_auditor_test.cc.o.d"
  "incremental_auditor_test"
  "incremental_auditor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_auditor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
