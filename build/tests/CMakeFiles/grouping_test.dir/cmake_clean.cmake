file(REMOVE_RECURSE
  "CMakeFiles/grouping_test.dir/core/grouping_test.cc.o"
  "CMakeFiles/grouping_test.dir/core/grouping_test.cc.o.d"
  "grouping_test"
  "grouping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
