# Empty dependencies file for grouping_test.
# This may be replaced when dependencies are built.
