# Empty dependencies file for tree_serialization_test.
# This may be replaced when dependencies are built.
