file(REMOVE_RECURSE
  "CMakeFiles/tree_serialization_test.dir/validation/tree_serialization_test.cc.o"
  "CMakeFiles/tree_serialization_test.dir/validation/tree_serialization_test.cc.o.d"
  "tree_serialization_test"
  "tree_serialization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
