file(REMOVE_RECURSE
  "CMakeFiles/network_property_test.dir/drm/network_property_test.cc.o"
  "CMakeFiles/network_property_test.dir/drm/network_property_test.cc.o.d"
  "network_property_test"
  "network_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
