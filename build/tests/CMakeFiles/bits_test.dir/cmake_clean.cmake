file(REMOVE_RECURSE
  "CMakeFiles/bits_test.dir/util/bits_test.cc.o"
  "CMakeFiles/bits_test.dir/util/bits_test.cc.o.d"
  "bits_test"
  "bits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
