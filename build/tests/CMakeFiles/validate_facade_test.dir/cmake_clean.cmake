file(REMOVE_RECURSE
  "CMakeFiles/validate_facade_test.dir/validation/validate_facade_test.cc.o"
  "CMakeFiles/validate_facade_test.dir/validation/validate_facade_test.cc.o.d"
  "validate_facade_test"
  "validate_facade_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_facade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
