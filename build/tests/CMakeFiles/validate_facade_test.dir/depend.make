# Empty dependencies file for validate_facade_test.
# This may be replaced when dependencies are built.
