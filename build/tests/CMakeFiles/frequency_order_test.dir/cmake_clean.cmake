file(REMOVE_RECURSE
  "CMakeFiles/frequency_order_test.dir/validation/frequency_order_test.cc.o"
  "CMakeFiles/frequency_order_test.dir/validation/frequency_order_test.cc.o.d"
  "frequency_order_test"
  "frequency_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
