# Empty compiler generated dependencies file for frequency_order_test.
# This may be replaced when dependencies are built.
