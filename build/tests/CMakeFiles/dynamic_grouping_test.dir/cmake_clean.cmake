file(REMOVE_RECURSE
  "CMakeFiles/dynamic_grouping_test.dir/core/dynamic_grouping_test.cc.o"
  "CMakeFiles/dynamic_grouping_test.dir/core/dynamic_grouping_test.cc.o.d"
  "dynamic_grouping_test"
  "dynamic_grouping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_grouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
