# Empty dependencies file for dynamic_grouping_test.
# This may be replaced when dependencies are built.
