# Empty dependencies file for max_flow_test.
# This may be replaced when dependencies are built.
