file(REMOVE_RECURSE
  "CMakeFiles/max_flow_test.dir/graph/max_flow_test.cc.o"
  "CMakeFiles/max_flow_test.dir/graph/max_flow_test.cc.o.d"
  "max_flow_test"
  "max_flow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/max_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
