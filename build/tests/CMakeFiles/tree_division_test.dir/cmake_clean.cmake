file(REMOVE_RECURSE
  "CMakeFiles/tree_division_test.dir/core/tree_division_test.cc.o"
  "CMakeFiles/tree_division_test.dir/core/tree_division_test.cc.o.d"
  "tree_division_test"
  "tree_division_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_division_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
