# Empty compiler generated dependencies file for tree_division_test.
# This may be replaced when dependencies are built.
