
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/thread_pool_test.cc" "tests/CMakeFiles/thread_pool_test.dir/util/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/thread_pool_test.dir/util/thread_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/geolic_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/drm/CMakeFiles/geolic_drm.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/geolic_service.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/geolic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/licensing/CMakeFiles/geolic_licensing.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/geolic_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/geolic_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/geolic_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/geolic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
