file(REMOVE_RECURSE
  "CMakeFiles/constraint_schema_test.dir/licensing/constraint_schema_test.cc.o"
  "CMakeFiles/constraint_schema_test.dir/licensing/constraint_schema_test.cc.o.d"
  "constraint_schema_test"
  "constraint_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
