# Empty compiler generated dependencies file for validation_authority_test.
# This may be replaced when dependencies are built.
