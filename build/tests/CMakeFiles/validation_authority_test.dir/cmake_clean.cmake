file(REMOVE_RECURSE
  "CMakeFiles/validation_authority_test.dir/drm/validation_authority_test.cc.o"
  "CMakeFiles/validation_authority_test.dir/drm/validation_authority_test.cc.o.d"
  "validation_authority_test"
  "validation_authority_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_authority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
