file(REMOVE_RECURSE
  "CMakeFiles/gain_test.dir/core/gain_test.cc.o"
  "CMakeFiles/gain_test.dir/core/gain_test.cc.o.d"
  "gain_test"
  "gain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
