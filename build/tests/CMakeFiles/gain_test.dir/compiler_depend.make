# Empty compiler generated dependencies file for gain_test.
# This may be replaced when dependencies are built.
