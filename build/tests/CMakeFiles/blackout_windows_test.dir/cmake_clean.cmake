file(REMOVE_RECURSE
  "CMakeFiles/blackout_windows_test.dir/licensing/blackout_windows_test.cc.o"
  "CMakeFiles/blackout_windows_test.dir/licensing/blackout_windows_test.cc.o.d"
  "blackout_windows_test"
  "blackout_windows_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackout_windows_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
