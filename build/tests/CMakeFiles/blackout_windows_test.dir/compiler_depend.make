# Empty compiler generated dependencies file for blackout_windows_test.
# This may be replaced when dependencies are built.
