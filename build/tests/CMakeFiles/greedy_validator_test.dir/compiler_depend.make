# Empty compiler generated dependencies file for greedy_validator_test.
# This may be replaced when dependencies are built.
