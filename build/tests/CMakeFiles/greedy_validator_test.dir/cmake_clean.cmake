file(REMOVE_RECURSE
  "CMakeFiles/greedy_validator_test.dir/core/greedy_validator_test.cc.o"
  "CMakeFiles/greedy_validator_test.dir/core/greedy_validator_test.cc.o.d"
  "greedy_validator_test"
  "greedy_validator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
