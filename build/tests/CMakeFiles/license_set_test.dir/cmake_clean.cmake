file(REMOVE_RECURSE
  "CMakeFiles/license_set_test.dir/licensing/license_set_test.cc.o"
  "CMakeFiles/license_set_test.dir/licensing/license_set_test.cc.o.d"
  "license_set_test"
  "license_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/license_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
