# Empty dependencies file for license_set_test.
# This may be replaced when dependencies are built.
