# Empty dependencies file for log_store_test.
# This may be replaced when dependencies are built.
