file(REMOVE_RECURSE
  "CMakeFiles/log_store_test.dir/validation/log_store_test.cc.o"
  "CMakeFiles/log_store_test.dir/validation/log_store_test.cc.o.d"
  "log_store_test"
  "log_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
