# Empty compiler generated dependencies file for adjacency_matrix_test.
# This may be replaced when dependencies are built.
