file(REMOVE_RECURSE
  "CMakeFiles/adjacency_matrix_test.dir/graph/adjacency_matrix_test.cc.o"
  "CMakeFiles/adjacency_matrix_test.dir/graph/adjacency_matrix_test.cc.o.d"
  "adjacency_matrix_test"
  "adjacency_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adjacency_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
