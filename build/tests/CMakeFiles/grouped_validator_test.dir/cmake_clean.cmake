file(REMOVE_RECURSE
  "CMakeFiles/grouped_validator_test.dir/core/grouped_validator_test.cc.o"
  "CMakeFiles/grouped_validator_test.dir/core/grouped_validator_test.cc.o.d"
  "grouped_validator_test"
  "grouped_validator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouped_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
