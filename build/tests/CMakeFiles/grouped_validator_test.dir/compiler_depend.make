# Empty compiler generated dependencies file for grouped_validator_test.
# This may be replaced when dependencies are built.
