file(REMOVE_RECURSE
  "CMakeFiles/distribution_network_test.dir/drm/distribution_network_test.cc.o"
  "CMakeFiles/distribution_network_test.dir/drm/distribution_network_test.cc.o.d"
  "distribution_network_test"
  "distribution_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribution_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
