# Empty dependencies file for distribution_network_test.
# This may be replaced when dependencies are built.
