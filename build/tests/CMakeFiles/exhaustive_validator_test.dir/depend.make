# Empty dependencies file for exhaustive_validator_test.
# This may be replaced when dependencies are built.
