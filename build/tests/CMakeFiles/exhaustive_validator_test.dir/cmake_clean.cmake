file(REMOVE_RECURSE
  "CMakeFiles/exhaustive_validator_test.dir/validation/exhaustive_validator_test.cc.o"
  "CMakeFiles/exhaustive_validator_test.dir/validation/exhaustive_validator_test.cc.o.d"
  "exhaustive_validator_test"
  "exhaustive_validator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustive_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
