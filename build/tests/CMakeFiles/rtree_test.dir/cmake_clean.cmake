file(REMOVE_RECURSE
  "CMakeFiles/rtree_test.dir/geometry/rtree_test.cc.o"
  "CMakeFiles/rtree_test.dir/geometry/rtree_test.cc.o.d"
  "rtree_test"
  "rtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
