# Empty dependencies file for validation_report_test.
# This may be replaced when dependencies are built.
