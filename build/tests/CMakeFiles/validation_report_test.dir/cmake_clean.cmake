file(REMOVE_RECURSE
  "CMakeFiles/validation_report_test.dir/validation/validation_report_test.cc.o"
  "CMakeFiles/validation_report_test.dir/validation/validation_report_test.cc.o.d"
  "validation_report_test"
  "validation_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
