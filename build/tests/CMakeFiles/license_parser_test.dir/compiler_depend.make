# Empty compiler generated dependencies file for license_parser_test.
# This may be replaced when dependencies are built.
