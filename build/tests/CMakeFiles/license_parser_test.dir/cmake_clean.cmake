file(REMOVE_RECURSE
  "CMakeFiles/license_parser_test.dir/licensing/license_parser_test.cc.o"
  "CMakeFiles/license_parser_test.dir/licensing/license_parser_test.cc.o.d"
  "license_parser_test"
  "license_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/license_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
