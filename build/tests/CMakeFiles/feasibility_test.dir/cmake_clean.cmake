file(REMOVE_RECURSE
  "CMakeFiles/feasibility_test.dir/validation/feasibility_test.cc.o"
  "CMakeFiles/feasibility_test.dir/validation/feasibility_test.cc.o.d"
  "feasibility_test"
  "feasibility_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feasibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
