# Empty dependencies file for feasibility_test.
# This may be replaced when dependencies are built.
