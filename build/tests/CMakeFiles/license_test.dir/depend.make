# Empty dependencies file for license_test.
# This may be replaced when dependencies are built.
