file(REMOVE_RECURSE
  "CMakeFiles/license_test.dir/licensing/license_test.cc.o"
  "CMakeFiles/license_test.dir/licensing/license_test.cc.o.d"
  "license_test"
  "license_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/license_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
