// Ablation: index-ordered vs frequency-ordered validation trees (the
// prefix-tree ordering idea of the paper's reference [8] lineage). On
// skewed logs, relabeling hot licenses toward the root shrinks the tree
// and the per-equation traversals.
#include <cstdio>
#include <utility>

#include "bench/bench_util.h"
#include "validation/frequency_order.h"
#include "validation/validate.h"
#include "util/stopwatch.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

}  // namespace
}  // namespace geolic

int main(int argc, char** argv) {
  using namespace geolic;         // NOLINT
  using namespace geolic::bench;  // NOLINT

  Flags flags(argc, argv);
  const int max_n = flags.Int("max_n", 22);
  const int step = flags.Int("step", 4);
  flags.Finish();

  std::printf("# Ablation: index-ordered vs frequency-ordered validation "
              "tree\n");
  std::printf("%4s  %12s  %12s  %12s  %12s  %8s\n", "N", "idx_nodes",
              "freq_nodes", "idx_VT_ms", "freq_VT_ms", "node_sav");

  for (int n = 6; n <= max_n; n += step) {
    Workload workload = PaperWorkload(n);
    const std::vector<int64_t> aggregates =
        workload.licenses->AggregateCounts();

    Result<ValidationTree> plain = ValidationTree::BuildFromLog(workload.log);
    GEOLIC_CHECK(plain.ok());
    Stopwatch plain_timer;
    Result<ValidationReport> plain_report =
        RunExhaustive(*plain, aggregates);
    const double plain_ms = plain_timer.ElapsedMillis();
    GEOLIC_CHECK(plain_report.ok());

    const Result<LicensePermutation> permutation =
        LicensePermutation::ByDescendingFrequency(workload.log, n);
    GEOLIC_CHECK(permutation.ok());
    Result<ValidationTree> ordered =
        BuildFrequencyOrderedTree(workload.log, *permutation);
    GEOLIC_CHECK(ordered.ok());
    Stopwatch ordered_timer;
    Result<ValidationReport> ordered_report =
        RunExhaustive(*ordered, permutation->MapValues(aggregates));
    const double ordered_ms = ordered_timer.ElapsedMillis();
    GEOLIC_CHECK(ordered_report.ok());
    GEOLIC_CHECK(ordered_report->violations.size() ==
                 plain_report->violations.size());

    std::printf("%4d  %12zu  %12zu  %12.3f  %12.3f  %7.1f%%\n", n,
                plain->NodeCount(), ordered->NodeCount(), plain_ms,
                ordered_ms,
                100.0 * (1.0 - static_cast<double>(ordered->NodeCount()) /
                                   static_cast<double>(plain->NodeCount())));
  }
  std::printf("# expected shape: frequency ordering never grows the tree; "
              "savings depend on log skew (paper-parameter logs are fairly "
              "uniform, so expect modest gains)\n");
  return 0;
}
