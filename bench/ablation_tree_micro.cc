// Microbenchmarks of the validation-tree primitives: record insertion and
// the SumSubsets traversal (the inner loop of every validation equation).
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "util/random.h"
#include "validation/validation_tree.h"
#include "workload/workload.h"

namespace geolic {
namespace {

LogStore MakeLog(int n, int records) {
  WorkloadConfig config = PaperSweepConfig(n);
  config.num_records = records;
  WorkloadGenerator generator(config);
  Result<Workload> workload = generator.Generate();
  GEOLIC_CHECK(workload.ok());
  return std::move(workload->log);
}

void BM_TreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const LogStore log = MakeLog(n, 4096);
  for (auto _ : state) {
    ValidationTree tree;
    for (const LogRecord& record : log.records()) {
      GEOLIC_CHECK(tree.Insert(record.set, record.count).ok());
    }
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(log.size()));
}
BENCHMARK(BM_TreeInsert)->Arg(5)->Arg(15)->Arg(25)->Arg(35);

void BM_TreeSumSubsets(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const LogStore log = MakeLog(n, 8192);
  Result<ValidationTree> tree = ValidationTree::BuildFromLog(log);
  GEOLIC_CHECK(tree.ok());
  Rng rng(3);
  std::vector<LicenseSet> sets;
  for (int i = 0; i < 512; ++i) {
    sets.push_back((LicenseSet::FromWord(rng.Next()) & LicenseSet::Full(n)) |
        LicenseSet::Singleton(0));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->SumSubsets(sets[i % sets.size()]));
    ++i;
  }
}
BENCHMARK(BM_TreeSumSubsets)->Arg(5)->Arg(15)->Arg(25)->Arg(35);

void BM_TreeBuildFromLog(benchmark::State& state) {
  const LogStore log = MakeLog(static_cast<int>(state.range(0)), 16384);
  for (auto _ : state) {
    Result<ValidationTree> tree = ValidationTree::BuildFromLog(log);
    GEOLIC_CHECK(tree.ok());
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_TreeBuildFromLog)->Arg(10)->Arg(35);

}  // namespace
}  // namespace geolic

BENCHMARK_MAIN();
