// Figure 8: theoretical vs experimental gain.
//
// Theoretical gain is equation 3: G ≈ (2^N − 1) / Σ_k (2^{N_k} − 1).
// Experimental gain is measured baseline V_T divided by proposed V_T. The
// paper observes experimental ≥ theoretical, because each group's equations
// traverse only that group's (smaller) tree, skipping the redundant
// traversals of the original tree.
#include <cstdio>
#include <utility>

#include "validation/validate.h"
#include "bench/bench_util.h"
#include "core/gain.h"
#include "core/grouped_validator.h"
#include "util/stopwatch.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

}  // namespace
}  // namespace geolic

int main(int argc, char** argv) {
  using namespace geolic;         // NOLINT
  using namespace geolic::bench;  // NOLINT

  Flags flags(argc, argv);
  const int max_n = flags.Int("max_n", 22);
  const int step = flags.Int("step", 2);
  const int repeats = flags.Int("repeats", 3);
  flags.Finish();

  std::printf("# Figure 8: theoretical vs experimental gain\n");
  std::printf("%4s  %7s  %12s  %16s  %18s\n", "N", "groups",
              "group_sizes", "theoretical_gain", "experimental_gain");

  int below = 0;
  for (int n = 2; n <= max_n; n += step) {
    Workload workload = PaperWorkload(n);
    const LicenseGrouping grouping =
        LicenseGrouping::FromLicenses(*workload.licenses);
    const std::vector<int> sizes = GroupSizes(grouping);
    const double theoretical = TheoreticalGain(sizes);

    // Median-ish: average over repeats to stabilise small-N timings.
    double baseline_total = 0.0;
    double proposed_total = 0.0;
    for (int r = 0; r < repeats; ++r) {
      Result<ValidationTree> baseline_tree =
          ValidationTree::BuildFromLog(workload.log);
      GEOLIC_CHECK(baseline_tree.ok());
      Stopwatch baseline_timer;
      Result<ValidationReport> baseline = RunExhaustive(
          *baseline_tree, workload.licenses->AggregateCounts());
      baseline_total += baseline_timer.ElapsedMicros();
      GEOLIC_CHECK(baseline.ok());

      Result<ValidationTree> grouped_tree =
          ValidationTree::BuildFromLog(workload.log);
      GEOLIC_CHECK(grouped_tree.ok());
      Result<GroupedValidationResult> grouped = ValidateGroupedWithGrouping(
          grouping, workload.licenses->AggregateCounts(),
          *std::move(grouped_tree));
      GEOLIC_CHECK(grouped.ok());
      proposed_total += grouped->validation_micros;
    }
    const double experimental =
        proposed_total > 0 ? baseline_total / proposed_total : 0.0;
    if (experimental < theoretical) {
      ++below;
    }
    std::printf("%4d  %7d  %12s  %16.2f  %18.2f\n", n,
                grouping.group_count(), SizesToString(sizes).c_str(),
                theoretical, experimental);
  }
  std::printf("# expected shape: experimental >= theoretical (tree division "
              "also removes redundant traversals); points below: %d\n",
              below);
  return 0;
}
