// Ablation: admission latency while the catalog is reconfiguring.
//
// The epoch/RCU shard-map swap promises that AcquireLicense / RevokeLicense
// never stop issuance: admissions pin an epoch lock-free, and one that
// loses the race to a reconfiguration retries against the new shard map.
// This bench measures per-request admission latency in two phases — a
// quiescent catalog, then a reconfiguration storm (a bridge license
// acquired and revoked in a tight loop, merging and re-splitting two
// shards each round) — and self-checks that the storm-phase p99 stays
// within 5x of the quiescent p99. Machine-readable: --json_out=<path>.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/online_validator.h"
#include "licensing/constraint_schema.h"
#include "licensing/license.h"
#include "licensing/license_catalog.h"
#include "service/issuance_service.h"
#include "util/stopwatch.h"

namespace {

using namespace geolic;  // NOLINT

// `groups` disjoint clusters of two overlapping licenses, 1000 apart.
LicenseCatalog MakeGroupedSet(const ConstraintSchema& schema, int groups) {
  LicenseCatalog licenses(&schema);
  for (int g = 0; g < groups; ++g) {
    const int64_t base = 1000 * g;
    for (int member = 0; member < 2; ++member) {
      LicenseBuilder builder(&schema);
      builder.SetId("L" + std::to_string(2 * g + member))
          .SetContentKey("K")
          .SetType(LicenseType::kRedistribution)
          .SetPermission(Permission::kPlay)
          .SetAggregateCount(int64_t{1} << 40)
          .SetInterval("C1", base + 10 * member, base + 20 + 10 * member);
      GEOLIC_CHECK(licenses.Add(*builder.Build()).ok());
    }
  }
  return licenses;
}

std::vector<License> MakeRequests(const ConstraintSchema& schema, int groups,
                                  int count) {
  std::vector<License> requests;
  requests.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int64_t base = 1000 * (i % groups);
    LicenseBuilder builder(&schema);
    builder.SetId("U" + std::to_string(i))
        .SetContentKey("K")
        .SetType(LicenseType::kUsage)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(1)
        .SetInterval("C1", base + 12, base + 18);
    requests.push_back(*builder.Build());
  }
  return requests;
}

// The storm license: spans clusters 0 and 1, so each acquisition merges
// their shards and each revocation splits them again (figure 6, live).
License BridgeLicense(const ConstraintSchema& schema, int round) {
  LicenseBuilder builder(&schema);
  builder.SetId("X" + std::to_string(round))
      .SetContentKey("K")
      .SetType(LicenseType::kRedistribution)
      .SetPermission(Permission::kPlay)
      .SetAggregateCount(int64_t{1} << 40)
      .SetInterval("C1", 15, 1015);
  return *builder.Build();
}

int64_t Percentile(std::vector<int64_t>* nanos, double p) {
  GEOLIC_CHECK(!nanos->empty());
  const size_t rank = std::min(
      nanos->size() - 1,
      static_cast<size_t>(p * static_cast<double>(nanos->size() - 1)));
  std::nth_element(nanos->begin(),
                   nanos->begin() + static_cast<ptrdiff_t>(rank),
                   nanos->end());
  return (*nanos)[rank];
}

struct PhaseResult {
  int64_t p50_ns = 0;
  int64_t p99_ns = 0;
  uint64_t reconfigs = 0;
};

// Times every admission in `requests`; when `storm` is set, a background
// thread acquires and revokes the bridge license continuously.
PhaseResult RunPhase(const LicenseCatalog& licenses,
                     const std::vector<License>& requests, bool storm) {
  Result<std::unique_ptr<IssuanceService>> service =
      IssuanceService::Create(&licenses);
  GEOLIC_CHECK(service.ok());
  IssuanceService* s = service->get();

  std::atomic<bool> stop{false};
  std::thread reconfigurer;
  if (storm) {
    reconfigurer = std::thread([s, &stop, &licenses] {
      int round = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const License bridge = BridgeLicense(licenses.schema(), round++);
        GEOLIC_CHECK(s->AcquireLicense(bridge).ok());
        GEOLIC_CHECK(s->RevokeLicenseById(bridge.id()).ok());
      }
    });
  }

  std::vector<int64_t> nanos;
  nanos.reserve(requests.size());
  for (const License& request : requests) {
    Stopwatch timer;
    const Result<OnlineDecision> decision = s->TryIssue(request);
    nanos.push_back(timer.ElapsedNanos());
    GEOLIC_CHECK(decision.ok());
    GEOLIC_CHECK(decision->accepted());
  }

  PhaseResult result;
  if (storm) {
    stop.store(true, std::memory_order_release);
    reconfigurer.join();
    result.reconfigs = s->catalog_epoch();
    // Every transient bridge was revoked again: the stable accepted set
    // must survive all the merges and splits intact.
    GEOLIC_CHECK(s->licenses().size() == licenses.size());
    GEOLIC_CHECK(s->CollectLog().TotalCount() ==
                 static_cast<int64_t>(requests.size()));
  }
  result.p50_ns = Percentile(&nanos, 0.50);
  result.p99_ns = Percentile(&nanos, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using geolic::bench::Flags;
  using geolic::bench::JsonOut;

  Flags flags(argc, argv);
  const int groups = std::max(2, flags.Int("groups", 8));
  const int request_count = std::max(100, flags.Int("requests", 20000));
  const int reps = std::max(1, flags.Int("reps", 3));
  JsonOut json(flags, "ablation_lifecycle");
  flags.Finish();

  ConstraintSchema schema;
  GEOLIC_CHECK(schema.AddIntervalDimension("C1").ok());
  const LicenseCatalog licenses = MakeGroupedSet(schema, groups);
  const std::vector<License> requests =
      MakeRequests(schema, groups, request_count);

  std::printf("# Ablation: admission latency, quiescent vs reconfiguration "
              "storm (%d groups, %d requests, best of %d reps)\n",
              groups, request_count, reps);
  std::printf("%10s  %10s  %10s  %10s\n", "phase", "p50_ns", "p99_ns",
              "reconfigs");

  // Best-of-reps on both sides: scheduling noise hits each phase alike.
  PhaseResult quiescent;
  PhaseResult storm;
  for (int rep = 0; rep < reps; ++rep) {
    const PhaseResult q = RunPhase(licenses, requests, /*storm=*/false);
    const PhaseResult r = RunPhase(licenses, requests, /*storm=*/true);
    if (rep == 0 || q.p99_ns < quiescent.p99_ns) {
      quiescent = q;
    }
    if (rep == 0 || r.p99_ns < storm.p99_ns) {
      storm = r;
    }
  }

  std::printf("%10s  %10" PRId64 "  %10" PRId64 "  %10s\n", "quiescent",
              quiescent.p50_ns, quiescent.p99_ns, "0");
  std::printf("%10s  %10" PRId64 "  %10" PRId64 "  %10" PRIu64 "\n", "storm",
              storm.p50_ns, storm.p99_ns, storm.reconfigs);

  // The acceptance bar: reconfigurations may cost retries and shard-lock
  // waits, but the epoch swap must keep the admission tail within 5x of a
  // quiescent catalog. The 2µs floor keeps sub-microsecond quiescent tails
  // (where one scheduler tick is many multiples) from making the ratio
  // meaningless.
  const double floor_ns = 2000.0;
  const double baseline =
      std::max(static_cast<double>(quiescent.p99_ns), floor_ns);
  const double ratio = static_cast<double>(storm.p99_ns) / baseline;
  std::printf("# storm p99 / quiescent p99 = %.2fx (bar: 5x, floor %gns)\n",
              ratio, floor_ns);
  GEOLIC_CHECK(static_cast<double>(storm.p99_ns) <= 5.0 * baseline);

  json.Row([&](JsonWriter& out) {
    out.KeyValue("phase", "quiescent");
    out.KeyValue("p50_ns", quiescent.p50_ns);
    out.KeyValue("p99_ns", quiescent.p99_ns);
    out.KeyValue("reconfigs", static_cast<int64_t>(0));
  });
  json.Row([&](JsonWriter& out) {
    out.KeyValue("phase", "storm");
    out.KeyValue("p50_ns", storm.p50_ns);
    out.KeyValue("p99_ns", storm.p99_ns);
    out.KeyValue("reconfigs", static_cast<int64_t>(storm.reconfigs));
    out.KeyValue("p99_ratio", ratio);
  });
  json.Write();
  return 0;
}
