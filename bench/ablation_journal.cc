// Ablation: cost of crash safety. The write-ahead issuance journal puts
// one framed append (and, depending on the fsync batching policy, one
// fsync) in front of every accepted admission. This bench measures
//   (a) raw journal append throughput vs fsync_interval — the durability
//       spectrum from "fsync every record" to "let the OS decide", and
//   (b) recovery time: replaying the whole journal vs loading a midpoint
//       checkpoint plus the journal tail.
// Expected shape: fsync_interval=1 is orders of magnitude slower than
// batched intervals (each append pays a device flush); recovery time
// scales with the replayed tail, so the checkpoint roughly halves it when
// taken at the halfway point.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "licensing/constraint_schema.h"
#include "licensing/license.h"
#include "licensing/license_catalog.h"
#include "persist/journal.h"
#include "service/issuance_service.h"
#include "util/stopwatch.h"

namespace {

using namespace geolic;  // NOLINT

// `groups` disjoint clusters of two overlapping licenses each.
LicenseCatalog MakeGroupedSet(const ConstraintSchema& schema, int groups) {
  LicenseCatalog licenses(&schema);
  for (int g = 0; g < groups; ++g) {
    const int64_t base = 1000 * g;
    for (int member = 0; member < 2; ++member) {
      LicenseBuilder builder(&schema);
      builder.SetId("L" + std::to_string(2 * g + member))
          .SetContentKey("K")
          .SetType(LicenseType::kRedistribution)
          .SetPermission(Permission::kPlay)
          .SetAggregateCount(int64_t{1} << 40)
          .SetInterval("C1", base + 10 * member, base + 20 + 10 * member);
      GEOLIC_CHECK(licenses.Add(*builder.Build()).ok());
    }
  }
  return licenses;
}

std::vector<License> MakeRequests(const ConstraintSchema& schema, int groups,
                                  int count) {
  std::vector<License> requests;
  requests.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int64_t base = 1000 * (i % groups);
    LicenseBuilder builder(&schema);
    builder.SetId("U" + std::to_string(i))
        .SetContentKey("K")
        .SetType(LicenseType::kUsage)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(1)
        .SetInterval("C1", base + 12, base + 18);
    requests.push_back(*builder.Build());
  }
  return requests;
}

LogRecord RecordFor(int i) {
  LogRecord record;
  record.issued_license_id = "LU" + std::to_string(i + 1);
  record.set = LicenseSet::FromWord(static_cast<uint64_t>(i % 3 + 1));
  record.count = 1;
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  using geolic::bench::Flags;
  using geolic::bench::JsonOut;

  Flags flags(argc, argv);
  const int records = std::max(1, flags.Int("records", 20000));
  const int groups = std::max(1, flags.Int("groups", 8));
  const int fsync_records =
      std::max(1, flags.Int("fsync_records", std::min(records, 2000)));
  const std::string dir = flags.Str("tmp_dir", "/tmp");
  JsonOut json(flags, "ablation_journal");
  flags.Finish();

  std::printf("# Ablation: journal append throughput and recovery time "
              "(%d records)\n", records);

  // (a) Append throughput vs fsync batching. fsync_interval=1 uses a
  // reduced record count — per-append device flushes are slow by design.
  std::printf("%16s  %10s  %12s  %12s\n", "fsync_interval", "records",
              "append_ms", "krec_per_s");
  for (const int interval : {0, 64, 8, 1}) {
    const int n = interval == 1 ? fsync_records : records;
    const std::string path = dir + "/geolic_bench_journal_fsync" +
                             std::to_string(interval) + ".gjl";
    JournalOptions options;
    options.fsync_interval = interval;
    Result<std::unique_ptr<JournalWriter>> writer =
        JournalWriter::Open(path, options);
    GEOLIC_CHECK(writer.ok());
    Stopwatch timer;
    for (int i = 0; i < n; ++i) {
      GEOLIC_CHECK(
          (*writer)->Append(static_cast<uint64_t>(i + 1), RecordFor(i)).ok());
    }
    GEOLIC_CHECK((*writer)->Sync().ok());
    const double elapsed_ms = timer.ElapsedMillis();
    std::printf("%16d  %10d  %12.2f  %12.1f\n", interval, n, elapsed_ms,
                elapsed_ms > 0 ? static_cast<double>(n) / elapsed_ms : 0.0);
    json.Row([&](JsonWriter& out) {
      out.KeyValue("label", "append_throughput");
      out.KeyValue("fsync_interval", static_cast<int64_t>(interval));
      out.KeyValue("records", static_cast<int64_t>(n));
      out.KeyValue("append_ms", elapsed_ms);
    });
    std::remove(path.c_str());
  }

  // (b) Recovery: run a real service with a journal, checkpoint halfway,
  // "crash", then rebuild from (journal only) vs (checkpoint + tail).
  ConstraintSchema schema;
  GEOLIC_CHECK(schema.AddIntervalDimension("C1").ok());
  const LicenseCatalog licenses = MakeGroupedSet(schema, groups);
  const std::vector<License> requests =
      MakeRequests(schema, groups, records);
  const std::string journal_path = dir + "/geolic_bench_journal.gjl";
  const std::string checkpoint_path = dir + "/geolic_bench_checkpoint.gck";

  std::string pre_crash_tree;
  {
    Result<std::unique_ptr<IssuanceService>> service =
        IssuanceService::Create(&licenses);
    GEOLIC_CHECK(service.ok());
    JournalOptions options;
    options.fsync_interval = 0;  // Bench I/O, not the device flush.
    Result<std::unique_ptr<JournalWriter>> journal =
        JournalWriter::Open(journal_path, options);
    GEOLIC_CHECK(journal.ok());
    GEOLIC_CHECK((*service)->AttachJournal(std::move(*journal)).ok());
    for (int i = 0; i < records; ++i) {
      GEOLIC_CHECK((*service)->TryIssue(requests[static_cast<size_t>(i)]).ok());
      if (i + 1 == records / 2) {
        GEOLIC_CHECK((*service)->WriteCheckpoint(checkpoint_path).ok());
      }
    }
    GEOLIC_CHECK((*service)->SyncJournal().ok());
    Result<ValidationTree> tree = (*service)->CollectTree();
    GEOLIC_CHECK(tree.ok());
    pre_crash_tree = tree->ToString();
  }  // Crash: only the files survive.

  std::printf("%24s  %12s  %10s  %10s\n", "recovery_mode", "recover_ms",
              "replayed", "skipped");
  for (const bool use_checkpoint : {false, true}) {
    RecoveryStats stats;
    Stopwatch timer;
    Result<std::unique_ptr<IssuanceService>> recovered =
        IssuanceService::Recover(&licenses, {},
                                 use_checkpoint ? checkpoint_path : "",
                                 journal_path, &stats);
    const double elapsed_ms = timer.ElapsedMillis();
    GEOLIC_CHECK(recovered.ok());
    // The recovered state must equal the pre-crash state exactly.
    Result<ValidationTree> tree = (*recovered)->CollectTree();
    GEOLIC_CHECK(tree.ok());
    GEOLIC_CHECK(tree->ToString() == pre_crash_tree);
    const char* label =
        use_checkpoint ? "checkpoint+tail" : "journal_replay";
    std::printf("%24s  %12.2f  %10zu  %10zu\n", label, elapsed_ms,
                stats.journal_records_replayed, stats.journal_records_skipped);
    json.Row([&](JsonWriter& out) {
      out.KeyValue("label", label);
      out.KeyValue("recover_ms", elapsed_ms);
      out.KeyValue("checkpoint_records",
                   static_cast<uint64_t>(stats.checkpoint_records));
      out.KeyValue("replayed",
                   static_cast<uint64_t>(stats.journal_records_replayed));
      out.KeyValue("skipped",
                   static_cast<uint64_t>(stats.journal_records_skipped));
      out.KeyValue("state_matches", true);  // GEOLIC_CHECKed above.
    });
  }
  std::remove(journal_path.c_str());
  std::remove(checkpoint_path.c_str());

  json.Write();
  std::printf("# expected shape: append cost rises as fsync_interval drops "
              "to 1; checkpoint+tail replays ~half the records of a full "
              "journal replay\n");
  return 0;
}
