#ifndef GEOLIC_BENCH_BENCH_UTIL_H_
#define GEOLIC_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/grouping.h"
#include "util/check.h"
#include "util/json_writer.h"
#include "workload/workload.h"

namespace geolic::bench {

// Generates the paper-parameter workload for N redistribution licenses.
inline Workload PaperWorkload(int num_licenses, uint64_t seed = 2010) {
  WorkloadGenerator generator(PaperSweepConfig(num_licenses, seed));
  Result<Workload> workload = generator.Generate();
  GEOLIC_CHECK(workload.ok());
  return *std::move(workload);
}

// Group sizes of a license set, for gain computations.
inline std::vector<int> GroupSizes(const LicenseGrouping& grouping) {
  std::vector<int> sizes;
  sizes.reserve(static_cast<size_t>(grouping.group_count()));
  for (int k = 0; k < grouping.group_count(); ++k) {
    sizes.push_back(grouping.GroupSize(k));
  }
  return sizes;
}

// "3+2" style rendering of group sizes.
inline std::string SizesToString(const std::vector<int>& sizes) {
  std::string out;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0) {
      out += "+";
    }
    out += std::to_string(sizes[i]);
  }
  return out;
}

// Declarative "--name=value" parser for benches. Construct from argv,
// read each flag the bench understands with Int/Str, then call Finish().
// A flag given twice, an int flag with a non-numeric value, or (at
// Finish) an argv entry no flag claimed all exit non-zero — a typo'd CI
// invocation must fail the job, not silently benchmark the defaults.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      args_.emplace_back(argv[i]);
    }
    claimed_.assign(args_.size(), false);
  }

  // Integer flag; `fallback` when absent.
  int Int(const char* name, int fallback) {
    std::string value;
    if (!Claim(name, &value)) {
      return fallback;
    }
    errno = 0;
    char* end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() ||
        errno == ERANGE || parsed < INT_MIN || parsed > INT_MAX) {
      Fail(std::string("--") + name + " expects an integer, got \"" +
           value + "\"");
    }
    return static_cast<int>(parsed);
  }

  // String flag; `fallback` when absent.
  std::string Str(const char* name, const char* fallback) {
    std::string value;
    return Claim(name, &value) ? value : std::string(fallback);
  }

  // Call once after every flag has been read: leftover argv entries are
  // unknown flags.
  void Finish() {
    for (size_t i = 0; i < args_.size(); ++i) {
      if (!claimed_[i]) {
        Fail("unknown flag \"" + args_[i] + "\"");
      }
    }
  }

 private:
  bool Claim(const char* name, std::string* value) {
    const std::string prefix = std::string("--") + name + "=";
    bool found = false;
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].rfind(prefix, 0) != 0) {
        continue;
      }
      if (found) {
        Fail(std::string("duplicate flag --") + name);
      }
      claimed_[i] = true;
      *value = args_[i].substr(prefix.size());
      found = true;
    }
    return found;
  }

  [[noreturn]] static void Fail(const std::string& message) {
    std::fprintf(stderr, "bench: %s\n", message.c_str());
    std::exit(2);
  }

  std::vector<std::string> args_;
  std::vector<bool> claimed_;
};

// Machine-readable bench output behind the common `--json_out=<path>` flag
// (CI archives the file; absent flag = no-op). The document is one object:
//   {"bench": "<name>", "rows": [ {..row..}, ... ]}
// Each Row callback fills one object's key/value pairs via JsonWriter.
class JsonOut {
 public:
  JsonOut(Flags& flags, const char* bench_name)
      : path_(flags.Str("json_out", "")) {
    if (!enabled()) {
      return;
    }
    json_.BeginObject();
    json_.KeyValue("bench", bench_name);
    json_.Key("rows");
    json_.BeginArray();
  }

  bool enabled() const { return !path_.empty(); }

  void Row(const std::function<void(JsonWriter&)>& fill) {
    if (!enabled()) {
      return;
    }
    json_.BeginObject();
    fill(json_);
    json_.EndObject();
  }

  // Closes the document and writes the file; crashes the bench on I/O
  // failure (CI must notice). Call at most once, at the end of main.
  void Write() {
    if (!enabled()) {
      return;
    }
    json_.EndArray();
    json_.EndObject();
    const std::string doc = std::move(json_).Take();
    std::FILE* file = std::fopen(path_.c_str(), "w");
    GEOLIC_CHECK(file != nullptr);
    GEOLIC_CHECK(std::fwrite(doc.data(), 1, doc.size(), file) == doc.size());
    GEOLIC_CHECK(std::fclose(file) == 0);
    std::printf("# json written to %s\n", path_.c_str());
  }

 private:
  std::string path_;
  JsonWriter json_;
};

}  // namespace geolic::bench

#endif  // GEOLIC_BENCH_BENCH_UTIL_H_
