#ifndef GEOLIC_BENCH_BENCH_UTIL_H_
#define GEOLIC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/grouping.h"
#include "util/check.h"
#include "workload/workload.h"

namespace geolic::bench {

// Generates the paper-parameter workload for N redistribution licenses.
inline Workload PaperWorkload(int num_licenses, uint64_t seed = 2010) {
  WorkloadGenerator generator(PaperSweepConfig(num_licenses, seed));
  Result<Workload> workload = generator.Generate();
  GEOLIC_CHECK(workload.ok());
  return *std::move(workload);
}

// Group sizes of a license set, for gain computations.
inline std::vector<int> GroupSizes(const LicenseGrouping& grouping) {
  std::vector<int> sizes;
  sizes.reserve(static_cast<size_t>(grouping.group_count()));
  for (int k = 0; k < grouping.group_count(); ++k) {
    sizes.push_back(grouping.GroupSize(k));
  }
  return sizes;
}

// "3+2" style rendering of group sizes.
inline std::string SizesToString(const std::vector<int>& sizes) {
  std::string out;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0) {
      out += "+";
    }
    out += std::to_string(sizes[i]);
  }
  return out;
}

// Parses "--max_n=30"-style int flags from argv; returns fallback when the
// flag is absent or malformed.
inline int IntFlag(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::atoi(arg.c_str() + prefix.size());
    }
  }
  return fallback;
}

}  // namespace geolic::bench

#endif  // GEOLIC_BENCH_BENCH_UTIL_H_
