#ifndef GEOLIC_BENCH_BENCH_UTIL_H_
#define GEOLIC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/grouping.h"
#include "util/check.h"
#include "util/json_writer.h"
#include "workload/workload.h"

namespace geolic::bench {

// Generates the paper-parameter workload for N redistribution licenses.
inline Workload PaperWorkload(int num_licenses, uint64_t seed = 2010) {
  WorkloadGenerator generator(PaperSweepConfig(num_licenses, seed));
  Result<Workload> workload = generator.Generate();
  GEOLIC_CHECK(workload.ok());
  return *std::move(workload);
}

// Group sizes of a license set, for gain computations.
inline std::vector<int> GroupSizes(const LicenseGrouping& grouping) {
  std::vector<int> sizes;
  sizes.reserve(static_cast<size_t>(grouping.group_count()));
  for (int k = 0; k < grouping.group_count(); ++k) {
    sizes.push_back(grouping.GroupSize(k));
  }
  return sizes;
}

// "3+2" style rendering of group sizes.
inline std::string SizesToString(const std::vector<int>& sizes) {
  std::string out;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0) {
      out += "+";
    }
    out += std::to_string(sizes[i]);
  }
  return out;
}

// Parses "--max_n=30"-style int flags from argv; returns fallback when the
// flag is absent or malformed.
inline int IntFlag(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::atoi(arg.c_str() + prefix.size());
    }
  }
  return fallback;
}

// Parses "--json_out=path"-style string flags; returns fallback when the
// flag is absent.
inline std::string StringFlag(int argc, char** argv, const char* name,
                              const char* fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return fallback;
}

// Machine-readable bench output behind the common `--json_out=<path>` flag
// (CI archives the file; absent flag = no-op). The document is one object:
//   {"bench": "<name>", "rows": [ {..row..}, ... ]}
// Each Row callback fills one object's key/value pairs via JsonWriter.
class JsonOut {
 public:
  JsonOut(int argc, char** argv, const char* bench_name)
      : path_(StringFlag(argc, argv, "json_out", "")) {
    if (!enabled()) {
      return;
    }
    json_.BeginObject();
    json_.KeyValue("bench", bench_name);
    json_.Key("rows");
    json_.BeginArray();
  }

  bool enabled() const { return !path_.empty(); }

  void Row(const std::function<void(JsonWriter&)>& fill) {
    if (!enabled()) {
      return;
    }
    json_.BeginObject();
    fill(json_);
    json_.EndObject();
  }

  // Closes the document and writes the file; crashes the bench on I/O
  // failure (CI must notice). Call at most once, at the end of main.
  void Write() {
    if (!enabled()) {
      return;
    }
    json_.EndArray();
    json_.EndObject();
    const std::string doc = std::move(json_).Take();
    std::FILE* file = std::fopen(path_.c_str(), "w");
    GEOLIC_CHECK(file != nullptr);
    GEOLIC_CHECK(std::fwrite(doc.data(), 1, doc.size(), file) == doc.size());
    GEOLIC_CHECK(std::fclose(file) == 0);
    std::printf("# json written to %s\n", path_.c_str());
  }

 private:
  std::string path_;
  JsonWriter json_;
};

}  // namespace geolic::bench

#endif  // GEOLIC_BENCH_BENCH_UTIL_H_
