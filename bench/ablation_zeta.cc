// Ablation: per-equation tree traversal (Algorithm 2) versus the dense
// subset-sum (zeta transform) validator. Both evaluate all 2^N − 1
// equations; the traversal skips empty tree regions but chases pointers,
// the DP touches every cell with perfect locality.
#include <cstdio>
#include <utility>

#include "validation/validate.h"
#include "bench/bench_util.h"
#include "util/stopwatch.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

Result<ValidationReport> RunZeta(const ValidationTree& tree,
                                 const std::vector<int64_t>& aggregates,
                                 int max_dense_n = 26) {
  ValidateOptions options;
  options.mode = ValidationMode::kZeta;
  options.max_dense_n = max_dense_n;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

}  // namespace
}  // namespace geolic

int main(int argc, char** argv) {
  using namespace geolic;         // NOLINT
  using namespace geolic::bench;  // NOLINT

  Flags flags(argc, argv);
  const int max_n = flags.Int("max_n", 24);
  const int step = flags.Int("step", 2);
  flags.Finish();

  std::printf("# Ablation: exhaustive tree-traversal validator vs dense "
              "zeta-transform validator (all 2^N-1 equations each)\n");
  std::printf("%4s  %10s  %14s  %12s  %10s\n", "N", "equations",
              "traversal_ms", "zeta_ms", "ratio");

  for (int n = 4; n <= max_n; n += step) {
    Workload workload = PaperWorkload(n);
    Result<ValidationTree> tree = ValidationTree::BuildFromLog(workload.log);
    GEOLIC_CHECK(tree.ok());
    const std::vector<int64_t> aggregates =
        workload.licenses->AggregateCounts();

    Stopwatch traversal_timer;
    Result<ValidationReport> traversal = RunExhaustive(*tree, aggregates);
    const double traversal_ms = traversal_timer.ElapsedMillis();
    GEOLIC_CHECK(traversal.ok());

    Stopwatch zeta_timer;
    Result<ValidationReport> zeta = RunZeta(*tree, aggregates);
    const double zeta_ms = zeta_timer.ElapsedMillis();
    GEOLIC_CHECK(zeta.ok());
    GEOLIC_CHECK(zeta->violations.size() == traversal->violations.size());

    std::printf("%4d  %10llu  %14.3f  %12.3f  %9.2fx\n", n,
                static_cast<unsigned long long>(
                    traversal->equations_evaluated),
                traversal_ms, zeta_ms,
                zeta_ms > 0 ? traversal_ms / zeta_ms : 0.0);
  }
  std::printf("# expected shape: zeta wins at larger N (O(2^N*N) sequential "
              "adds vs per-equation pointer chasing), at O(2^N) memory\n");
  return 0;
}
