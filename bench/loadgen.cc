// Closed-loop TCP load generator for the network front-end (docs/WIRE.md):
// starts an in-process Server over a grouped catalog, opens N client
// connections, and drives pipelined issue requests through the real wire
// path — encode, socket, epoll, admission queue, TryIssueBatch, response.
//
// Reports client-side latency percentiles plus the server's own counters;
// the headline number is the mean wire batch size (batched requests per
// TryIssueBatch dispatch), which is > 1 whenever concurrent connections
// actually coalesce into shared shard-lock acquisitions.
//
// --overload=1 shrinks the admission queue so the run demonstrates load
// shedding: sheds become nonzero, protocol errors must stay zero, and
// every shed is an explicit kShed response the client observes.
//
// --tenants=T switches to the multi-tenant catalog path: the server fronts
// a CatalogService over T Zipf(--zipf)-popular contents with an LRU budget
// of --budget_mb, clients send kTenantIssueRequest frames, and the report
// adds the catalog's hit rate, compiles, evictions and resident gauges —
// a healthy run at --tenants=100000 keeps well under 10% of tenants
// resident while sustaining steady-state throughput.
// Machine-readable: --json_out=<path>.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <filesystem>
#include <list>

#include "bench/bench_util.h"
#include "catalog/catalog_service.h"
#include "catalog/tenant_source.h"
#include "licensing/constraint_schema.h"
#include "licensing/license.h"
#include "licensing/license_catalog.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/issuance_service.h"
#include "util/check.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "workload/multi_tenant.h"

namespace {

using namespace geolic;  // NOLINT

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Disjoint clusters of two overlapping licenses with effectively unlimited
// budgets, so accepted/rejected is deterministic and the run measures the
// wire path, not budget exhaustion.
LicenseCatalog MakeCatalog(const ConstraintSchema& schema, int groups) {
  LicenseCatalog licenses(&schema);
  for (int g = 0; g < groups; ++g) {
    const int64_t base = 1000 * g;
    for (int member = 0; member < 2; ++member) {
      LicenseBuilder builder(&schema);
      builder.SetId("L" + std::to_string(2 * g + member))
          .SetContentKey("K")
          .SetType(LicenseType::kRedistribution)
          .SetPermission(Permission::kPlay)
          .SetAggregateCount(int64_t{1} << 40)
          .SetInterval("C1", base + 10 * member, base + 20 + 10 * member);
      GEOLIC_CHECK(licenses.Add(*builder.Build()).ok());
    }
  }
  return licenses;
}

struct ClientResult {
  std::vector<uint64_t> latency_nanos;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
};

// One closed-loop connection: keeps up to `pipeline` requests in flight,
// stamping send time per request id and classifying every response.
// `make_frame(id, out)` appends the complete wire frame for request `id`.
template <typename MakeFrame>
void RunClientLoop(uint16_t port, MakeFrame&& make_frame, int requests,
                   int pipeline, ClientResult* result) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  GEOLIC_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  GEOLIC_CHECK(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
  GEOLIC_CHECK(connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) == 0);
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const auto send_all = [fd](std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      GEOLIC_CHECK(n > 0);
      off += static_cast<size_t>(n);
    }
  };

  send_all(std::string_view(net::kWireMagic, sizeof(net::kWireMagic)));

  std::unordered_map<uint64_t, uint64_t> sent_nanos;
  sent_nanos.reserve(static_cast<size_t>(pipeline) * 2);
  uint64_t next_id = 1;
  const auto send_one = [&] {
    std::string bytes;
    make_frame(next_id, &bytes);
    sent_nanos[next_id] = NowNanos();
    ++next_id;
    send_all(bytes);
  };

  std::string buffer;
  const auto read_frame = [&](net::Frame* frame) {
    for (;;) {
      size_t consumed = 0;
      std::string error;
      const net::DecodeResult decoded =
          net::TryDecodeFrame(buffer, frame, &consumed, &error);
      if (decoded == net::DecodeResult::kFrame) {
        buffer.erase(0, consumed);
        return;
      }
      GEOLIC_CHECK(decoded == net::DecodeResult::kNeedMore);
      char chunk[8192];
      const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      GEOLIC_CHECK(n > 0);  // EOF mid-run means the server dropped us.
      buffer.append(chunk, static_cast<size_t>(n));
    }
  };

  const int initial = std::min(pipeline, requests);
  for (int i = 0; i < initial; ++i) {
    send_one();
  }
  for (int received = 0; received < requests; ++received) {
    net::Frame frame;
    read_frame(&frame);
    const auto it = sent_nanos.find(frame.request_id);
    GEOLIC_CHECK(it != sent_nanos.end());
    result->latency_nanos.push_back(NowNanos() - it->second);
    sent_nanos.erase(it);
    switch (frame.kind) {
      case net::FrameKind::kIssueResult: {
        net::IssueResult issue;
        GEOLIC_CHECK(net::DecodeIssueResult(frame.payload, &issue).ok());
        if (issue.outcome == net::IssueResult::Outcome::kAccepted) {
          ++result->accepted;
        } else {
          ++result->rejected;
        }
        break;
      }
      case net::FrameKind::kShed:
        ++result->shed;
        break;
      default:
        ++result->errors;
        break;
    }
    if (next_id <= static_cast<uint64_t>(requests)) {
      send_one();
    }
  }
  close(fd);
}

// Single-service client: cycles the pre-encoded group payloads.
void RunClient(uint16_t port, const std::vector<std::string>& payloads,
               int requests, int pipeline, ClientResult* result) {
  RunClientLoop(
      port,
      [&payloads](uint64_t id, std::string* bytes) {
        net::EncodeFrame(net::FrameKind::kIssueRequest, id,
                         payloads[static_cast<size_t>(id) % payloads.size()],
                         bytes);
      },
      requests, pipeline, result);
}

// Catalog-mode client: draws a Zipf tenant per request and a usage license
// inside that tenant's baseline. Baselines are materialized client-side on
// demand behind a small generational cache — the Zipf head dominates the
// draws, so a few dozen entries absorb almost all of them while the tail
// stays cold, mirroring what real per-content traffic looks like to the
// server's LRU.
void RunTenantClient(uint16_t port, const MultiTenantWorkload* workload,
                     int requests, int pipeline, uint64_t seed,
                     ClientResult* result) {
  constexpr size_t kBaselineCacheCap = 64;
  Rng rng(seed);
  std::unordered_map<uint64_t, std::unique_ptr<Workload>> baselines;
  RunClientLoop(
      port,
      [&](uint64_t id, std::string* bytes) {
        const uint64_t tenant = workload->DrawTenant(&rng);
        auto it = baselines.find(tenant);
        if (it == baselines.end()) {
          if (baselines.size() >= kBaselineCacheCap) {
            baselines.clear();
          }
          Result<Workload> made = workload->MakeTenant(tenant);
          GEOLIC_CHECK(made.ok());
          it = baselines
                   .emplace(tenant,
                            std::make_unique<Workload>(std::move(*made)))
                   .first;
        }
        const License request = workload->DrawRequest(
            *it->second, &rng, static_cast<int64_t>(id));
        std::string payload;
        GEOLIC_CHECK(
            net::EncodeTenantIssueRequest(tenant, request, &payload).ok());
        net::EncodeFrame(net::FrameKind::kTenantIssueRequest, id, payload,
                         bytes);
      },
      requests, pipeline, result);
}

uint64_t Percentile(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) {
    return 0;
  }
  const double rank = q * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<size_t>(rank)];
}

}  // namespace

int main(int argc, char** argv) {
  using geolic::JsonWriter;
  using geolic::bench::Flags;
  using geolic::bench::JsonOut;

  Flags flags(argc, argv);
  const int connections = std::max(1, flags.Int("connections", 64));
  const int requests = std::max(1, flags.Int("requests", 400));
  const int pipeline = std::max(1, flags.Int("pipeline", 8));
  const int groups = std::max(1, flags.Int("groups", 8));
  const bool overload = flags.Int("overload", 0) != 0;
  const int max_batch = std::max(1, flags.Int("max_batch", 64));
  // Multi-tenant catalog mode (0 = classic single-service run).
  const int tenants = std::max(0, flags.Int("tenants", 0));
  const double zipf_s = std::strtod(flags.Str("zipf", "1.1").c_str(), nullptr);
  const int budget_mb = std::max(1, flags.Int("budget_mb", 64));
  const int fsync_interval = std::max(0, flags.Int("fsync", 0));
  const int journal_writers = std::max(1, flags.Int("journal_writers", 4));
  JsonOut json(flags, "loadgen");
  flags.Finish();
  const bool catalog_mode = tenants > 0;
  GEOLIC_CHECK(!catalog_mode || zipf_s > 0);

  ConstraintSchema schema;
  GEOLIC_CHECK(schema.AddIntervalDimension("C1").ok());
  const LicenseCatalog licenses = MakeCatalog(schema, groups);

  net::ServerOptions options;
  options.max_batch = static_cast<size_t>(max_batch);
  if (overload) {
    // A queue far smaller than the in-flight volume: overload must degrade
    // to explicit sheds, never to protocol errors or unbounded latency.
    options.queue_capacity = 2;
  }

  std::unique_ptr<IssuanceService> service;
  std::unique_ptr<MultiTenantWorkload> tenant_workload;
  std::unique_ptr<WorkloadTenantSource> tenant_source;
  std::unique_ptr<CatalogService> catalog;
  std::filesystem::path catalog_dir;
  std::unique_ptr<net::Server> server;
  if (catalog_mode) {
    MultiTenantConfig config;
    config.num_tenants = static_cast<uint64_t>(tenants);
    config.zipf_s = zipf_s;
    tenant_workload = std::make_unique<MultiTenantWorkload>(config);
    tenant_source =
        std::make_unique<WorkloadTenantSource>(tenant_workload.get());
    catalog_dir = std::filesystem::temp_directory_path() /
                  ("geolic-loadgen-" + std::to_string(getpid()));
    std::error_code ec;
    std::filesystem::remove_all(catalog_dir, ec);
    CatalogOptions catalog_options;
    catalog_options.dir = catalog_dir.string();
    catalog_options.memory_budget_bytes =
        static_cast<size_t>(budget_mb) << 20;
    catalog_options.journal_writers = journal_writers;
    catalog_options.fsync_interval = fsync_interval;
    Result<std::unique_ptr<CatalogService>> made =
        CatalogService::Create(tenant_source.get(), catalog_options);
    GEOLIC_CHECK(made.ok());
    catalog = std::move(*made);
    Result<std::unique_ptr<net::Server>> started =
        net::Server::StartWithCatalog(catalog.get(), options);
    GEOLIC_CHECK(started.ok());
    server = std::move(*started);
  } else {
    Result<std::unique_ptr<IssuanceService>> made =
        IssuanceService::Create(&licenses);
    GEOLIC_CHECK(made.ok());
    service = std::move(*made);
    Result<std::unique_ptr<net::Server>> started =
        net::Server::Start(service.get(), options);
    GEOLIC_CHECK(started.ok());
    server = std::move(*started);
  }

  // Pre-encoded request payloads cycling the groups; every request is
  // instance-valid. (Single-service mode only; catalog clients generate
  // per-tenant requests on the fly.)
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    LicenseBuilder builder(&schema);
    builder.SetId("U" + std::to_string(g))
        .SetContentKey("K")
        .SetType(LicenseType::kUsage)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(1)
        .SetInterval("C1", 1000 * g + 12, 1000 * g + 18);
    std::string payload;
    GEOLIC_CHECK(net::EncodeIssueRequest(*builder.Build(), &payload).ok());
    payloads.push_back(std::move(payload));
  }

  if (catalog_mode) {
    std::printf("# loadgen: %d connections x %d requests, pipeline %d, "
                "max_batch %d, %d tenants (zipf %.2f, budget %d MB)%s\n",
                connections, requests, pipeline, max_batch, tenants, zipf_s,
                budget_mb, overload ? ", OVERLOAD (queue_capacity=2)" : "");
  } else {
    std::printf("# loadgen: %d connections x %d requests, pipeline %d, "
                "max_batch %d%s\n",
                connections, requests, pipeline, max_batch,
                overload ? ", OVERLOAD (queue_capacity=2)" : "");
  }

  std::vector<ClientResult> results(static_cast<size_t>(connections));
  Stopwatch timer;
  {
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      if (catalog_mode) {
        clients.emplace_back(RunTenantClient, server->port(),
                             tenant_workload.get(), requests, pipeline,
                             /*seed=*/0x10ad6e0u + static_cast<uint64_t>(c),
                             &results[static_cast<size_t>(c)]);
      } else {
        clients.emplace_back(RunClient, server->port(), std::cref(payloads),
                             requests, pipeline,
                             &results[static_cast<size_t>(c)]);
      }
    }
    for (std::thread& client : clients) {
      client.join();
    }
  }
  const double elapsed_ms = timer.ElapsedMillis();

  ClientResult total;
  for (const ClientResult& r : results) {
    total.accepted += r.accepted;
    total.rejected += r.rejected;
    total.shed += r.shed;
    total.errors += r.errors;
    total.latency_nanos.insert(total.latency_nanos.end(),
                               r.latency_nanos.begin(),
                               r.latency_nanos.end());
  }
  std::sort(total.latency_nanos.begin(), total.latency_nanos.end());
  const uint64_t p50 = Percentile(total.latency_nanos, 0.50);
  const uint64_t p99 = Percentile(total.latency_nanos, 0.99);
  const uint64_t p999 = Percentile(total.latency_nanos, 0.999);

  const net::NetStats stats = server->Stats();
  const double mean_batch =
      stats.batches_dispatched > 0
          ? static_cast<double>(stats.batch_requests_dispatched) /
                static_cast<double>(stats.batches_dispatched)
          : 0.0;
  const uint64_t answered = total.accepted + total.rejected + total.shed;
  const double kreq_per_s =
      elapsed_ms > 0 ? static_cast<double>(answered) / elapsed_ms : 0.0;

  std::printf("# %" PRIu64 " answered in %.1f ms (%.1f kreq/s): "
              "%" PRIu64 " accepted, %" PRIu64 " rejected, %" PRIu64
              " shed, %" PRIu64 " errors\n",
              answered, elapsed_ms, kreq_per_s, total.accepted,
              total.rejected, total.shed, total.errors);
  std::printf("# latency us: p50 %.1f  p99 %.1f  p99.9 %.1f\n",
              static_cast<double>(p50) / 1e3, static_cast<double>(p99) / 1e3,
              static_cast<double>(p999) / 1e3);
  std::printf("# server: %" PRIu64 " batches, %" PRIu64
              " batched requests, mean batch %.2f, queue peak %" PRIu64
              ", %" PRIu64 " protocol errors\n",
              stats.batches_dispatched, stats.batch_requests_dispatched,
              mean_batch, stats.queue_depth_peak, stats.protocol_errors);

  CatalogStats catalog_stats;
  double hit_rate = 0.0;
  double resident_fraction = 0.0;
  if (catalog_mode) {
    catalog_stats = catalog->stats();
    const uint64_t lookups = catalog_stats.hits + catalog_stats.misses;
    hit_rate = lookups > 0 ? static_cast<double>(catalog_stats.hits) /
                                 static_cast<double>(lookups)
                           : 0.0;
    resident_fraction = static_cast<double>(catalog_stats.resident_tenants) /
                        static_cast<double>(tenants);
    std::printf("# catalog: hit rate %.3f (%" PRIu64 " hits, %" PRIu64
                " misses), %" PRIu64 " compiles, %" PRIu64 " spill loads, "
                "%" PRIu64 " evictions\n",
                hit_rate, catalog_stats.hits, catalog_stats.misses,
                catalog_stats.compiles, catalog_stats.loads,
                catalog_stats.evictions);
    std::printf("# catalog: %" PRIu64 " of %d tenants resident (%.1f%%), "
                "%" PRIu64 " resident bytes, %" PRIu64 " journal frames\n",
                catalog_stats.resident_tenants, tenants,
                100.0 * resident_fraction, catalog_stats.resident_bytes,
                catalog_stats.journal_frames);
  }

  json.Row([&](JsonWriter& out) {
    out.KeyValue("connections", static_cast<int64_t>(connections));
    out.KeyValue("requests_per_connection", static_cast<int64_t>(requests));
    out.KeyValue("pipeline", static_cast<int64_t>(pipeline));
    out.KeyValue("overload", overload ? int64_t{1} : int64_t{0});
    out.KeyValue("elapsed_ms", elapsed_ms);
    out.KeyValue("kreq_per_s", kreq_per_s);
    out.KeyValue("accepted", total.accepted);
    out.KeyValue("rejected", total.rejected);
    out.KeyValue("shed", total.shed);
    out.KeyValue("errors", total.errors);
    out.KeyValue("p50_nanos", p50);
    out.KeyValue("p99_nanos", p99);
    out.KeyValue("p999_nanos", p999);
    out.KeyValue("batches_dispatched", stats.batches_dispatched);
    out.KeyValue("batch_requests_dispatched",
                 stats.batch_requests_dispatched);
    out.KeyValue("mean_batch_size", mean_batch);
    out.KeyValue("queue_depth_peak", stats.queue_depth_peak);
    out.KeyValue("protocol_errors", stats.protocol_errors);
    out.KeyValue("bytes_read", stats.bytes_read);
    out.KeyValue("bytes_written", stats.bytes_written);
    if (catalog_mode) {
      out.KeyValue("tenants", static_cast<int64_t>(tenants));
      out.KeyValue("zipf_s", zipf_s);
      out.KeyValue("budget_mb", static_cast<int64_t>(budget_mb));
      out.KeyValue("catalog_hit_rate", hit_rate);
      out.KeyValue("catalog_hits", catalog_stats.hits);
      out.KeyValue("catalog_misses", catalog_stats.misses);
      out.KeyValue("catalog_compiles", catalog_stats.compiles);
      out.KeyValue("catalog_spill_loads", catalog_stats.loads);
      out.KeyValue("catalog_evictions", catalog_stats.evictions);
      out.KeyValue("catalog_spills", catalog_stats.spills);
      out.KeyValue("catalog_resident_tenants",
                   catalog_stats.resident_tenants);
      out.KeyValue("catalog_resident_bytes", catalog_stats.resident_bytes);
      out.KeyValue("catalog_resident_fraction", resident_fraction);
      out.KeyValue("catalog_journal_frames", catalog_stats.journal_frames);
    }
  });
  json.Write();

  server->Drain();
  GEOLIC_CHECK(stats.protocol_errors == 0);
  if (catalog_mode) {
    // Every request must round-trip as a real decision: shedding is fine
    // under --overload, hard errors are not.
    GEOLIC_CHECK(total.errors == 0);
    GEOLIC_CHECK(catalog->Close().ok());
    std::error_code ec;
    std::filesystem::remove_all(catalog_dir, ec);
  }
  return 0;
}
