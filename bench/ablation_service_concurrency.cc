// Ablation: issuance throughput vs thread count under the sharded
// IssuanceService. Overlap groups share no validation equations (the
// sharding corollary of the paper's Theorem 2), so per-group locks let
// admissions from different groups proceed concurrently; the single-shard
// configuration (grouping off) serializes every admission and bounds what
// a global lock would achieve. Also measures the batched admission API,
// which sorts a batch by shard and locks each touched shard once.
// Machine-readable: --json_out=<path>.
//
// Budgets are set far above the request volume so every instance-valid
// request is accepted and the accepted set is identical across thread
// counts — the run doubles as a determinism check against serial replay.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/online_validator.h"
#include "licensing/constraint_schema.h"
#include "licensing/license.h"
#include "licensing/license_catalog.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "service/issuance_service.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace geolic;  // NOLINT

// `groups` disjoint clusters of two overlapping licenses each, far apart.
LicenseCatalog MakeGroupedSet(const ConstraintSchema& schema, int groups) {
  LicenseCatalog licenses(&schema);
  for (int g = 0; g < groups; ++g) {
    const int64_t base = 1000 * g;
    for (int member = 0; member < 2; ++member) {
      LicenseBuilder builder(&schema);
      builder.SetId("L" + std::to_string(2 * g + member))
          .SetContentKey("K")
          .SetType(LicenseType::kRedistribution)
          .SetPermission(Permission::kPlay)
          .SetAggregateCount(int64_t{1} << 40)
          .SetInterval("C1", base + 10 * member, base + 20 + 10 * member);
      GEOLIC_CHECK(licenses.Add(*builder.Build()).ok());
    }
  }
  return licenses;
}

// Request pool cycling across groups; every request is instance-valid and
// lands on satisfying set {L_{2g}, L_{2g+1}}.
std::vector<License> MakeRequests(const ConstraintSchema& schema, int groups,
                                  int count) {
  std::vector<License> requests;
  requests.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int64_t base = 1000 * (i % groups);
    LicenseBuilder builder(&schema);
    builder.SetId("U" + std::to_string(i))
        .SetContentKey("K")
        .SetType(LicenseType::kUsage)
        .SetPermission(Permission::kPlay)
        .SetAggregateCount(1)
        .SetInterval("C1", base + 12, base + 18);
    requests.push_back(*builder.Build());
  }
  return requests;
}

// Issues requests[lo, hi) on `service`.
void IssueRange(IssuanceService* service, const std::vector<License>& requests,
                size_t lo, size_t hi) {
  for (size_t i = lo; i < hi; ++i) {
    GEOLIC_CHECK(service->TryIssue(requests[i]).ok());
  }
}

double RunThreaded(IssuanceService* service,
                   const std::vector<License>& requests, int threads) {
  Stopwatch timer;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  const size_t per_thread = requests.size() / static_cast<size_t>(threads);
  for (int t = 0; t < threads; ++t) {
    const size_t lo = static_cast<size_t>(t) * per_thread;
    const size_t hi = t == threads - 1 ? requests.size() : lo + per_thread;
    workers.emplace_back(IssueRange, service, std::cref(requests), lo, hi);
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  return timer.ElapsedMillis();
}

}  // namespace

int main(int argc, char** argv) {
  using geolic::JsonWriter;
  using geolic::bench::Flags;
  using geolic::bench::JsonOut;

  Flags flags(argc, argv);
  const int groups = std::max(1, flags.Int("groups", 8));
  const int request_count = std::max(1, flags.Int("requests", 40000));
  const int max_threads =
      std::max(1, flags.Int("max_threads",
                            std::max(8, ThreadPool::DefaultThreadCount())));
  const int batch_size = std::max(1, flags.Int("batch_size", 64));
  const std::string metrics_out = flags.Str("metrics_out", "");
  JsonOut json(flags, "ablation_service_concurrency");
  flags.Finish();

  ConstraintSchema schema;
  GEOLIC_CHECK(schema.AddIntervalDimension("C1").ok());
  const LicenseCatalog licenses = MakeGroupedSet(schema, groups);
  const std::vector<License> requests =
      MakeRequests(schema, groups, request_count);

  std::printf("# Ablation: concurrent issuance throughput (%d overlap "
              "groups, %d requests, hardware threads: %d)\n",
              groups, request_count, ThreadPool::DefaultThreadCount());
  std::printf("%8s  %10s  %12s  %12s  %10s\n", "threads", "shards",
              "sharded_ms", "kreq_per_s", "speedup");

  // Serial reference state for the determinism check.
  std::string reference_tree;
  double serial_ms = 0.0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    Result<std::unique_ptr<IssuanceService>> service =
        IssuanceService::Create(&licenses);
    GEOLIC_CHECK(service.ok());
    const double elapsed_ms = RunThreaded(service->get(), requests, threads);
    if (threads == 1) {
      serial_ms = elapsed_ms;
      Result<ValidationTree> tree = (*service)->CollectTree();
      GEOLIC_CHECK(tree.ok());
      reference_tree = tree->ToString();
    } else {
      // The accepted state must equal the serial run's, bit for bit.
      Result<ValidationTree> tree = (*service)->CollectTree();
      GEOLIC_CHECK(tree.ok());
      GEOLIC_CHECK(tree->ToString() == reference_tree);
    }
    GEOLIC_CHECK((*service)->metrics().Snap().accepted ==
                 static_cast<uint64_t>(request_count));
    std::printf("%8d  %10d  %12.2f  %12.1f  %9.2fx\n", threads,
                (*service)->shard_count(), elapsed_ms,
                static_cast<double>(request_count) / elapsed_ms,
                elapsed_ms > 0 ? serial_ms / elapsed_ms : 0.0);
    json.Row([&](JsonWriter& out) {
      out.KeyValue("mode", "sharded");
      out.KeyValue("threads", static_cast<int64_t>(threads));
      out.KeyValue("shards",
                   static_cast<int64_t>((*service)->shard_count()));
      out.KeyValue("elapsed_ms", elapsed_ms);
      out.KeyValue("kreq_per_s",
                   static_cast<double>(request_count) / elapsed_ms);
      out.KeyValue("speedup",
                   elapsed_ms > 0 ? serial_ms / elapsed_ms : 0.0);
    });
  }

  // Global-lock baseline: grouped equation scopes (same per-request work)
  // but a single mutex striping all groups, so admissions serialize.
  {
    OnlineValidatorOptions options;
    options.shard_hint = 1;
    Result<std::unique_ptr<IssuanceService>> service =
        IssuanceService::Create(&licenses, options);
    GEOLIC_CHECK(service.ok());
    const double elapsed_ms =
        RunThreaded(service->get(), requests, max_threads);
    std::printf("# single lock (shard_hint=1, %d threads): %.2f ms "
                "(%.1f kreq/s) — the global-lock bound\n",
                max_threads, elapsed_ms,
                static_cast<double>(request_count) / elapsed_ms);
    json.Row([&](JsonWriter& out) {
      out.KeyValue("mode", "single_lock");
      out.KeyValue("threads", static_cast<int64_t>(max_threads));
      out.KeyValue("elapsed_ms", elapsed_ms);
      out.KeyValue("kreq_per_s",
                   static_cast<double>(request_count) / elapsed_ms);
    });
  }

  // Batched admission, single caller thread.
  {
    Result<std::unique_ptr<IssuanceService>> service =
        IssuanceService::Create(&licenses);
    GEOLIC_CHECK(service.ok());
    Stopwatch timer;
    std::vector<License> batch;
    batch.reserve(static_cast<size_t>(batch_size));
    for (size_t i = 0; i < requests.size();) {
      batch.clear();
      for (int b = 0; b < batch_size && i < requests.size(); ++b, ++i) {
        batch.push_back(requests[i]);
      }
      GEOLIC_CHECK((*service)->TryIssueBatch(batch).ok());
    }
    const double elapsed_ms = timer.ElapsedMillis();
    Result<ValidationTree> tree = (*service)->CollectTree();
    GEOLIC_CHECK(tree.ok());
    GEOLIC_CHECK(tree->ToString() == reference_tree);
    std::printf("# batched (size %d, 1 thread): %.2f ms (%.1f kreq/s)\n",
                batch_size, elapsed_ms,
                static_cast<double>(request_count) / elapsed_ms);
    std::printf("# metrics: %s\n",
                (*service)->metrics().Snap().ToString().c_str());
    json.Row([&](JsonWriter& out) {
      out.KeyValue("mode", "batched");
      out.KeyValue("batch_size", static_cast<int64_t>(batch_size));
      out.KeyValue("elapsed_ms", elapsed_ms);
      out.KeyValue("kreq_per_s",
                   static_cast<double>(request_count) / elapsed_ms);
    });
  }

  // Tracing overhead: the same single-thread run with and without a Tracer
  // attached, at the recommended production sampling (1-in-32 requests
  // traced; exact IssuanceMetrics are always on either way) and at full
  // tracing for reference. An admission here is a few hundred nanoseconds
  // — far below anything that would journal — so this is the worst case
  // for span overhead; the sampled budget is < 5%.
  {
    constexpr int kReps = 7;
    constexpr uint32_t kSamplePeriod = 64;
    double plain_ms = std::numeric_limits<double>::infinity();
    double sampled_ms = std::numeric_limits<double>::infinity();
    double full_ms = std::numeric_limits<double>::infinity();
    Tracer sampled_tracer(TracerOptions{.ring_capacity = 8192,
                                        .slow_request_nanos = 0,
                                        .sample_period = kSamplePeriod});
    Tracer full_tracer(TracerOptions{.ring_capacity = 8192,
                                     .slow_request_nanos = 0});
    OnlineValidatorOptions sampled_options;
    sampled_options.tracer = &sampled_tracer;
    OnlineValidatorOptions full_options;
    full_options.tracer = &full_tracer;
    // Tight plain/sampled alternation so each pair sees the same cache and
    // frequency conditions; the overhead is the median of the per-pair
    // ratios, which cancels drift across the run. The (much heavier)
    // full-tracing reference runs after the comparison so it cannot
    // perturb it.
    std::vector<double> ratios;
    for (int rep = 0; rep < kReps; ++rep) {
      Result<std::unique_ptr<IssuanceService>> plain =
          IssuanceService::Create(&licenses);
      GEOLIC_CHECK(plain.ok());
      const double rep_plain_ms = RunThreaded(plain->get(), requests, 1);
      plain_ms = std::min(plain_ms, rep_plain_ms);

      Result<std::unique_ptr<IssuanceService>> sampled =
          IssuanceService::Create(&licenses, sampled_options);
      GEOLIC_CHECK(sampled.ok());
      const double rep_sampled_ms =
          RunThreaded(sampled->get(), requests, 1);
      sampled_ms = std::min(sampled_ms, rep_sampled_ms);
      if (rep_plain_ms > 0) {
        ratios.push_back(rep_sampled_ms / rep_plain_ms);
      }

      if (rep == kReps - 1) {
        if (!metrics_out.empty()) {
          const ExpositionInput exposition = (*sampled)->Snap();
          GEOLIC_CHECK(WriteMetricsFile(exposition, metrics_out).ok());
          std::printf("# metrics written to %s\n", metrics_out.c_str());
        }
      }
    }
    for (int rep = 0; rep < 2; ++rep) {
      Result<std::unique_ptr<IssuanceService>> full =
          IssuanceService::Create(&licenses, full_options);
      GEOLIC_CHECK(full.ok());
      full_ms = std::min(full_ms, RunThreaded(full->get(), requests, 1));
    }
    std::sort(ratios.begin(), ratios.end());
    const double overhead_pct =
        ratios.empty() ? 0.0 : 100.0 * (ratios[ratios.size() / 2] - 1.0);
    const double full_pct =
        plain_ms > 0 ? 100.0 * (full_ms - plain_ms) / plain_ms : 0.0;
    std::printf("# tracing overhead (1 thread, median of %d pairs): "
                "spans-off %.2f ms, spans-on %.2f ms, overhead %.2f%% "
                "(sampling 1/%u, %" PRIu64 " spans; full tracing: %.2f ms, "
                "%.2f%%)\n",
                kReps, plain_ms, sampled_ms, overhead_pct, kSamplePeriod,
                sampled_tracer.spans_recorded(), full_ms, full_pct);
    json.Row([&](JsonWriter& out) {
      out.KeyValue("mode", "tracing_overhead");
      out.KeyValue("plain_ms", plain_ms);
      out.KeyValue("sampled_ms", sampled_ms);
      out.KeyValue("overhead_pct", overhead_pct);
      out.KeyValue("full_ms", full_ms);
      out.KeyValue("full_pct", full_pct);
      out.KeyValue("spans_recorded", sampled_tracer.spans_recorded());
    });
  }

  std::printf("# expected shape: throughput grows with threads until "
              "min(groups, cores); single-shard stays flat at the 1-thread "
              "rate; tracing overhead stays under 5%%\n");
  json.Write();
  return 0;
}
