// Ablation: connected-component algorithms for group formation — the
// paper's recursive DFS (Algorithm 3) versus an explicit-stack DFS versus
// union-find, across overlap-graph densities at N = 64.
#include <benchmark/benchmark.h>

#include "graph/connected_components.h"
#include "util/random.h"

namespace geolic {
namespace {

AdjacencyMatrix RandomGraph(int n, double density, uint64_t seed) {
  Rng rng(seed);
  AdjacencyMatrix graph(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(density)) {
        graph.AddEdge(i, j);
      }
    }
  }
  return graph;
}

// density per mille on the benchmark arg to keep integer args.
void BM_ComponentsDfs(benchmark::State& state) {
  const AdjacencyMatrix graph =
      RandomGraph(64, static_cast<double>(state.range(0)) / 1000.0, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindComponentsDfs(graph));
  }
}
BENCHMARK(BM_ComponentsDfs)->Arg(5)->Arg(20)->Arg(100)->Arg(500);

void BM_ComponentsIterative(benchmark::State& state) {
  const AdjacencyMatrix graph =
      RandomGraph(64, static_cast<double>(state.range(0)) / 1000.0, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindComponentsIterative(graph));
  }
}
BENCHMARK(BM_ComponentsIterative)->Arg(5)->Arg(20)->Arg(100)->Arg(500);

void BM_ComponentsUnionFind(benchmark::State& state) {
  const AdjacencyMatrix graph =
      RandomGraph(64, static_cast<double>(state.range(0)) / 1000.0, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindComponentsUnionFind(graph));
  }
}
BENCHMARK(BM_ComponentsUnionFind)->Arg(5)->Arg(20)->Arg(100)->Arg(500);

}  // namespace
}  // namespace geolic

BENCHMARK_MAIN();
