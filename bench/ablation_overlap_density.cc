// Ablation: how overlap density drives the paper's win. Sweeping the
// license-extent fraction (how much of its cluster slab a license covers)
// changes how often licenses overlap, hence the group structure, hence the
// theoretical and measured gain. Dense overlap ⇒ one big group ⇒ gain → 1;
// sparse overlap ⇒ many small groups ⇒ large gain.
#include <cstdio>
#include <utility>

#include "validation/validate.h"
#include "bench/bench_util.h"
#include "core/gain.h"
#include "core/grouped_validator.h"
#include "util/stopwatch.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

}  // namespace
}  // namespace geolic

int main(int argc, char** argv) {
  using namespace geolic;         // NOLINT
  using namespace geolic::bench;  // NOLINT

  Flags flags(argc, argv);
  const int n = flags.Int("n", 18);
  flags.Finish();

  std::printf("# Ablation: overlap density (license extent) vs groups and "
              "gain, N=%d\n", n);
  std::printf("%8s  %7s  %12s  %16s  %18s\n", "extent", "groups",
              "group_sizes", "theoretical_gain", "experimental_gain");

  for (double extent :
       {0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.5, 0.7, 0.9}) {
    WorkloadConfig config = PaperSweepConfig(n);
    config.min_extent = extent * 0.8;
    config.max_extent = extent;
    config.num_clusters = 1;  // Single arena: density alone decides groups.
    WorkloadGenerator generator(config);
    Result<Workload> workload = generator.Generate();
    GEOLIC_CHECK(workload.ok());

    const LicenseGrouping grouping =
        LicenseGrouping::FromLicenses(*workload->licenses);
    const std::vector<int> sizes = GroupSizes(grouping);

    Result<ValidationTree> baseline_tree =
        ValidationTree::BuildFromLog(workload->log);
    GEOLIC_CHECK(baseline_tree.ok());
    Stopwatch baseline_timer;
    Result<ValidationReport> baseline = RunExhaustive(
        *baseline_tree, workload->licenses->AggregateCounts());
    const double baseline_us = baseline_timer.ElapsedMicros();
    GEOLIC_CHECK(baseline.ok());

    Result<ValidationTree> grouped_tree =
        ValidationTree::BuildFromLog(workload->log);
    GEOLIC_CHECK(grouped_tree.ok());
    Result<GroupedValidationResult> grouped = ValidateGroupedWithGrouping(
        grouping, workload->licenses->AggregateCounts(),
        *std::move(grouped_tree));
    GEOLIC_CHECK(grouped.ok());

    std::printf("%8.2f  %7d  %12s  %16.2f  %18.2f\n", extent,
                grouping.group_count(), SizesToString(sizes).c_str(),
                TheoreticalGain(sizes),
                grouped->validation_micros > 0
                    ? baseline_us / grouped->validation_micros
                    : 0.0);
  }
  std::printf("# expected shape: gain decays toward 1 as overlap density "
              "grows\n");
  return 0;
}
