// Figure 7: validation time complexity — baseline validation time V_T
// (all 2^N − 1 equations over the undivided tree, reference [10]) versus
// the proposed method's V_T (Σ_k 2^{N_k} − 1 equations over divided trees),
// and the proposed V_T + D_T (division time included) to show D_T is
// negligible for N > 2.
//
// The baseline is exponential in N; beyond --max_baseline_n (default 24)
// only the proposed method runs and the baseline column prints "-".
#include <cstdio>
#include <utility>

#include "validation/validate.h"
#include "bench/bench_util.h"
#include "core/grouped_validator.h"
#include "util/stopwatch.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

}  // namespace
}  // namespace geolic

int main(int argc, char** argv) {
  using namespace geolic;         // NOLINT
  using namespace geolic::bench;  // NOLINT

  Flags flags(argc, argv);
  const int max_n = flags.Int("max_n", 30);
  const int max_baseline_n = flags.Int("max_baseline_n", 24);
  const int step = flags.Int("step", 2);
  flags.Finish();

  std::printf("# Figure 7: validation time vs number of redistribution "
              "licenses\n");
  std::printf("# baseline = ref [10] (2^N - 1 equations); proposed = this "
              "paper (grouped)\n");
  std::printf("%4s  %8s  %7s  %16s  %16s  %18s  %9s\n", "N", "records",
              "groups", "baseline_VT_ms", "proposed_VT_ms",
              "proposed_VT+DT_ms", "speedup");

  for (int n = 2; n <= max_n; n += step) {
    Workload workload = PaperWorkload(n);

    // Proposed: grouping + division + per-group validation.
    Result<ValidationTree> grouped_tree =
        ValidationTree::BuildFromLog(workload.log);
    GEOLIC_CHECK(grouped_tree.ok());
    Result<GroupedValidationResult> grouped =
        ValidateGrouped(*workload.licenses, *std::move(grouped_tree));
    GEOLIC_CHECK(grouped.ok());
    const double proposed_vt_ms = grouped->validation_micros / 1000.0;
    const double proposed_total_ms =
        (grouped->validation_micros + grouped->division_micros) / 1000.0;

    if (n <= max_baseline_n) {
      Result<ValidationTree> baseline_tree =
          ValidationTree::BuildFromLog(workload.log);
      GEOLIC_CHECK(baseline_tree.ok());
      Stopwatch baseline_timer;
      Result<ValidationReport> baseline = RunExhaustive(
          *baseline_tree, workload.licenses->AggregateCounts());
      const double baseline_ms = baseline_timer.ElapsedMillis();
      GEOLIC_CHECK(baseline.ok());
      std::printf("%4d  %8zu  %7d  %16.3f  %16.3f  %18.3f  %8.1fx\n", n,
                  workload.log.size(), grouped->group_count, baseline_ms,
                  proposed_vt_ms, proposed_total_ms,
                  baseline_ms / (proposed_total_ms > 0 ? proposed_total_ms
                                                       : 1e-9));
    } else {
      std::printf("%4d  %8zu  %7d  %16s  %16.3f  %18.3f  %9s\n", n,
                  workload.log.size(), grouped->group_count, "-",
                  proposed_vt_ms, proposed_total_ms, "-");
    }
  }
  std::printf("# expected shape: baseline grows ~2^N; proposed tracks "
              "sum(2^N_k); DT sliver vanishes for N > 2\n");
  return 0;
}
