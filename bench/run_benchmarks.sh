#!/usr/bin/env bash
# Runs the JSON-emitting ablation benches and collects their outputs.
#
#   bench/run_benchmarks.sh [build_dir] [out_dir]
#
# build_dir defaults to ./build (must already contain compiled bench
# binaries); out_dir defaults to ./bench_out. Produces:
#   BENCH_simd.json              — ablation_flat_tree, incl. the
#                                  SIMD-vs-scalar batch A/B rows and the
#                                  active kernel tier
#   BENCH_concurrency.json       — ablation_service_concurrency thread
#                                  sweep, batched admission, tracing
#                                  overhead
#   BENCH_dynamic_grouping.json  — incremental vs recompute grouping, plus
#                                  the add/remove churn path
#   BENCH_online.json            — grouped vs full-scope per-issuance cost
#   BENCH_lifecycle.json         — admission p99 under a reconfiguration
#                                  storm vs quiescent (5x self-check)
# Sizes default to the CI smoke shape; override via FLAT_TREE_FLAGS /
# CONCURRENCY_FLAGS / DYNAMIC_GROUPING_FLAGS / ONLINE_FLAGS /
# LIFECYCLE_FLAGS. Every bench self-checks equivalence before timing and
# exits nonzero on any mismatch, so a green run is also a correctness gate.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_out}"
FLAT_TREE_FLAGS="${FLAT_TREE_FLAGS:---max_n=10 --records=1500 --max_wide_n=128}"
CONCURRENCY_FLAGS="${CONCURRENCY_FLAGS:---groups=8 --requests=20000}"
DYNAMIC_GROUPING_FLAGS="${DYNAMIC_GROUPING_FLAGS:---reps=3}"
ONLINE_FLAGS="${ONLINE_FLAGS:---issues=1000 --reps=2}"
LIFECYCLE_FLAGS="${LIFECYCLE_FLAGS:---groups=8 --requests=20000 --reps=3}"

if [[ ! -x "${BUILD_DIR}/bench/ablation_flat_tree" ]]; then
  echo "error: ${BUILD_DIR}/bench/ablation_flat_tree not built" >&2
  echo "hint: cmake --build ${BUILD_DIR} --target" \
       "ablation_flat_tree ablation_service_concurrency" \
       "ablation_dynamic_grouping ablation_online ablation_lifecycle" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

echo "== ablation_flat_tree ${FLAT_TREE_FLAGS}"
# shellcheck disable=SC2086
"${BUILD_DIR}/bench/ablation_flat_tree" ${FLAT_TREE_FLAGS} \
  "--json_out=${OUT_DIR}/BENCH_simd.json"

echo "== ablation_service_concurrency ${CONCURRENCY_FLAGS}"
# shellcheck disable=SC2086
"${BUILD_DIR}/bench/ablation_service_concurrency" ${CONCURRENCY_FLAGS} \
  "--json_out=${OUT_DIR}/BENCH_concurrency.json"

echo "== ablation_dynamic_grouping ${DYNAMIC_GROUPING_FLAGS}"
# shellcheck disable=SC2086
"${BUILD_DIR}/bench/ablation_dynamic_grouping" ${DYNAMIC_GROUPING_FLAGS} \
  "--json_out=${OUT_DIR}/BENCH_dynamic_grouping.json"

echo "== ablation_online ${ONLINE_FLAGS}"
# shellcheck disable=SC2086
"${BUILD_DIR}/bench/ablation_online" ${ONLINE_FLAGS} \
  "--json_out=${OUT_DIR}/BENCH_online.json"

echo "== ablation_lifecycle ${LIFECYCLE_FLAGS}"
# shellcheck disable=SC2086
"${BUILD_DIR}/bench/ablation_lifecycle" ${LIFECYCLE_FLAGS} \
  "--json_out=${OUT_DIR}/BENCH_lifecycle.json"

echo "== wrote:"
ls -l "${OUT_DIR}"/BENCH_*.json
