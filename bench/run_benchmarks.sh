#!/usr/bin/env bash
# Runs the JSON-emitting ablation benches and collects their outputs.
#
#   bench/run_benchmarks.sh [build_dir] [out_dir]
#
# build_dir defaults to ./build (must already contain compiled bench
# binaries); out_dir defaults to ./bench_out. Produces:
#   BENCH_simd.json         — ablation_flat_tree, incl. the SIMD-vs-scalar
#                             batch A/B rows and the active kernel tier
#   BENCH_concurrency.json  — ablation_service_concurrency thread sweep,
#                             batched admission, tracing overhead
# Sizes default to the CI smoke shape; override via FLAT_TREE_FLAGS /
# CONCURRENCY_FLAGS. Every bench self-checks equivalence before timing and
# exits nonzero on any mismatch, so a green run is also a correctness gate.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_out}"
FLAT_TREE_FLAGS="${FLAT_TREE_FLAGS:---max_n=10 --records=1500 --max_wide_n=128}"
CONCURRENCY_FLAGS="${CONCURRENCY_FLAGS:---groups=8 --requests=20000}"

if [[ ! -x "${BUILD_DIR}/bench/ablation_flat_tree" ]]; then
  echo "error: ${BUILD_DIR}/bench/ablation_flat_tree not built" >&2
  echo "hint: cmake --build ${BUILD_DIR} --target" \
       "ablation_flat_tree ablation_service_concurrency" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

echo "== ablation_flat_tree ${FLAT_TREE_FLAGS}"
# shellcheck disable=SC2086
"${BUILD_DIR}/bench/ablation_flat_tree" ${FLAT_TREE_FLAGS} \
  "--json_out=${OUT_DIR}/BENCH_simd.json"

echo "== ablation_service_concurrency ${CONCURRENCY_FLAGS}"
# shellcheck disable=SC2086
"${BUILD_DIR}/bench/ablation_service_concurrency" ${CONCURRENCY_FLAGS} \
  "--json_out=${OUT_DIR}/BENCH_concurrency.json"

echo "== wrote:"
ls -l "${OUT_DIR}"/BENCH_*.json
