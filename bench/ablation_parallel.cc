// Ablation: sequential vs multi-threaded offline validation. The equation
// range of Algorithm 2 shards trivially (the tree is read-only), so the
// exhaustive baseline scales with cores; grouped validation parallelises
// across groups. The interesting observation: parallelising the *baseline*
// still cannot compete with grouping — removing 2^N work beats spreading
// it over k cores.
#include <cstdio>
#include <utility>

#include "validation/validate.h"
#include "bench/bench_util.h"
#include "core/parallel_validator.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace geolic {
namespace {

// Adapters over the Validate facade (the pre-facade bare entry points
// ValidateExhaustive/ValidateExhaustiveLimited/ValidateZeta were folded
// into Validate; see validation/validate.h).
Result<ValidationReport> RunExhaustive(
    const ValidationTree& tree, const std::vector<int64_t>& aggregates) {
  ValidateOptions options;
  options.mode = ValidationMode::kExhaustive;
  Result<ValidationOutcome> outcome = Validate(tree, aggregates, options);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->report);
}

}  // namespace
}  // namespace geolic

int main(int argc, char** argv) {
  using namespace geolic;         // NOLINT
  using namespace geolic::bench;  // NOLINT

  Flags flags(argc, argv);
  const int max_n = flags.Int("max_n", 22);
  const int step = flags.Int("step", 2);
  const int threads = flags.Int("threads",
                                ThreadPool::DefaultThreadCount());
  flags.Finish();

  std::printf("# Ablation: sequential vs parallel validation (%d threads)\n",
              threads);
  std::printf("%4s  %14s  %14s  %10s  %14s  %14s\n", "N", "seq_base_ms",
              "par_base_ms", "speedup", "seq_grouped_ms", "par_grouped_ms");

  for (int n = 10; n <= max_n; n += step) {
    Workload workload = PaperWorkload(n);
    const std::vector<int64_t> aggregates =
        workload.licenses->AggregateCounts();

    Result<ValidationTree> tree = ValidationTree::BuildFromLog(workload.log);
    GEOLIC_CHECK(tree.ok());

    Stopwatch seq_timer;
    Result<ValidationReport> sequential =
        RunExhaustive(*tree, aggregates);
    const double seq_ms = seq_timer.ElapsedMillis();
    GEOLIC_CHECK(sequential.ok());

    Stopwatch par_timer;
    Result<ValidationReport> parallel =
        ValidateExhaustiveParallel(*tree, aggregates, threads);
    const double par_ms = par_timer.ElapsedMillis();
    GEOLIC_CHECK(parallel.ok());
    GEOLIC_CHECK(parallel->violations.size() ==
                 sequential->violations.size());

    Result<ValidationTree> grouped_tree1 =
        ValidationTree::BuildFromLog(workload.log);
    Result<ValidationTree> grouped_tree2 =
        ValidationTree::BuildFromLog(workload.log);
    GEOLIC_CHECK(grouped_tree1.ok());
    GEOLIC_CHECK(grouped_tree2.ok());

    Stopwatch seq_grouped_timer;
    Result<GroupedValidationResult> seq_grouped =
        ValidateGrouped(*workload.licenses, *std::move(grouped_tree1));
    const double seq_grouped_ms = seq_grouped_timer.ElapsedMillis();
    GEOLIC_CHECK(seq_grouped.ok());

    Stopwatch par_grouped_timer;
    Result<GroupedValidationResult> par_grouped = ValidateGroupedParallel(
        *workload.licenses, *std::move(grouped_tree2), threads);
    const double par_grouped_ms = par_grouped_timer.ElapsedMillis();
    GEOLIC_CHECK(par_grouped.ok());

    std::printf("%4d  %14.3f  %14.3f  %9.2fx  %14.3f  %14.3f\n", n, seq_ms,
                par_ms, par_ms > 0 ? seq_ms / par_ms : 0.0, seq_grouped_ms,
                par_grouped_ms);
  }
  std::printf("# expected shape: parallel baseline ≈ cores× faster; grouped "
              "(even sequential) beats both by orders of magnitude\n");
  return 0;
}
