// Ablation: the paper's motivation (Example 1) at scale — how many
// permission counts are wrongly rejected when the validation authority
// greedily charges a single redistribution license per issuance, versus
// equation-based validation (which is exactly the feasibility criterion).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/greedy_validator.h"
#include "core/online_validator.h"

int main(int argc, char** argv) {
  using namespace geolic;         // NOLINT
  using namespace geolic::bench;  // NOLINT

  Flags flags(argc, argv);
  const int n = flags.Int("n", 12);
  const int issues = flags.Int("issues", 4000);
  flags.Finish();

  std::printf("# Ablation: greedy single-license charging vs equation-based "
              "validation (N=%d, %d issuance attempts)\n", n, issues);
  std::printf("%20s  %12s  %14s  %12s\n", "validator", "accepted",
              "counts_sold", "utilisation");

  // Dense overlap (large satisfying sets), chunky issue counts relative to
  // budgets: the regime where charging a single license strands budget.
  WorkloadConfig config = PaperSweepConfig(n, 515);
  config.num_records = 0;
  config.num_clusters = 2;
  config.min_extent = 0.55;
  config.max_extent = 0.95;
  config.aggregate_min = 1000;
  config.aggregate_max = 3000;
  config.usage_count_min = 200;
  config.usage_count_max = 900;
  WorkloadGenerator generator(config);
  Result<Workload> workload = generator.GenerateLicensesOnly();
  GEOLIC_CHECK(workload.ok());
  int64_t total_budget = 0;
  for (int64_t aggregate : workload->licenses->AggregateCounts()) {
    total_budget += aggregate;
  }

  // Shared issuance stream.
  std::vector<License> stream;
  {
    Rng rng(99);
    for (int i = 0; i < issues; ++i) {
      const int parent = static_cast<int>(
          rng.UniformInt(0, workload->licenses->size() - 1));
      stream.push_back(generator.DrawUsageLicense(*workload, parent, &rng,
                                                  i));
    }
  }

  // Equation-based reference.
  {
    Result<OnlineValidator> validator =
        OnlineValidator::Create(workload->licenses.get());
    GEOLIC_CHECK(validator.ok());
    int accepted = 0;
    int64_t counts = 0;
    for (const License& usage : stream) {
      const Result<OnlineDecision> decision = validator->TryIssue(usage);
      GEOLIC_CHECK(decision.ok());
      if (decision->accepted()) {
        ++accepted;
        counts += usage.aggregate_count();
      }
    }
    std::printf("%20s  %12d  %14lld  %11.1f%%\n", "equations", accepted,
                static_cast<long long>(counts),
                100.0 * static_cast<double>(counts) /
                    static_cast<double>(total_budget));
  }

  for (GreedyPolicy policy :
       {GreedyPolicy::kFirst, GreedyPolicy::kRandom,
        GreedyPolicy::kLargestRemaining, GreedyPolicy::kSmallestRemaining}) {
    Result<GreedyOnlineValidator> validator =
        GreedyOnlineValidator::Create(workload->licenses.get(), policy, 99);
    GEOLIC_CHECK(validator.ok());
    int accepted = 0;
    for (const License& usage : stream) {
      const Result<GreedyDecision> decision = validator->TryIssue(usage);
      GEOLIC_CHECK(decision.ok());
      if (decision->accepted) {
        ++accepted;
      }
    }
    std::printf("%20s  %12d  %14lld  %11.1f%%\n",
                (std::string("greedy/") + GreedyPolicyName(policy)).c_str(),
                accepted,
                static_cast<long long>(validator->accepted_counts()),
                100.0 * static_cast<double>(validator->accepted_counts()) /
                    static_cast<double>(total_budget));
  }
  std::printf("# expected shape: equation-based validation sells the most "
              "counts; greedy policies strand budget (the paper's Example 1 "
              "loss, measured)\n");
  return 0;
}
