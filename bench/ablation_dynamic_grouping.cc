// Ablation: incremental group maintenance (union-find DynamicGrouping)
// versus full recomputation (overlap graph + DFS) on every license
// acquisition — the maintenance question behind the paper's figure 6.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/dynamic_grouping.h"
#include "core/overlap_graph.h"
#include "geometry/hyper_rect.h"
#include "util/random.h"

namespace geolic {
namespace {

std::vector<HyperRect> RandomRects(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<HyperRect> rects;
  rects.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<ConstraintRange> dims;
    for (int d = 0; d < 4; ++d) {
      const int64_t lo = rng.UniformInt(0, 900);
      dims.push_back(ConstraintRange(Interval(lo, lo + rng.UniformInt(10,
                                                                      300))));
    }
    rects.push_back(HyperRect(std::move(dims)));
  }
  return rects;
}

// Cost of maintaining groups across a full acquisition history of N
// licenses, incrementally.
void BM_GroupingIncremental(benchmark::State& state) {
  const std::vector<HyperRect> rects =
      RandomRects(static_cast<int>(state.range(0)), 99);
  for (auto _ : state) {
    DynamicGrouping grouping;
    for (const HyperRect& rect : rects) {
      GEOLIC_CHECK(grouping.AddLicense(rect).ok());
      benchmark::DoNotOptimize(grouping.group_count());
    }
  }
}
BENCHMARK(BM_GroupingIncremental)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Same history, recomputing the overlap graph + DFS after every
// acquisition (what a naive implementation of the paper does).
void BM_GroupingRecompute(benchmark::State& state) {
  const std::vector<HyperRect> rects =
      RandomRects(static_cast<int>(state.range(0)), 99);
  for (auto _ : state) {
    std::vector<HyperRect> prefix;
    for (const HyperRect& rect : rects) {
      prefix.push_back(rect);
      const ComponentSet components =
          FindComponentsDfs(BuildOverlapGraphFromRects(prefix));
      benchmark::DoNotOptimize(components.count());
    }
  }
}
BENCHMARK(BM_GroupingRecompute)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace geolic

BENCHMARK_MAIN();
