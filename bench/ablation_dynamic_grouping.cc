// Ablation: incremental group maintenance (union-find DynamicGrouping)
// versus full recomputation (overlap graph + DFS) on every license
// acquisition — the maintenance question behind the paper's figure 6 —
// plus the removal path (dense renumbering, Algorithm 5) under an
// add/remove churn mix. Machine-readable: --json_out=<path>.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "bench/bench_util.h"
#include "core/dynamic_grouping.h"
#include "core/overlap_graph.h"
#include "geometry/hyper_rect.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace {

using namespace geolic;  // NOLINT

std::vector<HyperRect> RandomRects(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<HyperRect> rects;
  rects.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<ConstraintRange> dims;
    for (int d = 0; d < 4; ++d) {
      const int64_t lo = rng.UniformInt(0, 900);
      dims.push_back(ConstraintRange(Interval(lo, lo + rng.UniformInt(10,
                                                                      300))));
    }
    rects.push_back(HyperRect(std::move(dims)));
  }
  return rects;
}

// Full acquisition history of `rects`, maintained incrementally. Returns
// elapsed nanos; `sink` defeats dead-code elimination.
int64_t RunIncremental(const std::vector<HyperRect>& rects, int* sink) {
  Stopwatch timer;
  DynamicGrouping grouping;
  for (const HyperRect& rect : rects) {
    GEOLIC_CHECK(grouping.AddLicense(rect).ok());
    *sink += grouping.group_count();
  }
  return timer.ElapsedNanos();
}

// Same history, recomputing overlap graph + DFS after every acquisition
// (what a naive implementation of the paper does).
int64_t RunRecompute(const std::vector<HyperRect>& rects, int* sink) {
  Stopwatch timer;
  std::vector<HyperRect> prefix;
  for (const HyperRect& rect : rects) {
    prefix.push_back(rect);
    const ComponentSet components =
        FindComponentsDfs(BuildOverlapGraphFromRects(prefix));
    *sink += components.count();
  }
  return timer.ElapsedNanos();
}

// Churn: keep the live set around n/2, alternating adds (from a rotating
// pool) with removals — exercises the dense-renumbering removal path the
// live lifecycle (revoke/expire) rides on.
int64_t RunChurn(const std::vector<HyperRect>& rects, int steps, int* sink) {
  Rng rng(4242);
  Stopwatch timer;
  DynamicGrouping grouping;
  int live = 0;
  size_t next = 0;
  const int target = std::max(2, static_cast<int>(rects.size()) / 2);
  for (int step = 0; step < steps; ++step) {
    const bool add = live == 0 || (rng.Bernoulli(0.5) && live < 2 * target);
    if (add) {
      GEOLIC_CHECK(grouping.AddLicense(rects[next % rects.size()]).ok());
      ++next;
      ++live;
    } else {
      const int victim = static_cast<int>(rng.UniformIndex(
          static_cast<size_t>(live)));
      GEOLIC_CHECK(grouping.RemoveLicense(victim).ok());
      --live;
    }
    *sink += grouping.group_count();
  }
  return timer.ElapsedNanos();
}

}  // namespace

int main(int argc, char** argv) {
  using geolic::bench::Flags;
  using geolic::bench::JsonOut;

  Flags flags(argc, argv);
  const int reps = std::max(1, flags.Int("reps", 5));
  const int churn_steps = std::max(10, flags.Int("churn_steps", 512));
  JsonOut json(flags, "ablation_dynamic_grouping");
  flags.Finish();

  std::printf("# Ablation: incremental grouping vs full recomputation "
              "(4-D rects, best of %d reps)\n", reps);
  std::printf("%6s  %16s  %16s  %16s\n", "n", "incremental_ns",
              "recompute_ns", "churn_ns_per_op");

  int sink = 0;
  for (const int n : {8, 16, 32, 64}) {
    const std::vector<HyperRect> rects = RandomRects(n, 99);
    int64_t incremental_ns = std::numeric_limits<int64_t>::max();
    int64_t recompute_ns = std::numeric_limits<int64_t>::max();
    int64_t churn_ns = std::numeric_limits<int64_t>::max();
    for (int rep = 0; rep < reps; ++rep) {
      incremental_ns = std::min(incremental_ns, RunIncremental(rects, &sink));
      recompute_ns = std::min(recompute_ns, RunRecompute(rects, &sink));
      churn_ns = std::min(churn_ns, RunChurn(rects, churn_steps, &sink));
    }
    const double churn_per_op =
        static_cast<double>(churn_ns) / churn_steps;
    std::printf("%6d  %16ld  %16ld  %16.1f\n", n,
                static_cast<long>(incremental_ns),
                static_cast<long>(recompute_ns), churn_per_op);
    json.Row([&](JsonWriter& out) {
      out.KeyValue("n", static_cast<int64_t>(n));
      out.KeyValue("incremental_ns", incremental_ns);
      out.KeyValue("recompute_ns", recompute_ns);
      out.KeyValue("churn_steps", static_cast<int64_t>(churn_steps));
      out.KeyValue("churn_ns_per_op", churn_per_op);
      out.KeyValue("speedup", incremental_ns > 0
                                  ? static_cast<double>(recompute_ns) /
                                        static_cast<double>(incremental_ns)
                                  : 0.0);
    });
  }
  std::printf("# expected shape: incremental stays near-linear in N while "
              "recompute grows ~N^3 across the history; sink=%d\n", sink);
  json.Write();
  return 0;
}
