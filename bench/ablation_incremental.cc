// Ablation: periodic full offline audits vs incremental auditing. The
// paper's authority re-validates the whole log every period
// (Σ_k 2^{N_k} − 1 equations each time); the IncrementalAuditor
// re-evaluates only equations whose LHS grew since the last batch.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/grouped_validator.h"
#include "core/incremental_auditor.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace geolic;         // NOLINT
  using namespace geolic::bench;  // NOLINT

  Flags flags(argc, argv);
  const int n = flags.Int("n", 20);
  const int batches = flags.Int("batches", 50);
  flags.Finish();

  Workload workload = PaperWorkload(n);
  const auto& records = workload.log.records();
  const size_t batch_size = records.size() / static_cast<size_t>(batches);

  std::printf("# Ablation: periodic full audits vs incremental auditing "
              "(N=%d, %zu records in %d batches)\n",
              n, records.size(), batches);

  // Strategy A: full grouped audit after every batch.
  double full_ms = 0.0;
  uint64_t full_equations = 0;
  {
    LogStore accumulated;
    for (int b = 0; b < batches; ++b) {
      const size_t begin = static_cast<size_t>(b) * batch_size;
      const size_t end = b + 1 == batches
                             ? records.size()
                             : begin + batch_size;
      for (size_t i = begin; i < end; ++i) {
        GEOLIC_CHECK(accumulated.Append(records[i]).ok());
      }
      Stopwatch timer;
      Result<GroupedValidationResult> audit =
          ValidateGroupedFromLog(*workload.licenses, accumulated);
      GEOLIC_CHECK(audit.ok());
      full_ms += timer.ElapsedMillis();
      full_equations += audit->report.equations_evaluated;
    }
  }

  // Strategy B: incremental auditor.
  double incremental_ms = 0.0;
  uint64_t incremental_equations = 0;
  {
    Result<IncrementalAuditor> auditor =
        IncrementalAuditor::Create(workload.licenses.get());
    GEOLIC_CHECK(auditor.ok());
    for (int b = 0; b < batches; ++b) {
      const size_t begin = static_cast<size_t>(b) * batch_size;
      const size_t end = b + 1 == batches
                             ? records.size()
                             : begin + batch_size;
      const std::vector<LogRecord> batch(
          records.begin() + static_cast<long>(begin),
          records.begin() + static_cast<long>(end));
      Stopwatch timer;
      Result<ValidationReport> report = auditor->IngestBatch(batch);
      GEOLIC_CHECK(report.ok());
      incremental_ms += timer.ElapsedMillis();
    }
    incremental_equations = auditor->equations_evaluated_total();
  }

  std::printf("%14s  %14s  %12s\n", "strategy", "equations", "total_ms");
  std::printf("%14s  %14llu  %12.3f\n", "full-per-batch",
              static_cast<unsigned long long>(full_equations), full_ms);
  std::printf("%14s  %14llu  %12.3f\n", "incremental",
              static_cast<unsigned long long>(incremental_equations),
              incremental_ms);
  std::printf("# expected shape: incremental wins on time (no per-batch "
              "tree rebuild + division) and skips equations untouched by a "
              "batch; both wins grow with audit frequency\n");
  return 0;
}
