// Ablation: instance-based validation backends — O(N) linear scan versus
// R-tree candidate lookup with exact confirmation (DESIGN.md design
// choice). At single-content scale (N ≤ 64) the linear scan usually wins;
// the R-tree pays off on large raw catalogues, benchmarked here at the box
// level up to 16384 entries.
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "core/instance_validator.h"
#include "geometry/rtree.h"
#include "licensing/license_catalog.h"
#include "util/random.h"
#include "workload/workload.h"

namespace geolic {
namespace {

struct LicenseFixture {
  explicit LicenseFixture(int n) {
    WorkloadConfig config = PaperSweepConfig(n);
    config.num_records = 0;
    WorkloadGenerator generator(config);
    Result<Workload> generated = generator.GenerateLicensesOnly();
    GEOLIC_CHECK(generated.ok());
    workload = std::make_unique<Workload>(*std::move(generated));
    Rng rng(42);
    WorkloadGenerator drawer(config);
    for (int i = 0; i < 256; ++i) {
      const int parent = static_cast<int>(
          rng.UniformInt(0, workload->licenses->size() - 1));
      queries.push_back(drawer.DrawUsageLicense(*workload, parent, &rng, i));
    }
  }
  std::unique_ptr<Workload> workload;
  std::vector<License> queries;
};

void BM_LinearInstanceLookup(benchmark::State& state) {
  const LicenseFixture fixture(static_cast<int>(state.range(0)));
  const LinearInstanceValidator validator(fixture.workload->licenses.get());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        validator.SatisfyingSet(fixture.queries[i % fixture.queries.size()]));
    ++i;
  }
}
BENCHMARK(BM_LinearInstanceLookup)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_RtreeInstanceLookup(benchmark::State& state) {
  const LicenseFixture fixture(static_cast<int>(state.range(0)));
  Result<RtreeInstanceValidator> validator =
      RtreeInstanceValidator::Build(fixture.workload->licenses.get());
  GEOLIC_CHECK(validator.ok());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(validator->SatisfyingSet(
        fixture.queries[i % fixture.queries.size()]));
    ++i;
  }
}
BENCHMARK(BM_RtreeInstanceLookup)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Raw catalogue scale: thousands of boxes, point-ish queries.
struct BoxFixture {
  explicit BoxFixture(int n) : tree(4) {
    Rng rng(7);
    for (int i = 0; i < n; ++i) {
      IntervalBox box;
      for (int d = 0; d < 4; ++d) {
        const int64_t lo = rng.UniformInt(0, 999900);
        box.dims.push_back(Interval(lo, lo + rng.UniformInt(10, 5000)));
      }
      boxes.push_back(box);
      GEOLIC_CHECK(tree.Insert(box, i).ok());
    }
    for (int q = 0; q < 256; ++q) {
      IntervalBox box;
      for (int d = 0; d < 4; ++d) {
        const int64_t lo = rng.UniformInt(0, 999990);
        box.dims.push_back(Interval(lo, lo + rng.UniformInt(1, 100)));
      }
      queries.push_back(box);
    }
  }
  Rtree tree;
  std::vector<IntervalBox> boxes;
  std::vector<IntervalBox> queries;
};

void BM_LinearBoxContaining(benchmark::State& state) {
  const BoxFixture fixture(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const IntervalBox& query = fixture.queries[i % fixture.queries.size()];
    std::vector<int64_t> hits;
    for (size_t b = 0; b < fixture.boxes.size(); ++b) {
      if (fixture.boxes[b].Contains(query)) {
        hits.push_back(static_cast<int64_t>(b));
      }
    }
    benchmark::DoNotOptimize(hits);
    ++i;
  }
}
BENCHMARK(BM_LinearBoxContaining)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384);

void BM_RtreeBoxContaining(benchmark::State& state) {
  const BoxFixture fixture(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.tree.FindContaining(
        fixture.queries[i % fixture.queries.size()]));
    ++i;
  }
}
BENCHMARK(BM_RtreeBoxContaining)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

}  // namespace
}  // namespace geolic

BENCHMARK_MAIN();
