// Ablation: the equation hot path across tree layouts. Every offline
// validator reduces to SumSubsets calls; this harness evaluates all
// 2^N − 1 validation equations against
//   * pointer  — the recursive ref [10] walk over heap-scattered nodes,
//   * flat     — the same descent rule on the preorder arena (layout win),
//   * pruned   — the arena plus subtree_mask/subtree_sum accelerators
//                (Theorem-1 skips + covered-subtree summarization),
//   * batch    — pruned, issued through SumSubsetsBatch as the validators
//                do (cache-resident arena across consecutive equations),
// sweeping N, log size, and overlap density. Before timing, every engine
// is checked equation-by-equation against the pointer tree — the bench
// aborts on any mismatch.
//
// The default workload is the figure-7 shape at N=16 with dense overlap
// (single cluster, high extents): the acceptance row printed last. Tiny CI
// runs: --max_n=10 --records=1500. Machine-readable: --json_out=<path>.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "util/stopwatch.h"
#include "validation/flat_tree.h"
#include "validation/validation_tree.h"

namespace {

using namespace geolic;         // NOLINT
using namespace geolic::bench;  // NOLINT

// Figure-7-style workload with a single overlap arena; `extent` sets the
// overlap density, `records` the log size (0 = paper interpolation).
LogStore DenseLog(int n, int records, double extent, uint64_t seed = 2010) {
  WorkloadConfig config = PaperSweepConfig(n, seed);
  config.num_clusters = 1;
  config.min_extent = extent * 0.6;
  config.max_extent = extent;
  if (records > 0) {
    config.num_records = records;
  }
  WorkloadGenerator generator(config);
  Result<Workload> workload = generator.Generate();
  GEOLIC_CHECK(workload.ok());
  return std::move(workload->log);
}

struct EngineTiming {
  double millis = 0.0;
  int64_t checksum = 0;
  uint64_t nodes = 0;
};

template <typename Eval>
EngineTiming TimeAllEquations(int n, Eval&& eval) {
  const LicenseMask full = FullMask(n);
  EngineTiming timing;
  Stopwatch timer;
  for (LicenseMask set = 1;; ++set) {
    timing.checksum += eval(set, &timing.nodes);
    if (set == full) {
      break;
    }
  }
  timing.millis = timer.ElapsedMillis();
  return timing;
}

EngineTiming TimeBatched(int n, const FlatValidationTree& flat) {
  constexpr size_t kBatch = 256;
  const LicenseMask full = FullMask(n);
  EngineTiming timing;
  LicenseMask sets[kBatch];
  int64_t sums[kBatch];
  Stopwatch timer;
  LicenseMask next = 1;
  bool exhausted = false;
  while (!exhausted) {
    size_t batch = 0;
    while (batch < kBatch) {
      sets[batch++] = next;
      if (next == full) {
        exhausted = true;
        break;
      }
      ++next;
    }
    flat.SumSubsetsBatch({sets, batch}, {sums, batch}, &timing.nodes);
    for (size_t k = 0; k < batch; ++k) {
      timing.checksum += sums[k];
    }
  }
  timing.millis = timer.ElapsedMillis();
  return timing;
}

struct RowResult {
  double pointer_ms = 0.0;
  double flat_ms = 0.0;
  double pruned_ms = 0.0;
  double batch_ms = 0.0;
  uint64_t pointer_nodes = 0;
  uint64_t pruned_nodes = 0;
  double pruned_speedup = 0.0;
};

// Verifies equivalence equation-by-equation, then times each engine.
RowResult RunRow(const char* label, int n, const LogStore& log,
                 JsonOut* json) {
  Result<ValidationTree> tree = ValidationTree::BuildFromLog(log);
  GEOLIC_CHECK(tree.ok());
  const FlatValidationTree flat = FlatValidationTree::Compile(*tree);
  GEOLIC_CHECK(flat.NodeCount() == tree->NodeCount());
  GEOLIC_CHECK(flat.TotalCount() == tree->TotalCount());
  GEOLIC_CHECK(flat.PresentLicenses() == tree->PresentLicenses());

  // Equivalence sweep (untimed): every engine, every equation.
  const LicenseMask full = FullMask(n);
  for (LicenseMask set = 1;; ++set) {
    const int64_t reference = tree->SumSubsets(set);
    GEOLIC_CHECK(flat.SumSubsetsNoAccel(set) == reference);
    GEOLIC_CHECK(flat.SumSubsets(set) == reference);
    if (set == full) {
      break;
    }
  }

  RowResult row;
  const EngineTiming pointer =
      TimeAllEquations(n, [&tree](LicenseMask set, uint64_t* nodes) {
        return tree->SumSubsets(set, nodes);
      });
  const EngineTiming no_accel =
      TimeAllEquations(n, [&flat](LicenseMask set, uint64_t* nodes) {
        return flat.SumSubsetsNoAccel(set, nodes);
      });
  const EngineTiming pruned =
      TimeAllEquations(n, [&flat](LicenseMask set, uint64_t* nodes) {
        return flat.SumSubsets(set, nodes);
      });
  const EngineTiming batched = TimeBatched(n, flat);
  GEOLIC_CHECK(pointer.checksum == no_accel.checksum);
  GEOLIC_CHECK(pointer.checksum == pruned.checksum);
  GEOLIC_CHECK(pointer.checksum == batched.checksum);

  row.pointer_ms = pointer.millis;
  row.flat_ms = no_accel.millis;
  row.pruned_ms = pruned.millis;
  row.batch_ms = batched.millis;
  row.pointer_nodes = pointer.nodes;
  row.pruned_nodes = pruned.nodes;
  row.pruned_speedup =
      batched.millis > 0 ? pointer.millis / batched.millis : 0.0;

  std::printf("%-18s %3d %8zu %9zu  %9.2f %9.2f %9.2f %9.2f  %7.2fx  "
              "%12llu %12llu\n",
              label, n, log.size(), flat.NodeCount(), pointer.millis,
              no_accel.millis, pruned.millis, batched.millis,
              row.pruned_speedup,
              static_cast<unsigned long long>(pointer.nodes),
              static_cast<unsigned long long>(pruned.nodes));
  if (json != nullptr) {
    json->Row([&](JsonWriter& out) {
      out.KeyValue("label", label);
      out.KeyValue("n", static_cast<int64_t>(n));
      out.KeyValue("records", static_cast<uint64_t>(log.size()));
      out.KeyValue("tree_nodes", static_cast<uint64_t>(flat.NodeCount()));
      out.KeyValue("pointer_ms", pointer.millis);
      out.KeyValue("flat_ms", no_accel.millis);
      out.KeyValue("pruned_ms", pruned.millis);
      out.KeyValue("batch_ms", batched.millis);
      out.KeyValue("pointer_nodes", pointer.nodes);
      out.KeyValue("pruned_nodes", pruned.nodes);
      out.KeyValue("speedup_pruned_batch", row.pruned_speedup);
      out.KeyValue("equivalence", true);  // GEOLIC_CHECKed above.
    });
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_n = IntFlag(argc, argv, "max_n", 16);
  const int records = IntFlag(argc, argv, "records", 0);
  JsonOut json(argc, argv, "ablation_flat_tree");

  std::printf("# Ablation: pointer vs flat vs flat+pruned equation "
              "evaluation (all 2^N-1 equations per row)\n");
  std::printf("%-18s %3s %8s %9s  %9s %9s %9s %9s  %8s  %12s %12s\n",
              "sweep", "N", "records", "nodes", "ptr_ms", "flat_ms",
              "prune_ms", "batch_ms", "speedup", "ptr_visits",
              "prune_visits");

  // N sweep at dense overlap (the figure-7 x-axis).
  for (int n = 8; n <= max_n; n += 4) {
    const LogStore log = DenseLog(n, records, 0.95);
    RunRow("n_sweep", n, log, &json);
  }

  // Log-size sweep at the densest setting.
  const int focus_n = std::min(16, max_n);
  for (const int size : {2000, 10000, 30000}) {
    const LogStore log = DenseLog(focus_n, records > 0 ? records : size,
                                  0.95, 3000 + static_cast<uint64_t>(size));
    RunRow("log_sweep", focus_n, log, &json);
    if (records > 0) {
      break;  // Tiny CI runs pin the log size; one row is enough.
    }
  }

  // Overlap-density sweep: sparse logs have few multi-license sets, so
  // pruning's covered-subtree shortcut matters less; dense logs are where
  // the win lives.
  for (const double extent : {0.2, 0.5, 0.95}) {
    const LogStore log = DenseLog(focus_n, records, extent);
    RunRow("density_sweep", focus_n, log, &json);
  }

  // The acceptance row: figure-7-style default (N=16 capped by --max_n,
  // dense overlap, paper-interpolated log size).
  const LogStore log = DenseLog(focus_n, records, 0.95);
  const RowResult row = RunRow("default_n16_dense", focus_n, log, &json);
  std::printf("# default workload: flat+pruned (batch) is %.2fx the pointer "
              "tree (acceptance floor: 2x); equivalence checks: PASS\n",
              row.pruned_speedup);
  json.Write();
  return 0;
}
