// Ablation: the equation hot path across tree layouts. Every offline
// validator reduces to SumSubsets calls; this harness evaluates a fixed
// equation list against
//   * pointer  — the recursive ref [10] walk over heap-scattered nodes,
//   * flat     — the same descent rule on the preorder arena (layout win),
//   * pruned   — the arena plus subtree_mask/subtree_sum accelerators
//                (Theorem-1 skips + covered-subtree summarization),
//   * batch    — pruned, issued through SumSubsetsBatch as the validators
//                do (cache-resident arena across consecutive equations),
// sweeping N, log size, and overlap density. For N ≤ 20 the list is all
// 2^N − 1 dense equations; for wide N (128/256/1024 — the multi-word
// LicenseSet path) equations are enumerated per overlap group, the way the
// grouped validators issue them. Before timing, every engine is checked
// equation-by-equation against the pointer tree, and SumSubsetsBatch
// against the forced word-sliced SumSubsetsBatchWideReference — the bench
// aborts on any mismatch.
//
// The default workload is the figure-7 shape at N=16 with dense overlap
// (single cluster, high extents): the acceptance row printed last. Tiny CI
// runs: --max_n=10 --records=1500 --max_wide_n=128. Release smoke:
// --max_wide_n=256. --max_wide_n=0 disables the wide sweep.
// Machine-readable: --json_out=<path>.
#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "graph/connected_components.h"
#include "util/cpu_dispatch.h"
#include "util/stopwatch.h"
#include "validation/flat_tree.h"
#include "validation/validation_tree.h"

namespace {

using namespace geolic;         // NOLINT
using namespace geolic::bench;  // NOLINT

// Figure-7-style workload; `clusters` spreads licenses into that many
// disjoint overlap arenas (1 = the dense figure-7 shape), `extent` sets
// the overlap density, `records` the log size (0 = paper interpolation).
LogStore DenseLog(int n, int records, double extent, uint64_t seed = 2010,
                  int clusters = 1) {
  WorkloadConfig config = PaperSweepConfig(n, seed);
  config.num_clusters = clusters;
  config.min_extent = extent * 0.6;
  config.max_extent = extent;
  if (records > 0) {
    config.num_records = records;
  }
  WorkloadGenerator generator(config);
  Result<Workload> workload = generator.Generate();
  GEOLIC_CHECK(workload.ok());
  return std::move(workload->log);
}

// All 2^n - 1 equations, ascending — the exhaustive validator's dense
// order. Only sane for small n.
std::vector<LicenseSet> DenseEquations(int n) {
  GEOLIC_CHECK(n >= 1 && n <= 20);
  const uint64_t full = (uint64_t{1} << n) - 1;
  std::vector<LicenseSet> equations;
  equations.reserve(full);
  for (uint64_t word = 1; word <= full; ++word) {
    equations.push_back(LicenseSet::FromWord(word));
  }
  return equations;
}

// Wide-N equation list: overlap groups are recovered from license
// co-occurrence in the log (union-find over each record's set — the same
// partition the grouped validators work from), then every equation of each
// group with ≤ `cap_bits` licenses is enumerated. Oversized groups fall
// back to their distinct logged sets plus the group-wide equation, and are
// counted in `*capped_groups` — the row prints how many were truncated.
std::vector<LicenseSet> GroupEquations(const LogStore& log, int n,
                                       int cap_bits, int* capped_groups,
                                       int* group_count) {
  UnionFind uf(n);
  std::vector<bool> present(static_cast<size_t>(n), false);
  for (const LogRecord& record : log.records()) {
    const int anchor = record.set.Lowest();
    for (const int index : record.set.ToIndexes()) {
      present[static_cast<size_t>(index)] = true;
      uf.Union(anchor, index);
    }
  }
  std::vector<LicenseSet> groups(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (present[static_cast<size_t>(i)]) {
      groups[static_cast<size_t>(uf.Find(i))] |= LicenseSet::Singleton(i);
    }
  }
  const auto merged = log.MergedCounts();
  std::vector<LicenseSet> equations;
  *capped_groups = 0;
  *group_count = 0;
  for (const LicenseSet& group : groups) {
    if (group.Empty()) {
      continue;
    }
    ++*group_count;
    if (group.Size() <= cap_bits) {
      for (SubsetIterator it(group); !it.Done(); it.Next()) {
        equations.push_back(it.subset());
      }
    } else {
      ++*capped_groups;
      for (const auto& [set, count] : merged) {
        if (set.IsSubsetOf(group)) {
          equations.push_back(set);
        }
      }
      equations.push_back(group);
    }
  }
  return equations;
}

struct EngineTiming {
  double millis = 0.0;
  int64_t checksum = 0;
  uint64_t nodes = 0;
};

template <typename Eval>
EngineTiming TimeEquations(std::span<const LicenseSet> equations,
                           Eval&& eval) {
  EngineTiming timing;
  Stopwatch timer;
  for (const LicenseSet& set : equations) {
    timing.checksum += eval(set, &timing.nodes);
  }
  timing.millis = timer.ElapsedMillis();
  return timing;
}

// kBaseline runs the preserved pre-SIMD word-sliced batch scan — the
// baseline the dispatched SIMD batch row is measured against. kScalarLane
// pins only the lane step to the scalar tier (the GEOLIC_FORCE_SCALAR
// shape), isolating the lane-step delta from the scan-layer one.
enum class BatchKind { kDispatched, kScalarLane, kBaseline };

EngineTiming TimeBatched(std::span<const LicenseSet> equations,
                         const FlatValidationTree& flat, BatchKind kind) {
  constexpr size_t kBatch = 256;
  int64_t sums[kBatch];
  EngineTiming timing;
  Stopwatch timer;
  for (size_t i = 0; i < equations.size(); i += kBatch) {
    const size_t batch = std::min(kBatch, equations.size() - i);
    if (kind == BatchKind::kDispatched) {
      flat.SumSubsetsBatch(equations.subspan(i, batch), {sums, batch},
                           &timing.nodes);
    } else if (kind == BatchKind::kScalarLane) {
      flat.SumSubsetsBatchScalar(equations.subspan(i, batch), {sums, batch},
                                 &timing.nodes);
    } else {
      flat.SumSubsetsBatchWordSliced(equations.subspan(i, batch),
                                     {sums, batch}, &timing.nodes);
    }
    for (size_t k = 0; k < batch; ++k) {
      timing.checksum += sums[k];
    }
  }
  timing.millis = timer.ElapsedMillis();
  return timing;
}

struct RowResult {
  double pointer_ms = 0.0;
  double flat_ms = 0.0;
  double pruned_ms = 0.0;
  double batch_ms = 0.0;
  double batch_baseline_ms = 0.0;
  uint64_t pointer_nodes = 0;
  uint64_t pruned_nodes = 0;
  double pruned_speedup = 0.0;
  // Dispatched (SIMD) batch vs the preserved word-sliced baseline — the
  // tentpole's A/B on identical equations.
  double simd_speedup = 0.0;
};

// Verifies equivalence equation-by-equation, then times each engine.
RowResult RunRow(const char* label, int n, const LogStore& log,
                 std::span<const LicenseSet> equations, JsonOut* json) {
  Result<ValidationTree> tree = ValidationTree::BuildFromLog(log);
  GEOLIC_CHECK(tree.ok());
  const FlatValidationTree flat = FlatValidationTree::Compile(*tree);
  GEOLIC_CHECK(flat.NodeCount() == tree->NodeCount());
  GEOLIC_CHECK(flat.TotalCount() == tree->TotalCount());
  GEOLIC_CHECK(flat.PresentLicenses() == tree->PresentLicenses());

  // Equivalence sweep (untimed, before any timing run): every engine,
  // every equation; the inline fast path against the forced word-sliced
  // reference; and the dispatched SIMD batch against the scalar lane
  // tier, the generic-width reference, and the preserved pre-SIMD
  // baseline — sums AND nodes_visited must be bit-identical.
  std::vector<int64_t> batch_sums(equations.size());
  std::vector<int64_t> scalar_batch_sums(equations.size());
  std::vector<int64_t> wide_sums(equations.size());
  std::vector<int64_t> baseline_sums(equations.size());
  uint64_t batch_nodes = 0;
  uint64_t scalar_batch_nodes = 0;
  uint64_t wide_nodes = 0;
  uint64_t baseline_nodes = 0;
  flat.SumSubsetsBatch(equations, batch_sums, &batch_nodes);
  flat.SumSubsetsBatchScalar(equations, scalar_batch_sums,
                             &scalar_batch_nodes);
  flat.SumSubsetsBatchWideReference(equations, wide_sums, &wide_nodes);
  flat.SumSubsetsBatchWordSliced(equations, baseline_sums, &baseline_nodes);
  GEOLIC_CHECK(batch_nodes == scalar_batch_nodes);
  GEOLIC_CHECK(batch_nodes == wide_nodes);
  GEOLIC_CHECK(batch_nodes == baseline_nodes);
  for (size_t i = 0; i < equations.size(); ++i) {
    const int64_t reference = tree->SumSubsets(equations[i]);
    GEOLIC_CHECK(flat.SumSubsetsNoAccel(equations[i]) == reference);
    GEOLIC_CHECK(flat.SumSubsets(equations[i]) == reference);
    GEOLIC_CHECK(flat.SumSubsetsWideReference(equations[i]) == reference);
    GEOLIC_CHECK(batch_sums[i] == reference);
    GEOLIC_CHECK(scalar_batch_sums[i] == reference);
    GEOLIC_CHECK(wide_sums[i] == reference);
    GEOLIC_CHECK(baseline_sums[i] == reference);
  }

  RowResult row;
  const EngineTiming pointer = TimeEquations(
      equations, [&tree](const LicenseSet& set, uint64_t* nodes) {
        return tree->SumSubsets(set, nodes);
      });
  const EngineTiming no_accel = TimeEquations(
      equations, [&flat](const LicenseSet& set, uint64_t* nodes) {
        return flat.SumSubsetsNoAccel(set, nodes);
      });
  const EngineTiming pruned = TimeEquations(
      equations, [&flat](const LicenseSet& set, uint64_t* nodes) {
        return flat.SumSubsets(set, nodes);
      });
  const EngineTiming batched =
      TimeBatched(equations, flat, BatchKind::kDispatched);
  const EngineTiming batched_baseline =
      TimeBatched(equations, flat, BatchKind::kBaseline);
  GEOLIC_CHECK(pointer.checksum == no_accel.checksum);
  GEOLIC_CHECK(pointer.checksum == pruned.checksum);
  GEOLIC_CHECK(pointer.checksum == batched.checksum);
  GEOLIC_CHECK(pointer.checksum == batched_baseline.checksum);
  GEOLIC_CHECK(batched.nodes == batched_baseline.nodes);

  row.pointer_ms = pointer.millis;
  row.flat_ms = no_accel.millis;
  row.pruned_ms = pruned.millis;
  row.batch_ms = batched.millis;
  row.batch_baseline_ms = batched_baseline.millis;
  row.pointer_nodes = pointer.nodes;
  row.pruned_nodes = pruned.nodes;
  row.pruned_speedup =
      batched.millis > 0 ? pointer.millis / batched.millis : 0.0;
  row.simd_speedup =
      batched.millis > 0 ? batched_baseline.millis / batched.millis : 0.0;

  std::printf("%-18s %4d %8zu %9zu %9zu  %9.2f %9.2f %9.2f %9.2f %9.2f  "
              "%7.2fx %7.2fx  %12llu %12llu\n",
              label, n, log.size(), flat.NodeCount(), equations.size(),
              pointer.millis, no_accel.millis, pruned.millis, batched.millis,
              batched_baseline.millis, row.pruned_speedup, row.simd_speedup,
              static_cast<unsigned long long>(pointer.nodes),
              static_cast<unsigned long long>(pruned.nodes));
  if (json != nullptr) {
    json->Row([&](JsonWriter& out) {
      out.KeyValue("label", label);
      out.KeyValue("n", static_cast<int64_t>(n));
      out.KeyValue("records", static_cast<uint64_t>(log.size()));
      out.KeyValue("tree_nodes", static_cast<uint64_t>(flat.NodeCount()));
      out.KeyValue("equations", static_cast<uint64_t>(equations.size()));
      out.KeyValue("pointer_ms", pointer.millis);
      out.KeyValue("flat_ms", no_accel.millis);
      out.KeyValue("pruned_ms", pruned.millis);
      out.KeyValue("batch_ms", batched.millis);
      out.KeyValue("batch_baseline_ms", batched_baseline.millis);
      out.KeyValue("pointer_nodes", pointer.nodes);
      out.KeyValue("pruned_nodes", pruned.nodes);
      out.KeyValue("speedup_pruned_batch", row.pruned_speedup);
      out.KeyValue("speedup_simd_batch", row.simd_speedup);
      out.KeyValue("simd_tier", simd::ActiveKernels().name);
      out.KeyValue("equivalence", true);  // GEOLIC_CHECKed above.
    });
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int max_n = flags.Int("max_n", 16);
  const int records = flags.Int("records", 0);
  const int max_wide_n = flags.Int("max_wide_n", 1024);
  JsonOut json(flags, "ablation_flat_tree");
  flags.Finish();

  std::printf("# Ablation: pointer vs flat vs flat+pruned equation "
              "evaluation (dense 2^N-1 for N<=20, per-group beyond)\n");
  std::printf("# batch kernel tier: %s (base_ms runs the preserved pre-SIMD "
              "word-sliced batch on the same equations)\n",
              simd::ActiveKernels().name);
  std::printf("%-18s %4s %8s %9s %9s  %9s %9s %9s %9s %9s  %8s %8s  "
              "%12s %12s\n",
              "sweep", "N", "records", "nodes", "equations", "ptr_ms",
              "flat_ms", "prune_ms", "batch_ms", "base_ms", "speedup",
              "simd", "ptr_visits", "prune_visits");

  // N sweep at dense overlap (the figure-7 x-axis).
  for (int n = 8; n <= max_n; n += 4) {
    const LogStore log = DenseLog(n, records, 0.95);
    RunRow("n_sweep", n, log, DenseEquations(n), &json);
  }

  // Log-size sweep at the densest setting.
  const int focus_n = std::min(16, max_n);
  for (const int size : {2000, 10000, 30000}) {
    const LogStore log = DenseLog(focus_n, records > 0 ? records : size,
                                  0.95, 3000 + static_cast<uint64_t>(size));
    RunRow("log_sweep", focus_n, log, DenseEquations(focus_n), &json);
    if (records > 0) {
      break;  // Tiny CI runs pin the log size; one row is enough.
    }
  }

  // Overlap-density sweep: sparse logs have few multi-license sets, so
  // pruning's covered-subtree shortcut matters less; dense logs are where
  // the win lives.
  for (const double extent : {0.2, 0.5, 0.95}) {
    const LogStore log = DenseLog(focus_n, records, extent);
    RunRow("density_sweep", focus_n, log, DenseEquations(focus_n), &json);
  }

  // Wide-N group sweep: the multi-word LicenseSet path. Licenses scatter
  // into ~N/8 overlap arenas, equations are enumerated per recovered
  // group — the shape the grouped validators issue at scale.
  constexpr int kGroupCapBits = 12;
  double wide128_simd_speedup = 0.0;
  for (const int n : {128, 256, 1024}) {
    if (n > max_wide_n) {
      continue;
    }
    const LogStore log =
        DenseLog(n, records > 0 ? records : 4000, 0.9, 7000, n / 8);
    int capped = 0;
    int group_count = 0;
    const std::vector<LicenseSet> equations =
        GroupEquations(log, n, kGroupCapBits, &capped, &group_count);
    char label[32];
    std::snprintf(label, sizeof(label), "wide_group_n%d", n);
    const RowResult wide_row = RunRow(label, n, log, equations, &json);
    if (n == 128) {
      wide128_simd_speedup = wide_row.simd_speedup;
    }
    if (capped > 0) {
      std::printf("#   wide_group_n%d: %d of %d groups exceeded %d licenses;"
                  " truncated to logged sets + group equation\n",
                  n, capped, group_count, kGroupCapBits);
    }
  }

  // The acceptance row: figure-7-style default (N=16 capped by --max_n,
  // dense overlap, paper-interpolated log size).
  const LogStore log = DenseLog(focus_n, records, 0.95);
  const RowResult row =
      RunRow("default_n16_dense", focus_n, log, DenseEquations(focus_n),
             &json);
  std::printf("# default workload: flat+pruned (batch) is %.2fx the pointer "
              "tree (acceptance floor: 2x); equivalence checks: PASS\n",
              row.pruned_speedup);
  if (wide128_simd_speedup > 0.0) {
    std::printf("# wide_group_n128: %s batch is %.2fx the word-sliced "
                "baseline (acceptance floor: 1.5x on AVX2 hosts)\n",
                simd::ActiveKernels().name, wide128_simd_speedup);
  }
  json.Write();
  return 0;
}
