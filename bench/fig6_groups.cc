// Figure 6: variation of the number of groups of redistribution licenses
// with the number of redistribution licenses N.
//
// The paper observes the group count fluctuating between 1 and 5 over
// N = 1..35: adding a license can keep the count (joins one group), grow it
// (overlaps nothing), or shrink it (bridges several groups). This harness
// prints the series for the paper-parameter workload.
#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/grouping.h"

int main(int argc, char** argv) {
  using namespace geolic;         // NOLINT
  using namespace geolic::bench;  // NOLINT

  Flags flags(argc, argv);
  const int max_n = flags.Int("max_n", 35);
  const int seed = flags.Int("seed", 2010);
  flags.Finish();

  std::printf("# Figure 6: number of groups vs number of redistribution "
              "licenses\n");
  std::printf("%4s  %8s  %s\n", "N", "groups", "group_sizes");
  int min_groups = INT32_MAX;
  int max_groups = 0;
  for (int n = 1; n <= max_n; ++n) {
    WorkloadGenerator generator(
        PaperSweepConfig(n, static_cast<uint64_t>(seed)));
    Result<Workload> workload = generator.GenerateLicensesOnly();
    GEOLIC_CHECK(workload.ok());
    const LicenseGrouping grouping =
        LicenseGrouping::FromLicenses(*workload->licenses);
    const std::vector<int> sizes = GroupSizes(grouping);
    min_groups = std::min(min_groups, grouping.group_count());
    max_groups = std::max(max_groups, grouping.group_count());
    std::printf("%4d  %8d  %s\n", n, grouping.group_count(),
                SizesToString(sizes).c_str());
  }
  std::printf("# group count ranged %d..%d (paper: 1..5)\n", min_groups,
              max_groups);
  return 0;
}
