// Figure 10: storage space complexity — bytes held by the original
// validation tree versus the trees produced by division, plus the flat
// arena compile the offline hot path actually queries.
//
// Division re-links branches under g new roots without copying nodes, so
// the paper reports "almost same" storage; the only growth is the g root
// nodes themselves. The flat compile stores five fixed-width columns per
// node and no pointers, so it undercuts the pointer layout despite the
// two precomputed accelerator columns.
#include <cstdio>
#include <utility>

#include "bench/bench_util.h"
#include "core/tree_division.h"
#include "validation/flat_tree.h"

int main(int argc, char** argv) {
  using namespace geolic;         // NOLINT
  using namespace geolic::bench;  // NOLINT

  Flags flags(argc, argv);
  const int max_n = flags.Int("max_n", 35);
  const int step = flags.Int("step", 2);
  flags.Finish();

  std::printf("# Figure 10: storage of the original validation tree vs the "
              "divided validation trees vs the flat arena compile\n");
  std::printf("%4s  %8s  %12s  %14s  %14s  %14s  %12s  %9s\n", "N", "records",
              "orig_nodes", "divided_nodes", "orig_bytes", "divided_bytes",
              "flat_bytes", "overhead");

  for (int n = 2; n <= max_n; n += step) {
    Workload workload = PaperWorkload(n);
    Result<ValidationTree> tree = ValidationTree::BuildFromLog(workload.log);
    GEOLIC_CHECK(tree.ok());
    const size_t original_nodes = tree->NodeCount();
    const size_t original_bytes = tree->MemoryBytes();
    const size_t flat_bytes =
        FlatValidationTree::Compile(*tree).MemoryBytes();

    const LicenseGrouping grouping =
        LicenseGrouping::FromLicenses(*workload.licenses);
    Result<DividedTrees> divided = DivideAndReindex(
        *std::move(tree), grouping, workload.licenses->AggregateCounts());
    GEOLIC_CHECK(divided.ok());
    size_t divided_nodes = 0;
    size_t divided_bytes = 0;
    for (const ValidationTree& part : divided->trees) {
      divided_nodes += part.NodeCount();
      divided_bytes += part.MemoryBytes();
    }
    std::printf("%4d  %8zu  %12zu  %14zu  %14zu  %14zu  %12zu  %8.3f%%\n", n,
                workload.log.size(), original_nodes, divided_nodes,
                original_bytes, divided_bytes, flat_bytes,
                100.0 * (static_cast<double>(divided_bytes) -
                         static_cast<double>(original_bytes)) /
                    static_cast<double>(original_bytes));
  }
  std::printf("# expected shape: node counts identical; byte overhead is "
              "just the g extra root nodes (well under 1%%); flat_bytes "
              "under orig_bytes (32 B/node, no pointers)\n");
  return 0;
}
