// Ablation: online (per-issuance) validation with and without grouping.
// Section 2.1 of the paper: a new license whose satisfying set has k
// licenses touches 2^(N−k) equations; restricting to the license's overlap
// group shrinks that to 2^(N_g−k).
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "core/online_validator.h"
#include "util/random.h"
#include "workload/workload.h"

namespace geolic {
namespace {

struct OnlineFixture {
  OnlineFixture(int n, bool use_grouping) {
    WorkloadConfig config = PaperSweepConfig(n);
    config.num_records = 0;
    WorkloadGenerator generator(config);
    Result<Workload> generated = generator.GenerateLicensesOnly();
    GEOLIC_CHECK(generated.ok());
    workload = std::make_unique<Workload>(*std::move(generated));
    OnlineValidatorOptions options;
    options.use_grouping = use_grouping;
    Result<OnlineValidator> created =
        OnlineValidator::Create(workload->licenses.get(), options);
    GEOLIC_CHECK(created.ok());
    validator = std::make_unique<OnlineValidator>(*std::move(created));
    Rng rng(77);
    for (int i = 0; i < 512; ++i) {
      const int parent = static_cast<int>(
          rng.UniformInt(0, workload->licenses->size() - 1));
      queries.push_back(
          generator.DrawUsageLicense(*workload, parent, &rng, i));
    }
  }
  std::unique_ptr<Workload> workload;
  std::unique_ptr<OnlineValidator> validator;
  std::vector<License> queries;
};

void RunIssueLoop(benchmark::State& state, bool use_grouping) {
  OnlineFixture fixture(static_cast<int>(state.range(0)), use_grouping);
  size_t i = 0;
  uint64_t equations = 0;
  uint64_t issues = 0;
  for (auto _ : state) {
    const Result<OnlineDecision> decision = fixture.validator->TryIssue(
        fixture.queries[i % fixture.queries.size()]);
    GEOLIC_CHECK(decision.ok());
    equations += decision->equations_checked;
    ++issues;
    ++i;
  }
  state.counters["equations_per_issue"] =
      benchmark::Counter(static_cast<double>(equations) /
                         static_cast<double>(issues == 0 ? 1 : issues));
}

void BM_OnlineIssueGrouped(benchmark::State& state) {
  RunIssueLoop(state, /*use_grouping=*/true);
}
BENCHMARK(BM_OnlineIssueGrouped)->Arg(8)->Arg(16)->Arg(24)->Arg(32);

void BM_OnlineIssueBaseline(benchmark::State& state) {
  RunIssueLoop(state, /*use_grouping=*/false);
}
BENCHMARK(BM_OnlineIssueBaseline)->Arg(8)->Arg(16)->Arg(24);

}  // namespace
}  // namespace geolic

BENCHMARK_MAIN();
