// Ablation: online (per-issuance) validation with and without grouping.
// Section 2.1 of the paper: a new license whose satisfying set has k
// licenses touches 2^(N−k) equations; restricting to the license's overlap
// group shrinks that to 2^(N_g−k). Machine-readable: --json_out=<path>.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/online_validator.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "workload/workload.h"

namespace {

using namespace geolic;  // NOLINT

struct OnlineFixture {
  OnlineFixture(int n, bool use_grouping) {
    WorkloadConfig config = PaperSweepConfig(n);
    config.num_records = 0;
    WorkloadGenerator generator(config);
    Result<Workload> generated = generator.GenerateLicensesOnly();
    GEOLIC_CHECK(generated.ok());
    workload = std::make_unique<Workload>(*std::move(generated));
    OnlineValidatorOptions options;
    options.use_grouping = use_grouping;
    Result<OnlineValidator> created =
        OnlineValidator::Create(workload->licenses.get(), options);
    GEOLIC_CHECK(created.ok());
    validator = std::make_unique<OnlineValidator>(*std::move(created));
    Rng rng(77);
    for (int i = 0; i < 512; ++i) {
      const int parent = static_cast<int>(
          rng.UniformInt(0, workload->licenses->size() - 1));
      queries.push_back(
          generator.DrawUsageLicense(*workload, parent, &rng, i));
    }
  }
  std::unique_ptr<Workload> workload;
  std::unique_ptr<OnlineValidator> validator;
  std::vector<License> queries;
};

struct IssueLoopResult {
  int64_t elapsed_ns = 0;
  double equations_per_issue = 0.0;
};

// `issues` TryIssue calls cycling the query pool against a fresh
// validator; the running state accumulates exactly as in production.
IssueLoopResult RunIssueLoop(int n, bool use_grouping, int issues) {
  OnlineFixture fixture(n, use_grouping);
  uint64_t equations = 0;
  Stopwatch timer;
  for (int i = 0; i < issues; ++i) {
    const Result<OnlineDecision> decision = fixture.validator->TryIssue(
        fixture.queries[static_cast<size_t>(i) % fixture.queries.size()]);
    GEOLIC_CHECK(decision.ok());
    equations += decision->equations_checked;
  }
  IssueLoopResult result;
  result.elapsed_ns = timer.ElapsedNanos();
  result.equations_per_issue =
      static_cast<double>(equations) / static_cast<double>(issues);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using geolic::bench::Flags;
  using geolic::bench::JsonOut;

  Flags flags(argc, argv);
  const int issues = std::max(1, flags.Int("issues", 2000));
  const int reps = std::max(1, flags.Int("reps", 3));
  JsonOut json(flags, "ablation_online");
  flags.Finish();

  std::printf("# Ablation: per-issuance validation cost, grouped vs full "
              "equation scope (%d issues, best of %d reps)\n", issues, reps);
  std::printf("%10s  %4s  %12s  %18s\n", "mode", "n", "ns_per_issue",
              "equations_per_issue");

  const auto sweep = [&](const char* mode, bool use_grouping, int n,
                         int issue_count) {
    IssueLoopResult best;
    best.elapsed_ns = std::numeric_limits<int64_t>::max();
    for (int rep = 0; rep < reps; ++rep) {
      const IssueLoopResult run = RunIssueLoop(n, use_grouping, issue_count);
      if (run.elapsed_ns < best.elapsed_ns) {
        best = run;
      }
    }
    const double ns_per_issue =
        static_cast<double>(best.elapsed_ns) / issue_count;
    std::printf("%10s  %4d  %12.1f  %18.1f\n", mode, n, ns_per_issue,
                best.equations_per_issue);
    json.Row([&](JsonWriter& out) {
      out.KeyValue("mode", mode);
      out.KeyValue("n", static_cast<int64_t>(n));
      out.KeyValue("issues", static_cast<int64_t>(issue_count));
      out.KeyValue("ns_per_issue", ns_per_issue);
      out.KeyValue("equations_per_issue", best.equations_per_issue);
    });
  };
  for (const int n : {8, 16, 24, 32}) {
    sweep("grouped", /*use_grouping=*/true, n, issues);
  }
  // The full-scope baseline scans 2^(N−k) equations per issue — hundreds
  // of milliseconds each at N=24, so its issue budget shrinks with N (and
  // the sweep stops at 24, as the paper's exponential curves do).
  sweep("baseline", /*use_grouping=*/false, 8, issues);
  sweep("baseline", /*use_grouping=*/false, 16, std::max(1, issues / 10));
  sweep("baseline", /*use_grouping=*/false, 24, std::max(1, issues / 100));

  std::printf("# expected shape: grouped stays flat as N grows (group sizes "
              "are bounded); baseline doubles per license added\n");
  json.Write();
  return 0;
}
