// Figure 9: insertion time complexity — the time to insert one log record
// into the validation tree versus the one-off time to divide the tree
// (group identification + separation + index modification).
//
// The paper reports division costing only ~3-4 single-record insertions,
// amortised over thousands of insertions, i.e. negligible construction
// overhead versus reference [10].
#include <cstdio>
#include <utility>

#include "bench/bench_util.h"
#include "core/tree_division.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace geolic;         // NOLINT
  using namespace geolic::bench;  // NOLINT

  Flags flags(argc, argv);
  const int max_n = flags.Int("max_n", 35);
  const int step = flags.Int("step", 2);
  flags.Finish();

  std::printf("# Figure 9: single-record insertion time vs tree division "
              "time\n");
  std::printf("%4s  %8s  %15s  %15s  %18s  %8s  %9s\n", "N", "records",
              "build_tree_ms", "insert_1_us", "division_DT_us", "DT/ins",
              "DT/CT");

  for (int n = 2; n <= max_n; n += step) {
    Workload workload = PaperWorkload(n);

    // C_T: build the tree from the whole log; per-record cost follows.
    Stopwatch build_timer;
    Result<ValidationTree> tree = ValidationTree::BuildFromLog(workload.log);
    const double build_ms = build_timer.ElapsedMillis();
    GEOLIC_CHECK(tree.ok());
    const double insert_one_us =
        build_ms * 1000.0 / static_cast<double>(workload.log.size());

    // D_T: grouping + division + reindexing, performed once.
    Stopwatch division_timer;
    const LicenseGrouping grouping =
        LicenseGrouping::FromLicenses(*workload.licenses);
    Result<DividedTrees> divided = DivideAndReindex(
        *std::move(tree), grouping, workload.licenses->AggregateCounts());
    const double division_us = division_timer.ElapsedMicros();
    GEOLIC_CHECK(divided.ok());

    std::printf("%4d  %8zu  %15.3f  %15.3f  %18.3f  %7.1fx  %8.2f%%\n", n,
                workload.log.size(), build_ms, insert_one_us, division_us,
                division_us / (insert_one_us > 0 ? insert_one_us : 1e-9),
                100.0 * division_us / (build_ms * 1000.0));
  }
  std::printf("# expected shape: DT is a one-off cost amortised over "
              "thousands of inserts — a few percent of total construction "
              "CT. (The paper's Java baseline put DT at 3-4 single inserts; "
              "this C++ insert is far cheaper relative to the O(N^2) overlap "
              "graph + O(nodes) reindex inside DT, so DT/ins is larger here "
              "while the amortised conclusion is unchanged.)\n");
  return 0;
}
